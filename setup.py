"""Legacy setup shim: keeps ``pip install -e .`` working offline (the
sandbox has setuptools but no ``wheel``, so the PEP 517 editable path is
unavailable). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
