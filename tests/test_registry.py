"""Consistency tests for the MPI function registry — the analogue of the
paper's "wrappers generated from the standard" completeness guarantee."""

import pytest

from conftest import run_program
from repro.mpisim import funcs as F
from repro.mpisim.errors import MpiSimError, RankProgramError
from repro.mpisim.runtime import RankAPI

VALID_KINDS = {
    F.K_COMM, F.K_GROUP, F.K_DATATYPE, F.K_REQUEST, F.K_REQUESTV, F.K_OP,
    F.K_RANK, F.K_ROOT, F.K_TAG, F.K_COLOR, F.K_KEY, F.K_PTR, F.K_COUNT,
    F.K_INT, F.K_INTV, F.K_FLAG, F.K_STR, F.K_STATUS, F.K_STATUSV,
    F.K_INDEXV, F.K_NEWCOMM, F.K_NEWTYPE, F.K_WIN, F.K_NEWWIN,
}
VALID_DIRECTIONS = {F.IN, F.OUT, F.INOUT}

#: pseudo-calls emitted by the runtime itself, not user-invokable methods
RUNTIME_EMITTED = {"MPI_Init", "MPI_Finalize"}


class TestRegistryShape:
    def test_ids_dense_and_unique(self):
        fids = [spec.fid for spec in F.FUNCS.values()]
        assert sorted(fids) == list(range(len(F.FUNCS)))

    def test_by_id_inverse(self):
        for name, spec in F.FUNCS.items():
            assert F.BY_ID[spec.fid] is spec

    def test_param_kinds_and_directions_valid(self):
        for spec in F.FUNCS.values():
            for p in spec.params:
                assert p.kind in VALID_KINDS, (spec.name, p.name, p.kind)
                assert p.direction in VALID_DIRECTIONS

    def test_param_names_unique_within_spec(self):
        for spec in F.FUNCS.values():
            names = [p.name for p in spec.params]
            assert len(set(names)) == len(names), spec.name

    def test_param_lookup(self):
        spec = F.FUNCS["MPI_Send"]
        assert spec.param("dest").kind == F.K_RANK
        with pytest.raises(KeyError):
            spec.param("nope")

    def test_catalog_constants_ordered(self):
        assert F.CYPRESS_SUPPORTED < F.SCALATRACE_SUPPORTED \
            < F.PILGRIM_SUPPORTED == F.TOTAL_MPI40_FUNCS
        assert F.SIM_FUNC_COUNT == len(F.FUNCS)

    def test_every_function_has_an_api_method(self):
        """Completeness by construction: each registry entry (except the
        runtime-emitted pseudo-calls) maps to a RankAPI method."""
        for fname in F.all_names():
            if fname in RUNTIME_EMITTED:
                continue
            method = fname[4:].lower()
            assert hasattr(RankAPI, method), fname

    def test_naming_convention(self):
        for fname in F.all_names():
            assert fname.startswith("MPI_")


class TestAbort:
    def test_abort_terminates_run(self):
        def prog(m):
            if m.rank == 0:
                m.abort(errorcode=7)
            yield from m.barrier()

        with pytest.raises((MpiSimError, RankProgramError)):
            run_program(2, prog)

    def test_abort_is_traced_before_teardown(self):
        from repro.core import PilgrimTracer
        from repro.mpisim import SimMPI

        def prog(m):
            m.abort(errorcode=3)
            yield

        tracer = PilgrimTracer()
        sim = SimMPI(1, seed=0, tracer=tracer)
        with pytest.raises((MpiSimError, RankProgramError)):
            sim.run(prog)
        # the call reached the tracer even though the run died
        assert tracer.total_calls >= 2  # MPI_Init + MPI_Abort
