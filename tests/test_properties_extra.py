"""Additional cross-cutting property tests (hypothesis where useful)."""

from hypothesis import assume, given, settings, strategies as st

from repro.core import Grammar, PilgrimTracer, Sequitur, merge_grammars
from repro.core.relative import decode as rel_decode, encode_rank, encode_rankish
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops
from repro.mpisim.topology import CartTopology
from repro.replay import generate_miniapp, load_miniapp


class TestGrammarAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 4), max_size=20),
                    min_size=1, max_size=6))
    def test_merge_then_extract_is_identity(self, rank_seqs):
        def freeze(seq):
            s = Sequitur()
            for v in seq:
                s.append(v)
            return Grammar.freeze(s)

        merged = merge_grammars([freeze(seq) for seq in rank_seqs])
        # format round trip preserves per-rank extraction
        from repro.core import TraceFile
        from repro.core.cst import MergedCST
        sigs = sorted({v for seq in rank_seqs for v in seq})
        # ensure terminals are dense for the CST
        remap = {v: i for i, v in enumerate(sigs)}
        rank_seqs2 = [[remap[v] for v in seq] for seq in rank_seqs]
        merged = merge_grammars([freeze(seq) for seq in rank_seqs2])
        cst = MergedCST(sigs=[(v,) for v in sigs],
                        counts=[1] * len(sigs),
                        dur_sums=[0.0] * len(sigs), remaps=[])
        t = TraceFile(nprocs=len(rank_seqs2), cst=cst, cfg=merged)
        back = TraceFile.from_bytes(t.to_bytes())
        for r, seq in enumerate(rank_seqs2):
            uid = back.cfg.rank_uid[r]
            assert back.cfg.unique[uid].expand() == seq

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=40), st.integers(1, 50))
    def test_compression_never_loses_under_repetition(self, body, reps):
        s = Sequitur()
        for v in body * reps:
            s.append(v)
        g = Grammar.freeze(s)
        assert g.expand() == body * reps
        assert g.expanded_length() == len(body) * reps


class TestRelativeEncodingAlgebra:
    @given(st.integers(0, 5000), st.integers(0, 5000), st.integers(0, 5000))
    def test_rank_encoding_context_shift(self, v, r1, r2):
        """Two callers encode the same delta iff their offsets agree —
        the exact property inter-process dedup relies on.  Only real
        ranks qualify: a shift below 0 lands on the sentinel constants
        (ANY_SOURCE/PROC_NULL/...), which rightly encode as specials."""
        assume(v + (r2 - r1) >= 0)
        e1, e2 = encode_rank(v, r1), encode_rank(v + (r2 - r1), r2)
        assert e1 == e2
        assert rel_decode(e1, r1) == v

    @given(st.integers(0, 2000), st.integers(0, 2000))
    def test_rankish_never_confuses_values(self, v, r):
        # decoding is exact regardless of which path encoding took
        assert rel_decode(encode_rankish(v, r), r) == v


class TestCartAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(st.tuples(st.integers(1, 5), st.integers(1, 5),
                     st.integers(1, 4)),
           st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_shift_inverse(self, dims, periods):
        topo = CartTopology(dims, periods)
        for rank in range(topo.nnodes):
            for d in range(3):
                src, dst = topo.shift(rank, d, 1)
                if dst != C.PROC_NULL:
                    back_src, _ = topo.shift(dst, d, 1)
                    assert back_src == rank

    @settings(max_examples=50, deadline=None)
    @given(st.tuples(st.integers(1, 6), st.integers(1, 6)))
    def test_coords_bijective(self, dims):
        topo = CartTopology(dims, (False, False))
        seen = set()
        for rank in range(topo.nnodes):
            seen.add(topo.coords_of(rank))
        assert len(seen) == topo.nnodes


class TestTraceSizeMonotonicity:
    def test_more_distinct_patterns_never_smaller(self):
        """A run with strictly more distinct signatures cannot produce a
        smaller CST section."""
        def uniform(m):
            m.malloc(64)
            for _ in range(20):
                yield from m.barrier()

        def varied(m):
            buf = m.malloc(64)
            for i in range(20):
                yield from m.allreduce(buf, buf, i + 1, dt.DOUBLE, ops.SUM)

        a = PilgrimTracer()
        SimMPI(4, seed=0, tracer=a).run(uniform)
        b = PilgrimTracer()
        SimMPI(4, seed=0, tracer=b).run(varied)
        assert b.result.n_signatures > a.result.n_signatures
        assert b.result.section_sizes()["cst"] >= \
            a.result.section_sizes()["cst"]

    def test_trace_deterministic_given_seed(self):
        def prog(m):
            buf = m.malloc(256)
            peer = 1 - m.rank
            for t in range(6):
                reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t),
                        m.isend(buf + 128, 1, dt.DOUBLE, dest=peer, tag=t)]
                yield from m.waitall(reqs)

        blobs = set()
        for _ in range(3):
            tr = PilgrimTracer()
            SimMPI(2, seed=11, tracer=tr).run(prog)
            blobs.add(tr.result.trace_bytes)
        assert len(blobs) == 1  # bit-identical traces for one seed


class TestMiniAppSourceProperties:
    def test_generated_source_is_valid_python(self):
        tracer = PilgrimTracer()
        from repro.workloads import make
        make("osu_allreduce", 4, iters=2).run(seed=1, tracer=tracer)
        src = generate_miniapp(tracer.result.trace_bytes)
        compile(src, "<check>", "exec")  # SyntaxError would fail the test
        ns = load_miniapp(src)
        assert callable(ns["make_program"])
        # the yielded terminals reconstruct the rank's call sequence
        terms = list(ns["CLASS_FUNCS"][ns["RANK_CLASS"][0]]())
        from repro.core import TraceDecoder
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        assert terms == dec.rank_terminals(0)
