"""Tests for lossy timing compression (§3.2, Fig 10)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.timing import (TimingCompressor, bin_value, reconstruct_times,
                               unbin_value)


class TestBinning:
    def test_relative_error_bound(self):
        b = 1.2
        for x in (1e-7, 3.3e-5, 0.5, 7.0, 123.456):
            rep = unbin_value(bin_value(x, b), b)
            assert x <= rep < x * b * (1 + 1e-12)

    def test_monotone(self):
        b = 1.2
        assert bin_value(1.0, b) <= bin_value(1.3, b) <= bin_value(10.0, b)

    def test_tiny_values_clamped(self):
        assert bin_value(0.0, 1.2) == bin_value(1e-30, 1.2)

    def test_base_affects_precision(self):
        x = 1.234
        fine = unbin_value(bin_value(x, 1.05), 1.05)
        coarse = unbin_value(bin_value(x, 2.0), 2.0)
        assert abs(fine - x) <= abs(coarse - x)

    @given(st.floats(min_value=1e-9, max_value=1e6),
           st.sampled_from([1.05, 1.2, 1.5, 2.0]))
    def test_error_bound_property(self, x, base):
        rep = unbin_value(bin_value(x, base), base)
        assert rep / x >= 1 - 1e-9          # never under-estimates
        assert rep / x <= base * (1 + 1e-9)  # at most a factor of base


class TestCompressorInvalid:
    def test_base_must_exceed_one(self):
        with pytest.raises(ValueError):
            TimingCompressor(base=1.0)


class TestReconstruction:
    def _drive(self, events, base=1.2):
        """events: list of (term, t0, duration)."""
        tc = TimingCompressor(base=base)
        tc.keep_raw = True
        for term, t0, d in events:
            tc.record(term, "MPI_Send", t0, t0 + d)
        dg, ig = tc.freeze()
        recon = reconstruct_times(dg.expand(), ig.expand(),
                                  [t for t, _, _ in events], base)
        return tc, recon

    def test_tstart_error_bounded(self):
        base = 1.2
        events = []
        t = 0.0
        for i in range(200):
            t += 1e-5 * (1 + 0.1 * ((i * 7) % 5))
            events.append((i % 3, t, 2e-6))
        _, recon = self._drive(events, base)
        for (ts, te), (_, true_t0, true_d) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9
            assert te > ts

    def test_duration_error_bounded(self):
        base = 1.3
        events = [(0, 1e-3 * (i + 1), 5e-6 * (1 + (i % 4))) for i in range(50)]
        _, recon = self._drive(events, base)
        for (ts, te), (_, _, true_d) in zip(recon, events):
            d = te - ts
            assert true_d * (1 - 1e-9) <= d <= true_d * base * (1 + 1e-9)

    def test_interval_adjustment_prevents_drift(self):
        """The §3.2 scheme: errors must NOT accumulate over many calls."""
        base = 1.2
        events = [(0, 1e-4 * (i + 1), 1e-6) for i in range(2000)]
        _, recon = self._drive(events, base)
        ts_last = recon[-1][0]
        true_last = events[-1][1]
        assert abs(ts_last - true_last) / true_last <= (base - 1) + 1e-9

    def test_per_signature_clocks_independent(self):
        base = 1.2
        events = []
        for i in range(100):
            events.append((0, 1e-3 + i * 1e-5, 1e-6))
            events.append((1, 5e-1 + i * 1e-4, 2e-6))
        _, recon = self._drive(events, base)
        for (ts, _), (_, true_t0, _) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2),
                              st.floats(min_value=1e-7, max_value=1e-3),
                              st.floats(min_value=1e-8, max_value=1e-4)),
                    min_size=1, max_size=60))
    def test_reconstruction_property(self, steps):
        base = 1.2
        events = []
        t = 0.0
        for term, gap, d in steps:
            t += gap
            events.append((term, t, d))
        _, recon = self._drive(events, base)
        for (ts, te), (_, true_t0, true_d) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9


class TestCompressionBehaviour:
    def test_regular_durations_compress_well(self):
        tc = TimingCompressor(base=1.2)
        for i in range(1000):
            tc.record(0, "MPI_Send", i * 1e-4, i * 1e-4 + 1e-6)
        dg, ig = tc.freeze()
        assert dg.n_tokens <= 4    # identical durations: one run
        assert ig.n_tokens <= 16   # regular intervals: tiny grammar

    def test_noisy_durations_larger_grammar(self):
        import random
        rng = random.Random(1)
        tc = TimingCompressor(base=1.2)
        t = 0.0
        for _ in range(500):
            t += rng.uniform(1e-5, 1e-2)
            tc.record(0, "MPI_Send", t, t + rng.uniform(1e-7, 1e-3))
        dg, _ = tc.freeze()
        assert dg.n_tokens > 50  # intrinsic non-determinism, as in §4.4

    def test_per_function_base_override(self):
        tc = TimingCompressor(base=1.2,
                              per_function_base={"MPI_Barrier": 2.0})
        tc.record(0, "MPI_Barrier", 1.0, 1.5)
        tc.record(1, "MPI_Send", 1.0, 1.5)
        dg, _ = tc.freeze()
        bins = dg.expand()
        # coarser base -> different (smaller-magnitude) bin for the barrier
        assert bins[0] != bins[1]
