"""Tests for lossy timing compression (§3.2, Fig 10)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.timing import (TimingCompressor, bin_value, reconstruct_times,
                               unbin_value)


class TestBinning:
    def test_relative_error_bound(self):
        b = 1.2
        for x in (1e-7, 3.3e-5, 0.5, 7.0, 123.456):
            rep = unbin_value(bin_value(x, b), b)
            assert x <= rep < x * b * (1 + 1e-12)

    def test_monotone(self):
        b = 1.2
        assert bin_value(1.0, b) <= bin_value(1.3, b) <= bin_value(10.0, b)

    def test_tiny_values_clamped(self):
        assert bin_value(0.0, 1.2) == bin_value(1e-30, 1.2)

    def test_base_affects_precision(self):
        x = 1.234
        fine = unbin_value(bin_value(x, 1.05), 1.05)
        coarse = unbin_value(bin_value(x, 2.0), 2.0)
        assert abs(fine - x) <= abs(coarse - x)

    @given(st.floats(min_value=1e-9, max_value=1e6),
           st.sampled_from([1.05, 1.2, 1.5, 2.0]))
    def test_error_bound_property(self, x, base):
        rep = unbin_value(bin_value(x, base), base)
        assert rep / x >= 1 - 1e-9          # never under-estimates
        assert rep / x <= base * (1 + 1e-9)  # at most a factor of base


class TestCompressorInvalid:
    def test_base_must_exceed_one(self):
        with pytest.raises(ValueError):
            TimingCompressor(base=1.0)


class TestReconstruction:
    def _drive(self, events, base=1.2):
        """events: list of (term, t0, duration)."""
        tc = TimingCompressor(base=base)
        tc.keep_raw = True
        for term, t0, d in events:
            tc.record(term, "MPI_Send", t0, t0 + d)
        dg, ig = tc.freeze()
        recon = reconstruct_times(dg.expand(), ig.expand(),
                                  [t for t, _, _ in events], base)
        return tc, recon

    def test_tstart_error_bounded(self):
        base = 1.2
        events = []
        t = 0.0
        for i in range(200):
            t += 1e-5 * (1 + 0.1 * ((i * 7) % 5))
            events.append((i % 3, t, 2e-6))
        _, recon = self._drive(events, base)
        for (ts, te), (_, true_t0, true_d) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9
            assert te > ts

    def test_duration_error_bounded(self):
        base = 1.3
        events = [(0, 1e-3 * (i + 1), 5e-6 * (1 + (i % 4))) for i in range(50)]
        _, recon = self._drive(events, base)
        for (ts, te), (_, _, true_d) in zip(recon, events):
            d = te - ts
            assert true_d * (1 - 1e-9) <= d <= true_d * base * (1 + 1e-9)

    def test_interval_adjustment_prevents_drift(self):
        """The §3.2 scheme: errors must NOT accumulate over many calls."""
        base = 1.2
        events = [(0, 1e-4 * (i + 1), 1e-6) for i in range(2000)]
        _, recon = self._drive(events, base)
        ts_last = recon[-1][0]
        true_last = events[-1][1]
        assert abs(ts_last - true_last) / true_last <= (base - 1) + 1e-9

    def test_per_signature_clocks_independent(self):
        base = 1.2
        events = []
        for i in range(100):
            events.append((0, 1e-3 + i * 1e-5, 1e-6))
            events.append((1, 5e-1 + i * 1e-4, 2e-6))
        _, recon = self._drive(events, base)
        for (ts, _), (_, true_t0, _) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2),
                              st.floats(min_value=1e-7, max_value=1e-3),
                              st.floats(min_value=1e-8, max_value=1e-4)),
                    min_size=1, max_size=60))
    def test_reconstruction_property(self, steps):
        base = 1.2
        events = []
        t = 0.0
        for term, gap, d in steps:
            t += gap
            events.append((term, t, d))
        _, recon = self._drive(events, base)
        for (ts, te), (_, true_t0, true_d) in zip(recon, events):
            assert abs(ts - true_t0) / true_t0 <= (base - 1) + 1e-9


class TestCompressionBehaviour:
    def test_regular_durations_compress_well(self):
        tc = TimingCompressor(base=1.2)
        for i in range(1000):
            tc.record(0, "MPI_Send", i * 1e-4, i * 1e-4 + 1e-6)
        dg, ig = tc.freeze()
        assert dg.n_tokens <= 4    # identical durations: one run
        assert ig.n_tokens <= 16   # regular intervals: tiny grammar

    def test_noisy_durations_larger_grammar(self):
        import random
        rng = random.Random(1)
        tc = TimingCompressor(base=1.2)
        t = 0.0
        for _ in range(500):
            t += rng.uniform(1e-5, 1e-2)
            tc.record(0, "MPI_Send", t, t + rng.uniform(1e-7, 1e-3))
        dg, _ = tc.freeze()
        assert dg.n_tokens > 50  # intrinsic non-determinism, as in §4.4

    def test_per_function_base_override(self):
        tc = TimingCompressor(base=1.2,
                              per_function_base={"MPI_Barrier": 2.0})
        tc.record(0, "MPI_Barrier", 1.0, 1.5)
        tc.record(1, "MPI_Send", 1.0, 1.5)
        dg, _ = tc.freeze()
        bins = dg.expand()
        # coarser base -> different (smaller-magnitude) bin for the barrier
        assert bins[0] != bins[1]


class TestClampDetection:
    """Out-of-range bins are clamped with a warning and counted."""

    BASE = 1.005  # base**4096 ~ 7.5e8, reachable with finite doubles

    def test_boundary_bins_do_not_warn(self):
        import warnings as w
        from repro.core.timing import BIN_OFFSET
        with w.catch_warnings():
            w.simplefilter("error")
            hi = bin_value(self.BASE ** BIN_OFFSET, self.BASE)
            lo = bin_value(self.BASE ** -BIN_OFFSET, self.BASE)
        assert hi == BIN_OFFSET
        assert lo == -BIN_OFFSET

    def test_overflow_clamps_and_warns(self):
        from repro.core.timing import BIN_OFFSET, BinClampWarning
        with pytest.warns(BinClampWarning):
            b = bin_value(self.BASE ** BIN_OFFSET * 10, self.BASE)
        assert b == BIN_OFFSET

    def test_underflow_clamps_and_warns(self):
        from repro.core.timing import BIN_OFFSET, BinClampWarning
        with pytest.warns(BinClampWarning):
            b = bin_value(self.BASE ** -BIN_OFFSET / 10, self.BASE)
        assert b == -BIN_OFFSET

    def test_infinity_clamps_instead_of_raising(self):
        from repro.core.timing import BIN_OFFSET, BinClampWarning
        with pytest.warns(BinClampWarning):
            assert bin_value(float("inf"), 1.2) == BIN_OFFSET

    def test_compressor_counts_clamps(self):
        import warnings as w
        tc = TimingCompressor(base=self.BASE)
        with w.catch_warnings():
            w.simplefilter("ignore")
            tc.record(0, "MPI_Send", 1.0, 1e12)   # duration overflow
            tc.record(0, "MPI_Send", 2e12, 2e12 + 1e-3)  # interval too
            tc.record(1, "MPI_Send", 1.0, 1.5)    # in range: no count
        assert tc.n_clamped == 2

    def test_clamped_values_never_memoized(self):
        import warnings as w
        tc = TimingCompressor(base=self.BASE)
        with w.catch_warnings():
            w.simplefilter("ignore")
            tc._bin(1e12, self.BASE)
            tc._bin(1e12, self.BASE)
        assert tc.n_clamped == 2  # both clamps observed, no memo hit
        assert (1e12, self.BASE) not in tc._bin_memo


class TestBatchedRecording:
    def test_record_batch_matches_scalar(self):
        events = []
        t = 0.0
        for i in range(300):
            t += 1e-5 * (1 + (i * 3) % 7)
            events.append((i % 4, f"MPI_F{i % 3}", t, t + 1e-6 * (i % 5 + 1)))
        scalar = TimingCompressor(base=1.2,
                                  per_function_base={"MPI_F1": 1.5})
        scalar.keep_raw = True
        for term, fn, t0, t1 in events:
            scalar.record(term, fn, t0, t1)
        batched = TimingCompressor(base=1.2,
                                   per_function_base={"MPI_F1": 1.5})
        batched.keep_raw = True
        for i in range(0, len(events), 17):
            chunk = events[i:i + 17]
            batched.record_batch([e[0] for e in chunk],
                                 [e[1] for e in chunk],
                                 [e[2] for e in chunk],
                                 [e[3] for e in chunk], len(chunk))
        assert batched.n_calls == scalar.n_calls == len(events)
        assert batched.raw_durations == scalar.raw_durations
        assert batched.raw_starts == scalar.raw_starts
        sd, si = scalar.freeze()
        bd, bi = batched.freeze()
        assert bd.expand() == sd.expand()
        assert bi.expand() == si.expand()


class TestTimingMeta:
    def test_roundtrip(self):
        from repro.core.packing import Reader
        from repro.core.timing import TimingMeta
        meta = TimingMeta(base=1.3, per_function_base={
            "MPI_Barrier": 2.0, "MPI_Allreduce": 1.1})
        out = bytearray()
        meta.write_to(out)
        got = TimingMeta.read_from(Reader(bytes(out)))
        assert got == meta
        assert got.base_for("MPI_Barrier") == 2.0
        assert got.base_for("MPI_Send") == 1.3

    @pytest.mark.parametrize("payload", [
        42, (1.2,), ("x", ()), (0.9, ()), (1.2, (("f", 1.0),)),
        (1.2, ((3, 2.0),))])
    def test_malformed_rejected(self, payload):
        from repro.core.errors import CorruptTraceError
        from repro.core.packing import Reader, write_value
        from repro.core.timing import TimingMeta
        out = bytearray()
        write_value(out, payload)
        with pytest.raises(CorruptTraceError):
            TimingMeta.read_from(Reader(bytes(out)))

    def test_compressor_meta_snapshot(self):
        tc = TimingCompressor(base=1.4,
                              per_function_base={"MPI_Wait": 3.0})
        meta = tc.meta()
        assert meta.base == 1.4
        assert meta.per_function_base == {"MPI_Wait": 3.0}
        meta.per_function_base["MPI_Wait"] = 9.9  # a copy, not a view
        assert tc.per_function_base["MPI_Wait"] == 3.0


class TestPerFunctionBaseEndToEnd:
    """A lossy trace recorded with per-function base overrides must
    reconstruct every call within that function's ``base - 1`` relative
    error — the meta section threads the bases through the decoder."""

    def test_reconstruction_uses_persisted_bases(self):
        from repro.bench.capture import CapturedRun
        from repro.core.backends import TracerOptions, make_tracer
        from repro.core.decoder import TraceDecoder

        pfb = {"MPI_Barrier": 2.0, "MPI_Allreduce": 1.05}
        base = 1.2
        cap = CapturedRun.record("npb_mg", 4, seed=9)
        tracer = make_tracer("pilgrim", TracerOptions(
            lossy_timing=True,
            extra={"timing_base": base, "per_function_base": pfb}))
        cap.replay(tracer)
        blob = tracer.finalize().trace_bytes
        dec = TraceDecoder.from_bytes(blob)
        meta = dec.trace.timing_meta
        assert meta is not None and meta.per_function_base == pfb

        overridden = 0
        for rank in range(4):
            truth = [(ev[2], ev[4], ev[5]) for ev in cap.events
                     if ev[0] == 0 and ev[1] == rank]
            recon = dec.rank_times(rank)
            assert len(recon) == len(truth)
            for (fname, t0, t1), (rs, re_) in zip(truth, recon):
                b = pfb.get(fname, base)
                if fname in pfb:
                    overridden += 1
                if t0 > 1e-9:  # t0~0 is below the binning floor
                    assert abs(rs - t0) / t0 <= (b - 1) + 1e-9
                d = t1 - t0
                assert d * (1 - 1e-9) <= re_ - rs <= d * b * (1 + 1e-9)
        assert overridden > 0  # the workload did hit overridden functions

    def test_default_base_trace_still_reconstructs(self):
        from repro.bench.capture import CapturedRun
        from repro.core.backends import TracerOptions, make_tracer
        from repro.core.decoder import TraceDecoder

        cap = CapturedRun.record("osu_latency", 2, seed=4)
        tracer = make_tracer("pilgrim", TracerOptions(lossy_timing=True))
        cap.replay(tracer)
        dec = TraceDecoder.from_bytes(tracer.finalize().trace_bytes)
        truth = [(ev[4], ev[5]) for ev in cap.events
                 if ev[0] == 0 and ev[1] == 0]
        for (t0, _), (rs, _) in zip(truth, dec.rank_times(0)):
            if t0 > 1e-9:  # t0~0 is below the binning floor
                assert abs(rs - t0) / t0 <= 0.2 + 1e-9
