"""Wait*/Test* family semantics, including the non-determinism the paper
insists a lossless tracer must capture."""


from conftest import run_program
from repro.mpisim import constants as C, datatypes as dt


def _post_pair(m, peer, tag=1):
    buf = m.malloc(64)
    rr = m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=tag)
    sr = m.isend(buf + 32, 1, dt.DOUBLE, dest=peer, tag=tag)
    return rr, sr


class TestWait:
    def test_wait_on_null_returns_empty(self):
        def prog(m):
            st = yield from m.wait(None)
            assert st.MPI_SOURCE == C.PROC_NULL
        run_program(1, prog)

    def test_double_wait_second_is_null(self):
        def prog(m):
            rr, sr = _post_pair(m, 1 - m.rank)
            st1 = yield from m.wait(rr)
            assert st1.MPI_SOURCE == 1 - m.rank
            st2 = yield from m.wait(rr)  # consumed: behaves like NULL
            assert st2.MPI_SOURCE == C.PROC_NULL
            yield from m.wait(sr)
        run_program(2, prog)

    def test_status_ignore(self):
        def prog(m):
            rr, sr = _post_pair(m, 1 - m.rank)
            st = yield from m.wait(rr, status=None)
            assert st is None
            yield from m.wait(sr)
        run_program(2, prog)


class TestWaitall:
    def test_statuses_in_request_order(self):
        """Unlike Waitsome indices, Waitall statuses align 1:1 with the
        request array regardless of completion order."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(64)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in (5, 6, 7)]
            for t in (7, 5, 6):  # send in scrambled order
                yield from m.send(buf + 32, 1, dt.DOUBLE, dest=peer, tag=t)
            sts = yield from m.waitall(reqs)
            assert [s.MPI_TAG for s in sts] == [5, 6, 7]
        run_program(2, prog)

    def test_mixed_null_entries(self):
        def prog(m):
            rr, sr = _post_pair(m, 1 - m.rank)
            sts = yield from m.waitall([None, rr, None, sr])
            assert sts[0].MPI_SOURCE == C.PROC_NULL
            assert sts[1].MPI_SOURCE == 1 - m.rank
        run_program(2, prog)

    def test_empty_list(self):
        def prog(m):
            sts = yield from m.waitall([])
            assert sts == []
        run_program(1, prog)


class TestWaitany:
    def test_all_null_returns_undefined(self):
        def prog(m):
            idx, st = yield from m.waitany([None, None])
            assert idx == C.UNDEFINED
        run_program(1, prog)

    def test_consumes_exactly_one(self):
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(64)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in (1, 2)]
            yield from m.send(buf + 32, 1, dt.DOUBLE, dest=peer, tag=1)
            yield from m.send(buf + 32, 1, dt.DOUBLE, dest=peer, tag=2)
            idx1, st1 = yield from m.waitany(reqs)
            idx2, st2 = yield from m.waitany(reqs)
            assert {idx1, idx2} == {0, 1}
            assert {st1.MPI_TAG, st2.MPI_TAG} == {1, 2}
            idx3, _ = yield from m.waitany(reqs)
            assert idx3 == C.UNDEFINED
        run_program(2, prog)

    def test_completion_choice_depends_on_seed(self):
        """With several complete requests, the pick is RNG-driven —
        modelling network non-determinism (§3.4.3's motivation)."""
        def make_prog(record):
            def prog(m):
                peer = 1 - m.rank
                buf = m.malloc(128)
                reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                        for t in range(8)]
                for t in range(8):
                    yield from m.send(buf + 64, 1, dt.DOUBLE, dest=peer,
                                      tag=t)
                yield from m.barrier()  # all eight now complete
                order = []
                for _ in range(8):
                    idx, _st = yield from m.waitany(reqs)
                    order.append(idx)
                if m.rank == 0:
                    record.append(tuple(order))
            return prog

        orders = set()
        for seed in range(6):
            rec = []
            run_program(2, make_prog(rec), seed=seed)
            orders.add(rec[0])
        assert len(orders) > 1  # genuinely seed-dependent

    def test_same_seed_reproducible(self):
        def make_prog(record):
            def prog(m):
                peer = 1 - m.rank
                buf = m.malloc(128)
                reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                        for t in range(6)]
                for t in range(6):
                    yield from m.send(buf + 64, 1, dt.DOUBLE, dest=peer,
                                      tag=t)
                yield from m.barrier()
                order = []
                for _ in range(6):
                    idx, _ = yield from m.waitany(reqs)
                    order.append(idx)
                record.append(tuple(order))
            return prog

        runs = []
        for _ in range(2):
            rec = []
            run_program(2, make_prog(rec), seed=42)
            runs.append(rec)
        assert runs[0] == runs[1]


class TestWaitsome:
    def test_returns_all_completed(self):
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(64)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in (1, 2, 3)]
            for t in (1, 2, 3):
                yield from m.send(buf + 32, 1, dt.DOUBLE, dest=peer, tag=t)
            yield from m.barrier()
            idxs, sts = yield from m.waitsome(reqs)
            assert sorted(idxs) == [0, 1, 2]
            assert len(sts) == 3
            idxs2, _ = yield from m.waitsome(reqs)
            assert idxs2 is None  # everything already consumed
        run_program(2, prog)

    def test_intro_testsome_loop_pattern(self):
        """The paper's introduction example: loop Testsome over a request
        array until all requests finish."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(256)
            incount = 6
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in range(incount)]
            for t in range(incount):
                yield from m.send(buf + 128, 1, dt.DOUBLE, dest=peer, tag=t)
            done = 0
            rounds = 0
            while done < incount:
                idxs, sts = yield from m.testsome(reqs)
                assert idxs is not None
                done += len(idxs)
                rounds += 1
                assert rounds < 10_000
            idxs, _ = yield from m.testsome(reqs)
            assert idxs is None  # all consumed => MPI_UNDEFINED
        run_program(2, prog)


class TestTest:
    def test_flag_false_does_not_consume(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                req = m.irecv(buf, 1, dt.DOUBLE, source=1, tag=1)
                flag, st = yield from m.test(req)
                assert flag is False and st is None
                yield from m.barrier()
                # eventually completes and a later wait sees it
                st = yield from m.wait(req)
                assert st.MPI_SOURCE == 1
            else:
                yield from m.barrier()
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=1)
        run_program(2, prog)

    def test_null_request_flag_true(self):
        def prog(m):
            flag, st = yield from m.test(None)
            assert flag is True
            assert st.MPI_SOURCE == C.PROC_NULL
        run_program(1, prog)

    def test_testall_partial_consumes_nothing(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                done_req = m.irecv(buf, 1, dt.DOUBLE, source=1, tag=1)
                pending = m.irecv(buf + 32, 1, dt.DOUBLE, source=1, tag=2)
                yield from m.barrier()   # tag 1 sent, tag 2 not yet
                yield from m.wait(done_req)
                flag, sts = yield from m.testall([pending])
                # not all complete: nothing consumed, no statuses
                yield from m.barrier()
                flag2, sts2 = yield from m.testall([pending])
                while not flag2:
                    flag2, sts2 = yield from m.testall([pending])
                assert sts2[0].MPI_TAG == 2
            else:
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=1)
                yield from m.barrier()
                yield from m.barrier()
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=2)
        run_program(2, prog)

    def test_testany_undefined_when_all_null(self):
        def prog(m):
            flag, idx, st = yield from m.testany([None])
            assert flag is True and idx == C.UNDEFINED
        run_program(1, prog)


class TestRequestQueries:
    def test_request_get_status_does_not_consume(self):
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(64)
            rr = m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=1)
            yield from m.send(buf + 32, 1, dt.DOUBLE, dest=peer, tag=1)
            yield from m.barrier()
            flag, st = m.request_get_status(rr)
            assert flag and st.MPI_TAG == 1
            # still consumable by wait
            st2 = yield from m.wait(rr)
            assert st2.MPI_TAG == 1
        run_program(2, prog)
