"""Tests for the post-mortem trace-analysis toolkit."""

import pytest

from repro.analysis.insights import (call_time_share,
                                     collective_participation, comm_matrix,
                                     load_balance, message_size_histogram)
from repro.core import PilgrimTracer
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops
from repro.workloads import make


@pytest.fixture(scope="module")
def ring_blob():
    """A 1D periodic ring: rank r sends 256B to r+1, 40 iterations."""
    def prog(m):
        n = m.comm_size()
        me = m.comm_rank()
        buf = m.malloc(512)
        for _ in range(40):
            reqs = [m.irecv(buf, 256, dt.BYTE, source=(me - 1) % n, tag=1),
                    m.isend(buf + 256, 256, dt.BYTE, dest=(me + 1) % n,
                            tag=1)]
            yield from m.waitall(reqs)
            yield from m.allreduce(buf, buf, 1, dt.DOUBLE, ops.SUM)

    tracer = PilgrimTracer()
    SimMPI(6, seed=1, tracer=tracer).run(prog)
    return tracer.result.trace_bytes


@pytest.fixture(scope="module")
def send_blob():
    """Blocking sends with distinct sizes, for the histograms/matrix."""
    def prog(m):
        buf = m.malloc(8192)
        if m.rank == 0:
            yield from m.send(buf, 64, dt.BYTE, dest=1, tag=1)
            yield from m.send(buf, 1024, dt.BYTE, dest=2, tag=1)
            yield from m.send(buf, 1024, dt.BYTE, dest=2, tag=1)
        elif m.rank == 1:
            _ = yield from m.recv(buf, 64, dt.BYTE, source=0, tag=1)
        elif m.rank == 2:
            for _ in range(2):
                _ = yield from m.recv(buf, 1024, dt.BYTE, source=0, tag=1)
        yield from m.barrier()

    tracer = PilgrimTracer()
    SimMPI(3, seed=0, tracer=tracer).run(prog)
    return tracer.result.trace_bytes


class TestCommMatrix:
    def test_ring_structure(self, ring_blob):
        mat = comm_matrix(ring_blob)
        assert mat.nprocs == 6
        for src in range(6):
            dst = (src + 1) % 6
            assert mat.messages[src, dst] == 40
            assert mat.bytes[src, dst] == 40 * 256
        # nothing else
        assert mat.total_messages == 6 * 40

    def test_explicit_sends(self, send_blob):
        mat = comm_matrix(send_blob)
        assert mat.messages[0, 1] == 1
        assert mat.messages[0, 2] == 2
        assert mat.bytes[0, 2] == 2048
        assert mat.total_messages == 3

    def test_hottest_pairs(self, send_blob):
        top = comm_matrix(send_blob).hottest_pairs(2)
        assert top[0] == (0, 2, 2048)
        assert top[1] == (0, 1, 64)

    def test_proc_null_ignored(self):
        def prog(m):
            buf = m.malloc(64)
            yield from m.send(buf, 8, dt.BYTE, dest=C.PROC_NULL, tag=1)

        tracer = PilgrimTracer()
        SimMPI(2, seed=0, tracer=tracer).run(prog)
        mat = comm_matrix(tracer.result.trace_bytes)
        assert mat.total_messages == 0


class TestHistogramsAndShares:
    def test_size_histogram_buckets(self, send_blob):
        hist = message_size_histogram(send_blob)
        assert hist[6] == 1    # 64B
        assert hist[10] == 2   # 1024B

    def test_call_time_share_sums_to_one(self, ring_blob):
        shares = call_time_share(ring_blob)
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert set(shares) >= {"MPI_Waitall", "MPI_Allreduce"}

    def test_collective_participation(self, ring_blob):
        colls = collective_participation(ring_blob)
        assert colls[("MPI_Allreduce", 0)] == 6 * 40

    def test_workload_smoke(self):
        tracer = PilgrimTracer()
        make("npb_mg", 8, iters=3).run(seed=1, tracer=tracer)
        blob = tracer.result.trace_bytes
        mat = comm_matrix(blob)
        assert mat.total_messages > 0
        shares = call_time_share(blob)
        assert abs(sum(shares.values()) - 1.0) < 1e-9


class TestLoadBalance:
    def test_balanced_ring(self, ring_blob):
        lb = load_balance(ring_blob)
        assert len(lb.per_rank_calls) == 6
        assert lb.imbalance == pytest.approx(1.0, abs=0.01)

    def test_imbalanced_master_worker(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                for peer in range(1, m.comm_size()):
                    for _ in range(10):
                        yield from m.send(buf, 8, dt.BYTE, dest=peer, tag=1)
            else:
                for _ in range(10):
                    _ = yield from m.recv(buf, 8, dt.BYTE, source=0, tag=1)

        tracer = PilgrimTracer()
        SimMPI(4, seed=0, tracer=tracer).run(prog)
        lb = load_balance(tracer.result.trace_bytes)
        assert lb.imbalance > 1.3
        assert lb.per_rank_send_bytes[0] == 3 * 10 * 8
        assert lb.per_rank_send_bytes[1] == 0
