"""Collective operation semantics: values, ordering, mismatch detection,
non-blocking variants."""

import pytest

from conftest import run_program
from repro.mpisim import CollectiveMismatchError, datatypes as dt, ops
from repro.mpisim.errors import RankProgramError


class TestBarrier:
    def test_synchronises_clocks(self):
        def prog(m):
            m.compute(1e-3 * (m.rank + 1))
            yield from m.barrier()
        sim, res = run_program(4, prog)
        # after the barrier all clocks are (nearly) aligned
        times = res.rank_times
        assert max(times) - min(times) < 1e-4


class TestValueSemantics:
    def test_bcast(self):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.bcast(buf, 1, dt.INT, root=2,
                                   data=("secret" if m.rank == 2 else None))
            assert v == "secret"
        run_program(4, prog)

    def test_reduce_only_root_gets_value(self):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.reduce(buf, buf, 1, dt.INT, ops.SUM, root=1,
                                    data=m.rank + 1)
            if m.comm_rank() == 1:
                assert v == 1 + 2 + 3 + 4
            else:
                assert v is None
        run_program(4, prog)

    @pytest.mark.parametrize("op,expect", [
        (ops.SUM, 0 + 1 + 2 + 3), (ops.PROD, 0),
        (ops.MAX, 3), (ops.MIN, 0),
    ])
    def test_allreduce_ops(self, op, expect):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.allreduce(buf, buf, 1, dt.INT, op, data=m.rank)
            assert v == expect
        run_program(4, prog)

    def test_allreduce_elementwise_sequences(self):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.allreduce(buf, buf, 2, dt.INT, ops.SUM,
                                       data=[m.rank, 1])
            assert v == [sum(range(4)), 4]
        run_program(4, prog)

    def test_allreduce_none_payload(self):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.allreduce(buf, buf, 1, dt.INT, ops.SUM)
            assert v is None
        run_program(4, prog)

    def test_gather_scatter(self):
        def prog(m):
            buf = m.malloc(8)
            g = yield from m.gather(buf, 1, dt.INT, buf, 1, dt.INT, root=0,
                                    data=m.rank * 10)
            if m.comm_rank() == 0:
                assert g == [0, 10, 20, 30]
                s = yield from m.scatter(buf, 1, dt.INT, buf, 1, dt.INT,
                                         root=0, data=["a", "b", "c", "d"])
            else:
                assert g is None
                s = yield from m.scatter(buf, 1, dt.INT, buf, 1, dt.INT,
                                         root=0)
            assert s == "abcd"[m.comm_rank()]
        run_program(4, prog)

    def test_allgather(self):
        def prog(m):
            buf = m.malloc(8)
            v = yield from m.allgather(buf, 1, dt.INT, buf, 1, dt.INT,
                                       data=m.rank ** 2)
            assert v == [0, 1, 4, 9]
        run_program(4, prog)

    def test_alltoall(self):
        def prog(m):
            n = m.comm_size()
            buf = m.malloc(8)
            v = yield from m.alltoall(buf, 1, dt.INT, buf, 1, dt.INT,
                                      data=[m.rank * 10 + j
                                            for j in range(n)])
            assert v == [j * 10 + m.rank for j in range(n)]
        run_program(4, prog)

    def test_scan_exscan(self):
        def prog(m):
            buf = m.malloc(8)
            s = yield from m.scan(buf, buf, 1, dt.INT, ops.SUM,
                                  data=m.rank + 1)
            assert s == sum(range(1, m.rank + 2))
            e = yield from m.exscan(buf, buf, 1, dt.INT, ops.SUM,
                                    data=m.rank + 1)
            if m.comm_rank() == 0:
                assert e is None
            else:
                assert e == sum(range(1, m.rank + 1))
        run_program(4, prog)

    def test_reduce_scatter_block(self):
        def prog(m):
            n = m.comm_size()
            buf = m.malloc(8)
            v = yield from m.reduce_scatter_block(
                buf, buf, 1, dt.INT, ops.SUM, data=[m.rank] * n)
            assert v == sum(range(n))
        run_program(4, prog)

    def test_reduce_scatter_varcounts(self):
        def prog(m):
            buf = m.malloc(8)
            data = list(range(6))  # same contribution from everyone
            v = yield from m.reduce_scatter(buf, buf, [1, 2, 3], dt.INT,
                                            ops.SUM, data=data)
            n = 3
            if m.comm_rank() == 0:
                assert v == [0 * n]
            elif m.comm_rank() == 1:
                assert v == [1 * n, 2 * n]
            else:
                assert v == [3 * n, 4 * n, 5 * n]
        run_program(3, prog)


class TestOrderingAndMismatch:
    def test_mismatched_collectives_detected(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.barrier()
            else:
                yield from m.bcast(buf, 1, dt.INT, root=0)
        with pytest.raises((CollectiveMismatchError, RankProgramError)):
            run_program(2, prog)

    def test_mismatched_root_detected(self):
        def prog(m):
            buf = m.malloc(8)
            yield from m.bcast(buf, 1, dt.INT, root=m.rank)
        with pytest.raises((CollectiveMismatchError, RankProgramError)):
            run_program(2, prog)

    def test_sequence_of_collectives_keeps_order(self):
        def prog(m):
            buf = m.malloc(8)
            for i in range(5):
                v = yield from m.allreduce(buf, buf, 1, dt.INT, ops.SUM,
                                           data=i)
                assert v == i * m.comm_size()
        run_program(3, prog)

    def test_collectives_on_different_comms_independent(self):
        def prog(m):
            buf = m.malloc(8)
            sub = yield from m.comm_split(color=m.rank % 2, key=m.rank)
            # world collective interleaved with sub-comm collectives
            v1 = yield from m.allreduce(buf, buf, 1, dt.INT, ops.SUM,
                                        data=1, comm=sub)
            v2 = yield from m.allreduce(buf, buf, 1, dt.INT, ops.SUM, data=1)
            assert v1 == 2 and v2 == 4
        run_program(4, prog)


class TestNonBlockingCollectives:
    def test_ibarrier(self):
        def prog(m):
            req = m.ibarrier()
            st = yield from m.wait(req)
            assert st is not None
        run_program(3, prog)

    def test_iallreduce_value_via_request(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.iallreduce(buf, buf, 1, dt.INT, ops.SUM, data=2)
            yield from m.wait(req)
            assert req.value == 2 * m.comm_size()
        run_program(4, prog)

    def test_ibcast(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.ibcast(buf, 1, dt.INT, root=0,
                           data=("x" if m.rank == 0 else None))
            yield from m.wait(req)
            assert req.value == "x"
        run_program(3, prog)

    def test_overlap_with_p2p(self):
        def prog(m):
            buf = m.malloc(16)
            req = m.iallreduce(buf, buf, 1, dt.INT, ops.SUM, data=1)
            peer = 1 - m.rank
            yield from m.send(buf, 1, dt.INT, dest=peer, tag=1)
            _ = yield from m.recv(buf, 1, dt.INT, source=peer, tag=1)
            yield from m.wait(req)
            assert req.value == 2
        run_program(2, prog)

    def test_ialltoall(self):
        def prog(m):
            n = m.comm_size()
            buf = m.malloc(8)
            req = m.ialltoall(buf, 1, dt.INT, buf, 1, dt.INT,
                              data=[m.rank] * n)
            yield from m.wait(req)
            assert req.value == list(range(n))
        run_program(3, prog)


class TestVectorCollectives:
    def test_gatherv_scatterv_record_counts(self):
        def prog(m):
            buf = m.malloc(64)
            counts = [1, 2, 3]
            displs = [0, 1, 3]
            g = yield from m.gatherv(buf, counts[m.rank], dt.INT, buf,
                                     counts, displs, dt.INT, root=0,
                                     data=m.rank)
            if m.comm_rank() == 0:
                assert g == [0, 1, 2]
            v = yield from m.scatterv(buf, counts, displs, dt.INT, buf,
                                      counts[m.rank], dt.INT, root=0,
                                      data=(["a", "b", "c"] if m.rank == 0
                                            else None))
            assert v == "abc"[m.comm_rank()]
        run_program(3, prog)

    def test_alltoallv(self):
        def prog(m):
            n = m.comm_size()
            buf = m.malloc(64)
            counts = [1] * n
            displs = list(range(n))
            v = yield from m.alltoallv(buf, counts, displs, dt.INT, buf,
                                       counts, displs, dt.INT,
                                       data=[m.rank * 100 + j
                                             for j in range(n)])
            assert v == [j * 100 + m.rank for j in range(n)]
        run_program(3, prog)
