"""Tests for the trace exporters (§6's format-converter direction) and
the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.core import PilgrimTracer, TIMING_LOSSY
from repro.core.export import to_otf_events, to_text, write_otf_text
from repro.workloads import make


@pytest.fixture(scope="module")
def stencil_blob():
    tracer = PilgrimTracer()
    make("stencil2d", 9, iters=5).run(seed=1, tracer=tracer)
    return tracer.result.trace_bytes


@pytest.fixture(scope="module")
def timed_blob():
    tracer = PilgrimTracer(timing_mode=TIMING_LOSSY)
    make("osu_allreduce", 4, iters=2).run(seed=1, tracer=tracer)
    return tracer.result.trace_bytes


class TestTextExport:
    def test_one_line_per_call(self, stencil_blob):
        text = to_text(stencil_blob, ranks=[0])
        lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        from repro.core import TraceDecoder
        dec = TraceDecoder.from_bytes(stencil_blob)
        assert len(lines) == dec.call_count(0)

    def test_materialized_arguments(self, stencil_blob):
        text = to_text(stencil_blob, ranks=[4])  # interior rank of 3x3
        # relative sources resolved to absolute ranks
        assert "source=3" in text or "source=5" in text
        assert "MPI_Waitall" in text

    def test_limit_truncates(self, stencil_blob):
        text = to_text(stencil_blob, ranks=[0], max_calls_per_rank=3)
        lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert len(lines) == 3
        assert "truncated" in text

    def test_all_ranks_by_default(self, stencil_blob):
        text = to_text(stencil_blob)
        for r in range(9):
            assert f"# --- rank {r} ---" in text


class TestOtfExport:
    def test_definitions_precede_events(self, stencil_blob):
        events = list(to_otf_events(stencil_blob))
        first_enter = next(i for i, e in enumerate(events)
                           if e.kind == "ENTER")
        assert all(e.kind.startswith("DEFINE")
                   for e in events[:first_enter])

    def test_enter_leave_balanced(self, stencil_blob):
        events = [e for e in to_otf_events(stencil_blob, ranks=[2])]
        enters = [e for e in events if e.kind == "ENTER"]
        leaves = [e for e in events if e.kind == "LEAVE"]
        assert len(enters) == len(leaves) > 0

    def test_timestamps_monotone_per_rank(self, stencil_blob):
        last = -1.0
        for e in to_otf_events(stencil_blob, ranks=[0]):
            if e.kind in ("ENTER", "LEAVE"):
                assert e.timestamp >= last - 1e-12
                last = e.timestamp

    def test_lossy_timing_used_when_present(self, timed_blob):
        events = [e for e in to_otf_events(timed_blob, ranks=[1])
                  if e.kind == "ENTER"]
        stamps = [e.timestamp for e in events]
        # per-signature reconstructed clocks are independent, so ordering
        # is only guaranteed within the b-1 relative error bound (§3.2):
        # each timestamp may undercut its predecessor by at most ~20%
        for prev, cur in zip(stamps, stamps[1:]):
            assert cur >= prev * (1 - 0.25)
        assert stamps[-1] > 0

    def test_text_rendering(self, stencil_blob):
        text = write_otf_text(stencil_blob, ranks=[0])
        assert 'DEFINE_FUNCTION 0 "MPI_Init"' in text
        assert "ENTER rank=0" in text


class TestCLI:
    def test_trace_info_dump_replay_miniapp(self, tmp_path):
        trace = tmp_path / "t.pilgrim"
        assert cli_main(["trace", "stencil2d", "-n", "9",
                         "--param", "iters=5", "-o", str(trace),
                         "--verify"]) == 0
        assert trace.exists()
        assert cli_main(["info", str(trace)]) == 0
        assert cli_main(["dump", str(trace), "--rank", "1",
                         "--limit", "4"]) == 0
        assert cli_main(["dump", str(trace), "--otf", "--rank", "0"]) == 0
        assert cli_main(["replay", str(trace), "--check"]) == 0
        mini = tmp_path / "mini.py"
        assert cli_main(["miniapp", str(trace), "-o", str(mini)]) == 0
        assert "def class_0():" in mini.read_text()

    def test_compare(self, capsys):
        assert cli_main(["compare", "npb_lu", "-n", "4", "8",
                         "--param", "iters=3"]) == 0
        out = capsys.readouterr().out
        assert "Pilgrim vs ScalaTrace" in out

    def test_analyze(self, tmp_path, capsys):
        trace = tmp_path / "t.pilgrim"
        assert cli_main(["trace", "npb_lu", "-n", "4",
                         "--param", "iters=3", "-o", str(trace)]) == 0
        capsys.readouterr()
        assert cli_main(["analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "p2p traffic" in out and "load balance" in out

    def test_workloads_listed(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "stencil2d" in out and "milc_su3_rmd" in out

    def test_bad_param_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["trace", "stencil2d", "--param", "oops",
                      "-o", str(tmp_path / "x")])

    def test_lossy_timing_flag(self, tmp_path):
        trace = tmp_path / "t.pilgrim"
        assert cli_main(["trace", "osu_barrier", "-n", "4",
                         "--param", "iters=2", "--lossy-timing",
                         "-o", str(trace)]) == 0
        from repro.core import TraceDecoder
        dec = TraceDecoder.from_bytes(trace.read_bytes())
        assert dec.trace.timing_duration is not None
