"""Tests for relative-rank encoding (§3.4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.relative import (MARK_ABS, MARK_REL, MARK_SPECIAL, decode,
                                 encode_rank, encode_rankish)
from repro.mpisim import constants as C


class TestEncodeRank:
    def test_relative_by_default(self):
        assert encode_rank(5, 3) == (MARK_REL, 2)
        assert encode_rank(1, 3) == (MARK_REL, -2)

    def test_stencil_neighbours_identical_across_ranks(self):
        # the point of the whole optimization
        assert encode_rank(4, 3) == encode_rank(8, 7) == (MARK_REL, 1)

    @pytest.mark.parametrize("special", [C.PROC_NULL, C.ANY_SOURCE,
                                         C.ANY_TAG, C.UNDEFINED])
    def test_specials_never_relative(self, special):
        assert encode_rank(special, 3) == (MARK_SPECIAL, special)
        assert decode(encode_rank(special, 3), 3) == special

    def test_disabled_gives_absolute(self):
        assert encode_rank(5, 3, enabled=False) == (MARK_ABS, 5)

    @given(st.integers(0, 10000), st.integers(0, 10000))
    def test_lossless(self, value, rank):
        assert decode(encode_rank(value, rank), rank) == value


class TestEncodeRankish:
    def test_exact_match_goes_relative(self):
        assert encode_rankish(7, 7) == (MARK_REL, 0)

    def test_constant_stays_absolute(self):
        # a constant tag near the rank must NOT become relative
        assert encode_rankish(1, 2) == (MARK_ABS, 1)
        assert encode_rankish(999, 3) == (MARK_ABS, 999)

    def test_key_equals_rank_idiom_collapses(self):
        # comm_split(key=me) produces one signature across all ranks
        assert encode_rankish(0, 0) == encode_rankish(12, 12) \
            == (MARK_REL, 0)

    def test_disabled(self):
        assert encode_rankish(7, 7, enabled=False) == (MARK_ABS, 7)

    @given(st.integers(0, 10000), st.integers(0, 10000))
    def test_lossless(self, value, rank):
        assert decode(encode_rankish(value, rank), rank) == value


class TestDecode:
    def test_relative_needs_rank(self):
        enc = encode_rank(10, 4)
        assert decode(enc, 4) == 10
        assert decode(enc, 5) == 11  # different context, different value

    def test_absolute_ignores_rank(self):
        enc = encode_rankish(999, 0)
        assert decode(enc, 123) == 999
