"""Whole-pipeline fuzzing: random (but deadlock-free) MPI programs are
traced, round-trip verified, replayed, and fixed-point checked.

Program generation: all ranks derive the same random *schedule* from a
shared seed (so collectives and matching sends/receives line up), with
rank-dependent but symmetric parameters — the SPMD structure real codes
have.  The per-run RNG seed additionally varies the completion orders the
scheduler picks, so Waitany/Waitsome/Testsome nondeterminism is exercised
throughout.
"""

import random

import pytest

from repro.core import PilgrimTracer, verify_roundtrip
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops
from repro.replay import replay_trace, structurally_equal

OPS = [ops.SUM, ops.MAX, ops.MIN]


def make_random_program(schedule_seed: int, steps: int = 25):
    """A generator-of-generators: every rank follows the same random
    schedule; peers are ring neighbours so every send has a receive."""

    def program(m):
        rng = random.Random(schedule_seed)  # identical on every rank
        n = m.comm_size()
        me = m.comm_rank()
        buf = m.malloc(1 << 14)
        comms = [None]  # None = world
        types = [dt.INT, dt.DOUBLE, dt.BYTE]
        outstanding = []

        for step in range(steps):
            # ALL schedule randomness is drawn unconditionally up front:
            # branch guards depend on rank-local state (sub-comm sizes,
            # outstanding counts), and any conditional draw would
            # desynchronise the shared SPMD schedule
            action = rng.choice(
                ["ring", "coll", "wildcard", "nonblocking", "drain",
                 "split", "datatype", "sendrecv", "rma"])
            comm = rng.choice(comms)
            dtype = rng.choice(types)
            count = rng.choice([1, 7, 64])
            tag = rng.choice([20001, 20002, 20003])
            kind = rng.choice(["barrier", "allreduce", "bcast",
                               "allgather", "alltoall"])
            op = rng.choice(OPS)
            root_raw = rng.randrange(1024)
            k = rng.randrange(1, 4)
            mode = rng.choice(["waitall", "waitany", "waitsome",
                               "testsome"])
            modulus = rng.choice([2, 3])
            vec_n = rng.randrange(1, 5)

            size_comm = m.comm_size(comm) if comm else n
            me_c = m.comm_rank(comm) if comm else me

            if action == "ring" and size_comm > 1:
                right = (me_c + 1) % size_comm
                left = (me_c - 1) % size_comm
                reqs = [m.irecv(buf, 64, dt.DOUBLE, source=left, tag=tag,
                                comm=comm),
                        m.isend(buf + 8192, count, dtype, dest=right,
                                tag=tag, comm=comm)]
                yield from m.waitall(reqs)
            elif action == "coll":
                if kind == "barrier":
                    yield from m.barrier(comm)
                elif kind == "allreduce":
                    yield from m.allreduce(buf, buf, count, dtype, op,
                                           comm, data=me)
                elif kind == "bcast":
                    root = root_raw % size_comm
                    yield from m.bcast(buf, count, dtype, root, comm,
                                       data=("x" if me_c == root else None))
                elif kind == "allgather":
                    yield from m.allgather(buf, 1, dtype, buf, 1, dtype,
                                           comm, data=me)
                else:
                    yield from m.alltoall(buf, 1, dtype, buf, 1, dtype,
                                          comm, data=[me] * size_comm)
            elif action == "wildcard" and size_comm > 1:
                right = (me_c + 1) % size_comm
                yield from m.send(buf, count, dtype, dest=right, tag=tag,
                                  comm=comm)
                _ = yield from m.recv(buf, 64, dt.DOUBLE,
                                      source=C.ANY_SOURCE, tag=tag,
                                      comm=comm)
            elif action == "nonblocking" and size_comm > 1:
                right = (me_c + 1) % size_comm
                left = (me_c - 1) % size_comm
                for j in range(k):
                    outstanding.append(
                        m.irecv(buf, 64, dt.DOUBLE, source=left,
                                tag=20010 + j, comm=comm))
                    m.isend(buf + 8192, count, dtype, dest=right,
                            tag=20010 + j, comm=comm)
            elif action == "drain" and outstanding:
                if mode == "waitall":
                    yield from m.waitall(outstanding)
                    outstanding.clear()
                elif mode == "waitany":
                    idx, _ = yield from m.waitany(outstanding)
                    if idx != C.UNDEFINED:
                        outstanding.pop(idx)
                elif mode == "waitsome":
                    idxs, _ = yield from m.waitsome(outstanding)
                    if idxs is not None:
                        for i in sorted(idxs, reverse=True):
                            outstanding.pop(i)
                else:
                    remaining = len(outstanding)
                    guard = 0
                    while remaining and guard < 10_000:
                        idxs, _ = yield from m.testsome(outstanding)
                        remaining -= len(idxs or ())
                        guard += 1
                    outstanding.clear()
            elif action == "split" and len(comms) < 3:
                color = me % modulus
                sub = yield from m.comm_split(comm=None, color=color,
                                              key=me)
                comms.append(sub)
            elif action == "datatype":
                t = m.type_vector(vec_n, 2, 4, dtype)
                m.type_commit(t)
                yield from m.send(buf, 1, t, dest=C.PROC_NULL, tag=1)
                m.type_free(t)
            elif action == "sendrecv" and size_comm > 1:
                right = (me_c + 1) % size_comm
                left = (me_c - 1) % size_comm
                yield from m.sendrecv(buf, count, dtype, right, tag,
                                      buf + 8192, 64, dt.DOUBLE, left, tag,
                                      comm=comm)
            elif action == "rma" and comm is None and n >= 2:
                win = yield from m.win_create(buf, 1 << 14, 8)
                yield from m.win_fence(win)
                peer = (me + 1) % n
                m.put(buf, count, dtype, peer, 0, count, dtype, win)
                yield from m.win_fence(win)
                yield from m.win_free(win)
        # drain any leftovers so the run terminates cleanly
        if outstanding:
            yield from m.waitall(outstanding)
        m.free(buf)

    return program


@pytest.mark.parametrize("schedule_seed", range(8))
def test_fuzzed_program_roundtrip_and_replay(schedule_seed):
    program = make_random_program(schedule_seed)
    nprocs = 3 + schedule_seed % 4
    tracer = PilgrimTracer(keep_raw=True)
    SimMPI(nprocs, seed=schedule_seed * 17 + 1, tracer=tracer).run(program)

    report = verify_roundtrip(tracer)
    assert report.ok, report.mismatches[:3]

    blob = tracer.result.trace_bytes
    retrace = PilgrimTracer()
    replay_trace(blob, seed=schedule_seed + 100, tracer=retrace)
    assert structurally_equal(blob, retrace.result.trace_bytes)


@pytest.mark.parametrize("run_seed", [1, 2, 3])
def test_fuzzed_nondeterminism_always_roundtrips(run_seed):
    """Same schedule, different completion orders: every run must verify
    (the trace content differs per run, the losslessness must not)."""
    program = make_random_program(4, steps=30)
    tracer = PilgrimTracer(keep_raw=True)
    SimMPI(4, seed=run_seed, tracer=tracer).run(program)
    assert verify_roundtrip(tracer).ok


def test_fuzzed_miniapp_roundtrip():
    from repro.mpisim import SimMPI as _SimMPI
    from repro.replay import generate_miniapp, load_miniapp
    from repro.replay.engine import ReplayState

    program = make_random_program(2, steps=20)
    tracer = PilgrimTracer()
    SimMPI(4, seed=5, tracer=tracer).run(program)
    blob = tracer.result.trace_bytes
    ns = load_miniapp(generate_miniapp(blob))
    retrace = PilgrimTracer()
    state = ReplayState(ns["NPROCS"])
    sim = _SimMPI(ns["NPROCS"], seed=9, tracer=retrace)
    state.bind_comm(0, sim.world)
    sim.run(ns["make_program"](state))
    assert structurally_equal(blob, retrace.result.trace_bytes)
