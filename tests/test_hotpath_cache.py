"""The hot-path caches are pure accelerators.

The encoder signature cache and the CST identity fast path must be
invisible everywhere except the clock: byte-identical traces with the
caches on or off (across workload families, timing modes and the
parallel finalize), reset at shard-freeze time, and never serialized.
Plus the regression gate of ``repro bench --compare``.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import bench
from repro.bench import Benchmark, compare_results, run_benchmark
from repro.bench.capture import CapturedRun
from repro.cli import main as cli_main
from repro.core.backends import TracerOptions, make_tracer
from repro.workloads import make

FAMILIES = ("stencil2d", "osu_latency", "npb_mg", "flash_sedov",
            "milc_su3_rmd")


def _trace_bytes(family: str, nprocs: int, seed: int, *,
                 cached: bool, lossy: bool = False,
                 jobs: int = 1) -> bytes:
    tracer = make_tracer("pilgrim", TracerOptions(
        lossy_timing=lossy, jobs=jobs, signature_cache=cached))
    make(family, nprocs).run(seed=seed, tracer=tracer)
    return tracer.result.trace_bytes


class TestCacheIsInvisible:
    @settings(max_examples=8, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([2, 4]),
           seed=st.integers(0, 2**16),
           lossy=st.booleans())
    def test_cached_trace_is_byte_identical(self, family, nprocs, seed,
                                            lossy):
        a = _trace_bytes(family, nprocs, seed, cached=True, lossy=lossy)
        b = _trace_bytes(family, nprocs, seed, cached=False, lossy=lossy)
        assert a == b

    @pytest.mark.parametrize("family", ["stencil2d", "milc_su3_rmd"])
    def test_identical_under_parallel_finalize(self, family):
        a = _trace_bytes(family, 4, 7, cached=True, jobs=2)
        b = _trace_bytes(family, 4, 7, cached=False, jobs=1)
        assert a == b

    def test_flag_reaches_encoder_and_cst(self):
        on = make_tracer("pilgrim", TracerOptions(signature_cache=True))
        off = make_tracer("pilgrim", TracerOptions(signature_cache=False))
        make("osu_latency", 2).run(seed=1, tracer=on)
        make("osu_latency", 2).run(seed=1, tracer=off)
        assert all(rc.encoder.cache_enabled for rc in on.ranks)
        assert all(not rc.encoder.cache_enabled for rc in off.ranks)
        assert all(not rc.cst._fast for rc in off.ranks)


class TestCacheLifecycle:
    @pytest.fixture()
    def warm_compressor(self):
        """A rank compressor mid-run, caches populated, not yet frozen."""
        cap = CapturedRun.record("stencil2d", 4, seed=3)
        tracer = make_tracer("pilgrim", TracerOptions())
        cap.replay(tracer)
        return tracer.ranks[0]

    def test_freeze_resets_caches(self, warm_compressor):
        rc = warm_compressor
        assert rc.encoder.cache_size > 0
        assert rc.cst._last_sig is not None or rc.cst._by_id
        rc.freeze()
        assert rc.encoder.cache_size == 0
        assert rc.cst._last_sig is None
        assert not rc.cst._by_id

    def test_encoder_never_pickles_cache(self, warm_compressor):
        enc = warm_compressor.encoder
        assert enc.cache_size > 0
        state = enc.__getstate__()
        assert state["_sig_cache"] == {}
        # forces an epoch resync on first encode after unpickling
        assert state["_mem_epoch"] == -1

    def test_cst_never_pickles_fast_path(self, warm_compressor):
        cst = warm_compressor.cst
        clone = pickle.loads(pickle.dumps(cst))
        assert clone._last_sig is None
        assert clone._by_id == {}
        assert clone._fast == cst._fast
        assert clone.sigs == cst.sigs
        assert clone.counts == cst.counts
        # the clone still interns correctly after losing the fast path
        sig = cst.sigs[0]
        term = clone.intern(sig, 0.0)
        assert term == cst._table[sig]


class TestReplayHarness:
    def test_replay_matches_live_run(self):
        live = make_tracer("pilgrim", TracerOptions())
        make("osu_latency", 4).run(seed=5, tracer=live)
        cap = CapturedRun.record("osu_latency", 4, seed=5)
        replayed = make_tracer("pilgrim", TracerOptions())
        cap.replay(replayed, finish=True)
        assert replayed.result.trace_bytes == live.result.trace_bytes


class TestBenchHarness:
    @pytest.fixture()
    def dummy_bench(self):
        state = {"value": 1.0}

        def factory(params):
            def sample():
                return {"dummy.time_ms": state["value"]}
            return sample

        assert "dummy" not in bench.REGISTRY
        bench.REGISTRY["dummy"] = Benchmark("dummy", "test-only", factory)
        try:
            yield state
        finally:
            del bench.REGISTRY["dummy"]

    def test_run_benchmark_document(self, dummy_bench):
        doc = run_benchmark("dummy", repeats=3, warmup=0)
        assert doc["benchmark"] == "dummy"
        assert doc["metrics"] == {"dummy.time_ms": 1.0}
        assert doc["stats"]["dummy.time_ms"]["samples"] == [1.0] * 3
        assert doc["repeats"] == 3

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            run_benchmark("no-such-bench")

    def test_compare_flags_regressions_and_missing(self):
        baseline = {"metrics": {"a.ms": 10.0, "b.ms": 5.0, "gone.ms": 1.0}}
        current = {"metrics": {"a.ms": 13.0, "b.ms": 5.5}}
        regressions, missing = compare_results(current, baseline, 25.0)
        assert [r.metric for r in regressions] == ["a.ms"]
        assert regressions[0].limit == pytest.approx(12.5)
        assert missing == ["gone.ms"]
        regressions, _ = compare_results(current, baseline, 50.0)
        assert regressions == []

    def _write_baseline(self, path, metrics):
        path.write_text(json.dumps({"benchmark": "dummy",
                                    "metrics": metrics}))

    def test_cli_gate_passes_within_budget(self, dummy_bench, tmp_path,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        dummy_bench["value"] = 1.05
        self._write_baseline(tmp_path / "base.json", {"dummy.time_ms": 1.0})
        rc = cli_main(["bench", "dummy", "--repeats", "2", "--warmup", "0",
                       "--compare", "base.json", "--max-regression", "10"])
        assert rc == 0
        assert (tmp_path / "BENCH_dummy.json").exists()
        assert (tmp_path / "benchmarks/results/dummy.json").exists()

    def test_cli_gate_fails_on_regression(self, dummy_bench, tmp_path,
                                          monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        dummy_bench["value"] = 1.5
        self._write_baseline(tmp_path / "base.json", {"dummy.time_ms": 1.0})
        rc = cli_main(["bench", "dummy", "--repeats", "2", "--warmup", "0",
                       "--compare", "base.json", "--max-regression", "10"])
        assert rc == 1
        assert "REGRESSION dummy.time_ms" in capsys.readouterr().out

    def test_cli_gate_fails_on_missing_metric(self, dummy_bench, tmp_path,
                                              monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self._write_baseline(tmp_path / "base.json", {"renamed.ms": 1.0})
        rc = cli_main(["bench", "dummy", "--repeats", "1", "--warmup", "0",
                       "--compare", "base.json", "--max-regression", "10"])
        assert rc == 1
        assert "MISSING" in capsys.readouterr().out

    def test_cli_list(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("hotpath", "finalize", "decode"):
            assert name in out
