"""Tests for frozen Grammar serialization and transforms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grammar import Grammar
from repro.core.packing import Reader
from repro.core.sequitur import Sequitur


def freeze(seq_values, ld=True):
    s = Sequitur(loop_detection=ld)
    for v in seq_values:
        s.append(v)
    return Grammar.freeze(s)


class TestFreeze:
    def test_expand_matches_input(self):
        seq = [1, 2, 3] * 10 + [4, 5] * 7
        assert freeze(seq).expand() == seq

    def test_canonical_identity_across_instances(self):
        seq = [3, 1, 4, 1, 5] * 9
        assert freeze(seq) == freeze(seq)
        assert hash(freeze(seq)) == hash(freeze(seq))

    def test_different_strings_different_grammars(self):
        assert freeze([1, 2] * 5) != freeze([2, 1] * 5)

    def test_start_rule_is_rule_zero(self):
        g = freeze([1, 2] * 8)
        # expanding only rule 0 reconstructs everything
        assert Grammar((g.rules[0],) + g.rules[1:]).expand() == [1, 2] * 8

    def test_expanded_length_without_materializing(self):
        seq = [1, 2, 3, 4] * 50
        g = freeze(seq)
        assert g.expanded_length() == len(seq)

    def test_empty_grammar(self):
        g = freeze([])
        assert g.expand() == []
        assert g.expanded_length() == 0


class TestTransforms:
    def test_remap_terminals(self):
        seq = [0, 1, 0, 1, 2]
        g = freeze(seq).remap_terminals(lambda t: t + 100)
        assert g.expand() == [v + 100 for v in seq]

    def test_remap_preserves_structure(self):
        g = freeze([0, 1] * 10)
        g2 = g.remap_terminals(lambda t: t)
        assert g2 == g

    def test_shift_rules(self):
        g = freeze([1, 2] * 6)
        shifted = g.shift_rules(10)
        for rule in shifted:
            for v, _e in rule:
                assert v >= 0 or v <= -11  # all refs moved past offset

    def test_iter_terminals(self):
        g = freeze([5, 6, 5, 6, 7])
        assert set(g.iter_terminals()) == {5, 6, 7}


class TestSerialization:
    @pytest.mark.parametrize("seq", [
        [], [1], [1, 2, 3], [1, 2] * 20, list(range(10)) * 5,
        [0] * 100,
    ])
    def test_bytes_roundtrip(self, seq):
        g = freeze(seq)
        assert Grammar.from_bytes(g.to_bytes()) == g

    def test_ints_roundtrip(self):
        g = freeze([1, 2, 1, 2, 3])
        assert Grammar.from_ints(g.to_ints()) == g

    def test_write_to_reader_roundtrip(self):
        g = freeze([4, 5, 6] * 4)
        out = bytearray()
        g.write_to(out)
        assert Grammar.from_reader(Reader(bytes(out))) == g

    def test_identical_grammars_identical_bytes(self):
        # the §3.5.2 memcmp identity check depends on this
        a = freeze([1, 2, 3] * 30)
        b = freeze([1, 2, 3] * 30)
        assert a.to_bytes() == b.to_bytes()

    def test_size_bytes_small_for_loops(self):
        g = freeze([1, 2, 3, 4] * 1000)
        assert g.size_bytes() < 64

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 6), max_size=60))
    def test_roundtrip_property(self, seq):
        g = freeze(seq)
        assert Grammar.from_bytes(g.to_bytes()).expand() == seq

    def test_cycle_detection(self):
        bad = Grammar(((( -1, 1),),))  # rule 0 references itself
        with pytest.raises(ValueError):
            bad.expand()
        with pytest.raises(ValueError):
            bad.expanded_length()
