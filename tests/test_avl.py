"""Unit + property tests for the AVL interval tree (paper §3.3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.avl import IntervalTree


def build(segs):
    t = IntervalTree()
    for addr, size, payload in segs:
        t.insert(addr, size, payload)
    return t


class TestBasics:
    def test_empty(self):
        t = IntervalTree()
        assert len(t) == 0
        assert t.find_containing(100) is None
        assert t.find_exact(100) is None

    def test_single_segment_lookup(self):
        t = build([(100, 10, "a")])
        assert t.find_containing(100).payload == "a"
        assert t.find_containing(109).payload == "a"
        assert t.find_containing(110) is None
        assert t.find_containing(99) is None

    def test_exact_vs_containing(self):
        t = build([(100, 10, "a")])
        assert t.find_exact(100).payload == "a"
        assert t.find_exact(105) is None
        assert t.find_containing(105).payload == "a"

    def test_duplicate_start_rejected(self):
        t = build([(100, 10, "a")])
        with pytest.raises(KeyError):
            t.insert(100, 5, "b")

    def test_remove_returns_payload(self):
        t = build([(100, 10, "a"), (200, 5, "b")])
        assert t.remove(100) == "a"
        assert len(t) == 1
        assert t.find_containing(105) is None
        assert t.find_containing(202).payload == "b"

    def test_remove_missing_raises(self):
        t = build([(100, 10, "a")])
        with pytest.raises(KeyError):
            t.remove(50)

    def test_items_sorted(self):
        t = build([(300, 1, 3), (100, 1, 1), (200, 1, 2)])
        assert [n.addr for n in t.items()] == [100, 200, 300]

    def test_adjacent_segments_boundaries(self):
        t = build([(100, 10, "a"), (110, 10, "b")])
        assert t.find_containing(109).payload == "a"
        assert t.find_containing(110).payload == "b"

    def test_many_inserts_stay_balanced(self):
        t = IntervalTree()
        n = 1000
        for i in range(n):  # ascending order = worst case for naive BST
            t.insert(i * 16, 16, i)
        t.check_invariants()
        # height of an AVL tree is < 1.44 log2(n)
        assert t._root.height <= 15
        for i in (0, n // 2, n - 1):
            assert t.find_containing(i * 16 + 7).payload == i

    def test_remove_rebalances(self):
        t = IntervalTree()
        for i in range(200):
            t.insert(i * 10, 10, i)
        for i in range(0, 200, 2):
            t.remove(i * 10)
        t.check_invariants()
        assert len(t) == 100
        assert t.find_containing(15).payload == 1
        assert t.find_containing(5) is None


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 400), st.booleans()), max_size=120))
def test_against_reference_model(operations):
    """Differential test vs a dict reference (segments of fixed size 8,
    aligned to 8, so they never overlap)."""
    tree = IntervalTree()
    ref: dict[int, int] = {}
    for slot, is_insert in operations:
        addr = slot * 8
        if is_insert:
            if addr in ref:
                with pytest.raises(KeyError):
                    tree.insert(addr, 8, slot)
            else:
                tree.insert(addr, 8, slot)
                ref[addr] = slot
        else:
            if addr in ref:
                assert tree.remove(addr) == ref.pop(addr)
            else:
                with pytest.raises(KeyError):
                    tree.remove(addr)
    tree.check_invariants()
    assert len(tree) == len(ref)
    for addr, payload in ref.items():
        node = tree.find_containing(addr + 3)
        assert node is not None and node.payload == payload
