"""What-if replay + divergence report tests (``repro.replay.divergence``).

Two headline properties:

* **fixed point, report form** — identical-conditions replay of any
  workload family reports zero divergences with conserving call
  accounting (Hypothesis, across families × nprocs × timing modes);
* **injection-site precision** — a single injected scheduler delay on
  worker *w* of the master-worker farm diverges exactly at the master's
  first wildcard receive whose *recorded* completion source is *w*
  (computed independently from the decoded trace).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core import TraceDecoder, TracerOptions
from repro.core.errors import ReplayFormatError, TraceFormatError
from repro.core.relative import decode as rel_decode
from repro.mpisim import constants as C
from repro.mpisim.netmodel import NetworkModel
from repro.replay import (DIVERGENCE_REPORT_SCHEMA, ExtrapolationError,
                          ReplayOptions, parse_net, run_replay_fuzz)

#: the property sweep: ≥4 workload families with distinct call mixes
FAMILIES = ["stencil2d", "osu_latency", "npb_is", "milc_su3_rmd",
            "mw_sweep"]


def trace_of(workload, nprocs, seed=1, lossy=False, **params) -> bytes:
    return repro.trace(workload, nprocs, seed=seed, params=params,
                       options=TracerOptions(lossy_timing=lossy)
                       ).trace_bytes


def assert_conserved(report):
    c = report.counts
    assert report.conserved(), c
    assert c["recorded"] == (c["matched"] + c["skipped"]
                             + c["mismatched"] + c["unchecked"]), c


class TestIdenticalConditions:
    @settings(max_examples=12, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([4, 8]),
           seed=st.integers(min_value=1, max_value=3),
           lossy=st.booleans())
    def test_fixed_point_reports_zero_divergences(self, family, nprocs,
                                                  seed, lossy):
        blob = trace_of(family, nprocs, seed=seed, lossy=lossy)
        res = repro.replay(blob)
        assert not res.diverged
        assert res.report.points == []
        assert res.report.counts["mismatched"] == 0
        assert res.report.counts["unchecked"] == 0
        assert_conserved(res.report)

    def test_api_replay_accepts_options_object(self):
        blob = trace_of("stencil2d", 4)
        res = repro.replay(blob, options=ReplayOptions(seed=7))
        assert not res.diverged
        assert res.options.seed == 7
        assert res.nprocs == res.recorded_nprocs == 4

    def test_spans_cover_the_replay_phases(self):
        blob = trace_of("osu_latency", 4)
        res = repro.replay(blob, options=ReplayOptions(spans=True))
        names = {sp["name"] for sp in res.spans}
        assert {"replay", "decode", "build", "execute",
                "compare"} <= names

    def test_report_validates_against_schema(self):
        from repro.obs import validate_json
        blob = trace_of("mw_sweep", 4)
        res = repro.replay(blob)
        validate_json(res.report_dict(), DIVERGENCE_REPORT_SCHEMA)


def first_wildcard_recv_from(blob: bytes, source: int) -> int:
    """Call index of the master's first ANY_SOURCE recv whose recorded
    completion source is *source* — computed from the decoded trace,
    independently of the comparator."""
    for idx, call in enumerate(TraceDecoder.from_bytes(blob).rank_calls(0)):
        if call.fname != "MPI_Recv":
            continue
        src_enc = call.params.get("source")
        if rel_decode(src_enc, 0) != C.ANY_SOURCE:
            continue
        stat = call.params.get("status")
        if stat and rel_decode(stat[0], 0) == source:
            return idx
    raise AssertionError(f"no recorded wildcard recv from {source}")


class TestFaultInjectionDivergence:
    @settings(max_examples=10, deadline=None)
    @given(worker=st.integers(min_value=1, max_value=3),
           times=st.sampled_from([1, 4]),
           seed=st.integers(min_value=1, max_value=3))
    def test_single_sched_delay_diverges_at_injection_site(self, worker,
                                                           times, seed):
        """Delaying worker *w* flips the master's wildcard matching at
        the first receive that recorded *w* as its source — the report
        must name exactly that rank and call index."""
        blob = trace_of("mw_sweep", 5, seed=seed)
        res = repro.replay(blob, options=ReplayOptions(
            fault_plan=f"delay@sched*{times}:rank={worker}"))
        assert res.fired_faults  # the plan actually fired
        assert_conserved(res.report)
        if not res.diverged:
            # boundary: the delayed worker was already the last arrival
            # everywhere, so arrival order never flipped
            return
        first = res.first
        assert first.rank == 0
        assert first.function == "MPI_Recv"
        assert first.field == "status.source"
        assert first.recorded == worker
        assert first.call_index == first_wildcard_recv_from(blob, worker)

    def test_known_case_diverges(self):
        """A pinned configuration that must diverge (guards against the
        property silently hitting only boundary cases)."""
        blob = trace_of("mw_sweep", 5, seed=3)
        res = repro.replay(blob, options=ReplayOptions(
            fault_plan="delay@sched*1:rank=2"))
        assert res.diverged
        assert res.first.recorded == 2
        assert res.first.live != 2

    def test_same_seed_byte_identical_report(self, tmp_path):
        blob = trace_of("mw_sweep", 4, seed=2)
        opts = ReplayOptions(fault_plan="delay@sched*4:rank=2", seed=5)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        repro.replay(blob, options=opts).write_report(a)
        repro.replay(blob, options=opts).write_report(b)
        assert a.read_bytes() == b.read_bytes()
        doc = json.loads(a.read_text())
        assert doc["diverged"] is True
        assert doc["fired_faults"]

    def test_divergence_freezes_downstream_checking(self):
        """After a rank's first divergence the tail is counted as
        unchecked, never reported as more points."""
        blob = trace_of("mw_sweep", 5, seed=3)
        res = repro.replay(blob, options=ReplayOptions(
            fault_plan="delay@sched*4:rank=1"))
        assert res.diverged
        per_rank_points = [p.rank for p in res.report.points]
        assert len(per_rank_points) == len(set(per_rank_points))
        assert res.report.counts["unchecked"] > 0


class TestNetworkWhatIf:
    def test_changed_alpha_beta_is_deterministic(self, tmp_path):
        blob = trace_of("mw_sweep", 4, seed=2)
        opts = ReplayOptions(net="alpha=1e-4,beta=1e-8")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        res = repro.replay(blob, options=opts)
        res.write_report(a)
        repro.replay(blob, options=opts).write_report(b)
        assert a.read_bytes() == b.read_bytes()
        assert_conserved(res.report)

    def test_net_timing_deltas_are_reported_not_divergences(self):
        """A wildly slower network on a deterministic workload changes
        timing, not structure: zero divergence points, nonzero timing
        delta."""
        blob = trace_of("stencil2d", 4)
        res = repro.replay(blob, options=ReplayOptions(
            net=NetworkModel(alpha=1e-3, beta=1e-7)))
        assert not res.diverged
        assert res.report.timing_abs_delta_s > 0


class TestExtrapolation:
    def test_spmd_trace_stretches_cleanly(self):
        blob = trace_of("osu_allreduce", 4)
        res = repro.replay(blob,
                           options=ReplayOptions(extrapolate_ranks=8))
        assert res.nprocs == 8 and res.recorded_nprocs == 4
        assert not res.diverged
        assert_conserved(res.report)
        # every replayed rank re-issued the full recorded pattern
        per_call = res.report.counts["recorded"] // 8
        assert res.report.counts["matched"] == per_call * 8

    def test_spmd_trace_shrinks_cleanly(self):
        blob = trace_of("osu_barrier", 4)
        res = repro.replay(blob,
                           options=ReplayOptions(extrapolate_ranks=2))
        assert res.nprocs == 2
        assert not res.diverged

    def test_multi_pattern_trace_is_refused(self):
        blob = trace_of("stencil2d", 4)
        with pytest.raises(ExtrapolationError):
            repro.replay(blob, options=ReplayOptions(extrapolate_ranks=8))


class TestOptionsValidation:
    def test_eager_validation(self):
        with pytest.raises(ValueError):
            ReplayOptions(noise=-1.0)
        with pytest.raises(ValueError):
            ReplayOptions(extrapolate_ranks=0)
        with pytest.raises(ValueError):
            ReplayOptions(seed="zero")
        with pytest.raises(ValueError):
            ReplayOptions(node_size=0)

    def test_bad_net_specs_fail_at_construction(self):
        with pytest.raises(ValueError):
            ReplayOptions(net="alpha=not-a-number")
        with pytest.raises(ValueError):
            ReplayOptions(net="gamma=1e-6")
        with pytest.raises(ValueError):
            ReplayOptions(net="alpha")
        with pytest.raises(ValueError):
            ReplayOptions(net={"alpha": -1.0})

    def test_net_spec_forms_agree(self):
        m = parse_net("alpha=2e-6,beta=4e-10")
        assert m == NetworkModel(alpha=2e-6, beta=4e-10)
        assert parse_net({"alpha": 2e-6, "beta": 4e-10}) == m
        assert parse_net(m) is m
        assert parse_net(None) is None

    def test_string_fault_plan_is_parsed_eagerly(self):
        from repro.resilience import FaultPlan
        opts = ReplayOptions(fault_plan="delay@sched*2:rank=1",
                             fault_seed=9)
        assert isinstance(opts.fault_plan, FaultPlan)
        assert opts.fault_plan.seed == 9
        with pytest.raises(ValueError):
            ReplayOptions(fault_plan="bogus syntax @@@")

    def test_what_if_flag(self):
        assert not ReplayOptions().what_if
        assert not ReplayOptions(seed=9, noise=0.1).what_if
        assert ReplayOptions(net="alpha=1e-6").what_if
        assert ReplayOptions(fault_plan="delay@sched*1").what_if
        assert ReplayOptions(extrapolate_ranks=8).what_if


class TestReplayStructuredErrors:
    def test_garbage_raises_trace_format_error(self):
        with pytest.raises(TraceFormatError):
            repro.replay(b"definitely not a trace")

    def test_replay_format_error_is_a_value_error(self):
        # legacy callers catch ValueError; the hierarchy must bottom out
        assert issubclass(ReplayFormatError, ValueError)
        assert issubclass(ReplayFormatError, TraceFormatError)

    def test_fuzzed_traces_never_crash_the_replayer(self):
        blob = trace_of("mw_sweep", 4, seed=1)
        report = run_replay_fuzz(blob, seed=0, n_random=60)
        assert report.ok, report.summary()
        assert report.total > 0


class TestCliExitConvention:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "farm.pilgrim"
        path.write_bytes(trace_of("mw_sweep", 4, seed=2))
        assert self.run_cli("replay", str(path)) == 0
        assert self.run_cli("replay", str(path),
                            "--fault-plan", "delay@sched*4:rank=2") == 1
        assert self.run_cli("replay", str(path), "--net", "alpha=oops") == 2
        assert self.run_cli("replay", str(tmp_path / "missing")) == 2
        garbage = tmp_path / "garbage"
        garbage.write_bytes(b"\x00" * 64)
        assert self.run_cli("replay", str(garbage)) == 2
        capsys.readouterr()

    def test_json_report_matches_written_file(self, tmp_path, capsys):
        path = tmp_path / "farm.pilgrim"
        path.write_bytes(trace_of("mw_sweep", 4, seed=2))
        out = tmp_path / "report.json"
        rc = self.run_cli("replay", str(path),
                          "--fault-plan", "delay@sched*4:rank=2",
                          "--json", "--report", str(out))
        assert rc == 1
        stdout = capsys.readouterr().out
        assert json.loads(stdout) == json.loads(out.read_text())
