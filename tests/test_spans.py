"""Tests for the span-telemetry subsystem: the recorder, the
cross-process collection protocol, the Chrome-trace/JSONL/manifest
exporters, and the surfacing through ``repro.api`` and the CLI.

Includes the regression tests this PR's satellites demand:

* parent-side metric parity — counters recorded in pooled workers must
  reach the parent, so ``jobs=N`` totals equal serial-mode totals;
* no duplicate spans from killed-and-retried workers under fault
  injection;
* a ``jobs=4`` run produces one merged span tree with at least one span
  per worker process and a Chrome trace-event file that round-trips
  through ``json.load``.
"""

import json
from collections import Counter

import pytest

from repro import api
from repro.cli import main as cli_main
from repro.core import PilgrimTracer, TracerOptions
from repro.obs import (CHROME_TRACE_SCHEMA, MANIFEST_SCHEMA, NULL_RECORDER,
                       MetricsRegistry, PhaseProfiler, RunManifest, Span,
                       SpanRecorder, build_span_tree, read_spans_jsonl,
                       span_self_ns, to_chrome_trace, validate_json,
                       write_chrome_trace, write_spans_jsonl)
from repro.resilience.faults import FaultPlan
from repro.workloads import make


class TestSpanRecorder:
    def test_nesting_parents_spans(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner2", scope="x", k=1):
                pass
        outer, inner, inner2 = rec.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner2.parent_id == outer.span_id
        assert inner2.scope == "x" and inner2.attrs == {"k": 1}
        assert outer.end_ns >= inner2.end_ns >= inner2.start_ns

    def test_synthetic_record_parents_under_open_span(self):
        rec = SpanRecorder()
        with rec.span("root"):
            sp = rec.record("folded", dur_s=0.5)
        assert sp.parent_id == rec.spans[0].span_id
        assert sp.attrs["synthetic"] is True
        assert sp.end_ns - sp.start_ns == pytest.approx(5e8, rel=1e-6)

    def test_disabled_recorder_is_inert(self):
        rec = SpanRecorder(enabled=False)
        with rec.span("x"):
            pass
        assert rec.record("y", dur_s=1.0) is None
        assert rec.splice([{"span_id": 1, "name": "z"}]) == 0
        assert rec.export() == [] and len(rec) == 0
        assert NULL_RECORDER.enabled is False

    def test_splice_remaps_ids_and_grafts_roots(self):
        worker = SpanRecorder(pid=4242)
        with worker.span("task"):
            with worker.span("sub"):
                pass
        parent = SpanRecorder()
        with parent.span("level"):
            n = parent.splice(worker.export())
        assert n == 2
        level, task, sub = parent.spans
        assert task.parent_id == level.span_id  # root grafted
        assert sub.parent_id == task.span_id    # interior edge kept
        assert task.pid == 4242 and sub.pid == 4242
        ids = [s.span_id for s in parent.spans]
        assert len(set(ids)) == 3               # no id collisions

    def test_round_trip_dict(self):
        sp = Span(7, "n", parent_id=3, scope="s", start_ns=10,
                  end_ns=30, pid=9, attrs={"a": 1})
        back = Span.from_dict(sp.to_dict())
        assert back.to_dict() == sp.to_dict()
        assert back.dur_ns == 20

    def test_tree_and_self_time(self):
        rec = SpanRecorder()
        with rec.span("root"):
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        roots = build_span_tree(rec.export())
        assert len(roots) == 1
        root = roots[0]
        assert [c["span"]["name"] for c in root["children"]] == ["a", "b"]
        child_ns = sum(max(0, c["span"]["end_ns"] - c["span"]["start_ns"])
                       for c in root["children"])
        total_ns = root["span"]["end_ns"] - root["span"]["start_ns"]
        assert span_self_ns(root) == total_ns - child_ns

    def test_orphan_spans_become_roots(self):
        roots = build_span_tree([
            {"span_id": 5, "parent_id": 99, "name": "orphan",
             "start_ns": 0, "end_ns": 1}])
        assert len(roots) == 1 and roots[0]["span"]["name"] == "orphan"


class TestExporters:
    def _spans(self):
        rec = SpanRecorder(pid=100)
        with rec.span("finalize", scope="pilgrim"):
            with rec.span("merge", scope="phase"):
                pass
        worker = SpanRecorder(pid=200)
        with worker.span("merge.task", scope="worker"):
            pass
        rec.splice(worker.export())
        return rec.export()

    def test_chrome_trace_shape_and_schema(self):
        doc = to_chrome_trace(self._spans())
        validate_json(doc, CHROME_TRACE_SCHEMA)
        assert doc["displayTimeUnit"] == "ms"
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"parent", "worker-200"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        assert min(e["ts"] for e in xs) == 0  # rebased to earliest span

    def test_chrome_trace_file_round_trips(self, tmp_path):
        path = tmp_path / "t.json"
        n = write_chrome_trace(str(path), self._spans())
        doc = json.load(open(path))
        assert len(doc["traceEvents"]) == n
        validate_json(doc, CHROME_TRACE_SCHEMA)

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_json({}, CHROME_TRACE_SCHEMA)
        with pytest.raises(ValueError, match=r"ph"):
            validate_json({"traceEvents": [{"name": "x", "ph": "Q",
                                            "pid": 1, "tid": 0}]},
                          CHROME_TRACE_SCHEMA)
        with pytest.raises(ValueError, match="minimum"):
            validate_json({"traceEvents": [{"name": "x", "ph": "X",
                                            "pid": 1, "tid": 0,
                                            "ts": -1}]},
                          CHROME_TRACE_SCHEMA)
        with pytest.raises(ValueError, match="expected array"):
            validate_json({"traceEvents": {}}, CHROME_TRACE_SCHEMA)

    def test_spans_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "s.jsonl"
        spans = self._spans()
        n = write_spans_jsonl(str(path), spans, meta={"workload": "w"})
        assert n == len(spans) + 1  # header line
        back = read_spans_jsonl(str(path))
        assert back == spans

    def test_manifest_write_and_load(self, tmp_path):
        m = RunManifest(command="trace", workload="w", nprocs=4,
                        options={"jobs": 2}, totals={"calls": 10})
        path = RunManifest.default_path(str(tmp_path / "out.pilgrim"))
        m.write(path)
        doc = RunManifest.load(path)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["workload"] == "w" and doc["totals"] == {"calls": 10}
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            RunManifest.load(str(bad))


class TestProfilerSpans:
    def test_phase_blocks_record_nested_spans(self):
        reg = MetricsRegistry()
        rec = SpanRecorder()
        prof = PhaseProfiler(reg.scope("p"), recorder=rec)
        with rec.span("root"):
            with prof.phase("cst_merge"):
                pass
            prof.add("encode", 0.25, count=10)
        names = [s.name for s in rec.spans]
        assert names == ["root", "cst_merge", "encode"]
        assert rec.spans[1].parent_id == rec.spans[0].span_id
        assert rec.spans[2].attrs["synthetic"] is True
        # the flat phase dict is unchanged by span recording
        assert set(prof.phases()) == {"cst_merge", "encode"}
        assert prof.wall("encode") == 0.25 and prof.count("encode") == 10

    def test_profiler_without_recorder_records_nothing(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        assert prof.recorder is NULL_RECORDER
        assert prof.recorder.export() == []


def _run(nprocs=8, jobs=1, fault_plan=None, seed=1):
    reg = MetricsRegistry()
    opts = TracerOptions(metrics=reg, jobs=jobs, fault_plan=fault_plan)
    res = api.trace("stencil2d", nprocs, options=opts, seed=seed)
    return res, reg


def _merge_keys(spans):
    return Counter((s["attrs"].get("site"), s["attrs"].get("base_rank"),
                    s["attrs"].get("nranks"))
                   for s in spans if s["name"] == "merge.task")


class TestCrossProcessCollection:
    def test_single_tree_with_worker_spans(self):
        res, _ = _run(nprocs=8, jobs=2)
        spans = res.spans
        roots = build_span_tree(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "finalize"
        pids = {s["pid"] for s in spans}
        assert len(pids) >= 2  # parent + at least one pool worker
        # 8 shards -> 7 pair merges, each exactly one span
        assert sum(v for v in _merge_keys(spans).values()) == 7

    def test_jobs4_acceptance(self, tmp_path):
        """The issue's acceptance run: --jobs 4 yields one merged tree
        with >= 1 span per worker process and a valid Chrome trace that
        round-trips through json.load."""
        res, _ = _run(nprocs=16, jobs=4)
        spans = res.spans
        assert len(build_span_tree(spans)) == 1
        parent_pid = next(s["pid"] for s in spans
                          if s["name"] == "finalize")
        worker_pids = {s["pid"] for s in spans} - {parent_pid}
        assert len(worker_pids) == 4
        per_worker = Counter(s["pid"] for s in spans
                             if s["pid"] != parent_pid)
        assert all(n >= 1 for n in per_worker.values())
        path = tmp_path / "timeline.json"
        res.write_timeline(path)
        doc = json.load(open(path))
        validate_json(doc, CHROME_TRACE_SCHEMA)
        tracks = {e["pid"] for e in doc["traceEvents"]}
        assert tracks == {parent_pid, *worker_pids}

    def test_parallel_metric_parity_with_serial(self):
        """Satellite regression: counters recorded inside pooled workers
        (merge tasks) and retry counters must reach the parent registry,
        so a --jobs N run reports the same totals as a serial run."""
        _, reg1 = _run(nprocs=8, jobs=1)
        _, reg2 = _run(nprocs=8, jobs=2)
        s1, s2 = reg1.snapshot(), reg2.snapshot()
        assert s1["counters"] == s2["counters"]
        t1 = s1["timers"]["pipeline.merge.task_seconds"]
        t2 = s2["timers"]["pipeline.merge.task_seconds"]
        assert t1["count"] == t2["count"] == 7

    def test_parity_under_fault_injection(self):
        plan = "kill@merge*2"
        _, reg1 = _run(nprocs=8, jobs=1, fault_plan=plan)
        _, reg2 = _run(nprocs=8, jobs=2, fault_plan=plan)
        s1, s2 = reg1.snapshot(), reg2.snapshot()
        assert s1["counters"]["pipeline.retries"] == 2
        assert s1["counters"] == s2["counters"]

    def test_no_duplicate_spans_from_killed_workers(self):
        """Satellite regression: a killed-and-retried merge must appear
        exactly once in the merged tree — the failed attempt's worker
        report is discarded, the retry's recompute is what counts."""
        for jobs in (1, 2):
            res, reg = _run(nprocs=8, jobs=jobs,
                            fault_plan=FaultPlan.parse("kill@merge*2",
                                                       seed=7))
            assert len(res.fired_faults) == 2
            keys = _merge_keys(res.spans)
            assert sum(keys.values()) == 7
            dups = {k: v for k, v in keys.items() if v > 1}
            assert not dups, f"jobs={jobs}: duplicated merges {dups}"
            assert reg.snapshot()["counters"]["pipeline.merge.tasks"] == 7

    def test_disabled_telemetry_records_nothing(self):
        res = api.trace("stencil2d", 8, options=TracerOptions(jobs=2))
        assert res.spans == []
        assert res.tracer.recorder.enabled is False

    def test_spans_do_not_change_trace_bytes(self):
        plain = api.trace("stencil2d", 8, seed=3).trace_bytes
        res, _ = _run(nprocs=8, jobs=2, seed=3)
        assert res.trace_bytes == plain


class TestApiSurfacing:
    def test_manifest_contents(self):
        res, _ = _run(nprocs=8, jobs=2)
        m = res.manifest()
        doc = m.to_dict()
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["workload"] == "stencil2d" and doc["nprocs"] == 8
        assert doc["wall_s"] > 0 and doc["cpu_s"] > 0
        assert doc["peak_rss_kb"] > 0
        assert doc["counters"]["pipeline.merge.tasks"] == 7
        assert doc["totals"]["calls"] == res.total_calls
        assert doc["totals"]["spans"] == len(res.spans)
        assert doc["outputs"]["trace_bytes"] == res.trace_size
        assert doc["options"]["jobs"] == 2
        json.dumps(doc)  # JSON-safe throughout

    def test_write_emits_manifest_sidecar(self, tmp_path):
        res, _ = _run(nprocs=8)
        out = tmp_path / "out.pilgrim"
        res.write(out)
        doc = RunManifest.load(str(out) + ".manifest.json")
        assert doc["outputs"]["trace_bytes"] == res.trace_size
        (tmp_path / "no_manifest.pilgrim").unlink(missing_ok=True)
        res.write(tmp_path / "no_manifest.pilgrim", manifest=False)
        assert not (tmp_path / "no_manifest.pilgrim.manifest.json").exists()

    def test_write_timeline_requires_spans(self, tmp_path):
        res = api.trace("stencil2d", 8)
        with pytest.raises(ValueError, match="no spans"):
            res.write_timeline(tmp_path / "t.json")

    def test_write_spans_jsonl(self, tmp_path):
        res, _ = _run(nprocs=8)
        path = tmp_path / "s.jsonl"
        res.write_spans(path)
        assert read_spans_jsonl(str(path)) == res.spans


class TestCli:
    def test_trace_timeline_and_spans_flags(self, tmp_path, capsys):
        out = tmp_path / "t.pilgrim"
        tl = tmp_path / "timeline.json"
        sp = tmp_path / "spans.jsonl"
        rc = cli_main(["trace", "stencil2d", "-n", "8", "--jobs", "2",
                       "-o", str(out), "--timeline", str(tl),
                       "--spans", str(sp)])
        assert rc == 0
        doc = json.load(open(tl))
        validate_json(doc, CHROME_TRACE_SCHEMA)
        assert read_spans_jsonl(str(sp))
        assert (tmp_path / "t.pilgrim.manifest.json").exists()

    def test_timeline_verb_validates_and_converts(self, tmp_path, capsys):
        sp = tmp_path / "spans.jsonl"
        tl = tmp_path / "timeline.json"
        assert cli_main(["trace", "stencil2d", "-n", "4",
                         "-o", str(tmp_path / "t.pilgrim"),
                         "--timeline", str(tl), "--spans", str(sp)]) == 0
        capsys.readouterr()
        assert cli_main(["timeline", str(tl)]) == 0
        assert "valid Chrome trace-event JSON" in capsys.readouterr().out
        conv = tmp_path / "conv.json"
        assert cli_main(["timeline", str(sp), "-o", str(conv)]) == 0
        validate_json(json.load(open(conv)), CHROME_TRACE_SCHEMA)

    def test_timeline_verb_rejects_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        assert cli_main(["timeline", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli_main(["timeline", str(empty)]) == 1

    def test_stats_spans_tree(self, tmp_path, capsys):
        sp = tmp_path / "spans.jsonl"
        assert cli_main(["trace", "stencil2d", "-n", "8", "--jobs", "2",
                         "-o", str(tmp_path / "t.pilgrim"),
                         "--spans", str(sp)]) == 0
        capsys.readouterr()
        assert cli_main(["stats", "--spans", str(sp)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "finalize" in out and "merge.task" in out

    def test_metrics_dump_carries_spans(self, tmp_path):
        mx = tmp_path / "m.jsonl"
        assert cli_main(["trace", "stencil2d", "-n", "4",
                         "-o", str(tmp_path / "t.pilgrim"),
                         "--metrics", str(mx)]) == 0
        from repro.obs import read_metrics_jsonl
        types = Counter(r.get("type")
                        for r in read_metrics_jsonl(str(mx)))
        assert types["span"] > 0 and types["counter"] > 0


class TestBenchManifest:
    def test_write_results_emits_manifest(self, tmp_path, monkeypatch):
        from repro.bench import bench_manifest, write_results
        doc = {"benchmark": "dummy", "repeats": 1, "warmup": 0,
               "params": {"nprocs": 4, "seed": 1},
               "metrics": {"per_call_us": 1.5}, "stats": {}}
        monkeypatch.chdir(tmp_path)
        paths = write_results(doc, str(tmp_path / "results"))
        side = [p for p in paths if str(p).endswith(".manifest.json")]
        assert len(side) == 1
        m = RunManifest.load(str(side[0]))
        assert m["command"] == "bench"
        assert m["totals"]["metrics"] == {"per_call_us": 1.5}
        assert bench_manifest(doc).nprocs == 4


class TestTracerDirect:
    def test_finalize_idempotent_spans(self):
        reg = MetricsRegistry()
        tracer = PilgrimTracer(metrics=reg)
        make("stencil2d", 4).run(seed=1, tracer=tracer)
        first = tracer.finalize()
        again = tracer.finalize()
        assert again is first
        assert len(first.spans) == len(tracer.recorder.spans)
        keys = _merge_keys(first.spans)
        assert sum(keys.values()) == 3  # 4 shards -> 3 pair merges
