"""Trace-integrity subsystem tests: structured errors, exhaustive
corruption (every truncation point, every byte flipped), the seeded
fuzzer, the grown differential verifier, and decoder edge cases."""

import pytest

from repro.core import (ChecksumError, CorruptTraceError, PilgrimTracer,
                        TraceDecoder, TraceFile, TraceFormatError,
                        TruncatedTraceError, UnsupportedVersionError,
                        run_fuzz, verify_roundtrip, verify_workload)
from repro.core.fuzz import iter_mutations
from repro.core.grammar import Grammar
from repro.workloads import REGISTRY, make


def trace_blob(name="stencil2d", nprocs=4, seed=1, **params):
    tracer = PilgrimTracer()
    make(name, nprocs, **params).run(seed=seed, tracer=tracer)
    return tracer.result.trace_bytes


@pytest.fixture(scope="module")
def small_blob():
    return trace_blob("stencil2d", 4, iters=4)


def deep_decode(blob):
    dec = TraceDecoder.from_bytes(blob)
    dec.call_count()
    for rank in range(dec.nprocs):
        list(dec.rank_calls(rank))
    return dec


class TestErrorHierarchy:
    def test_subclasses(self):
        for cls in (TruncatedTraceError, ChecksumError,
                    UnsupportedVersionError, CorruptTraceError):
            assert issubclass(cls, TraceFormatError)

    def test_base_is_value_error(self):
        # pre-existing callers catch ValueError; that must keep working
        assert issubclass(TraceFormatError, ValueError)

    def test_checksum_error_carries_details(self):
        e = ChecksumError("CST", 1, 2)
        assert e.section == "CST" and e.stored == 1 and e.computed == 2
        assert "CST" in str(e)


class TestExhaustiveCorruption:
    """The decoder contract, proven over the *entire* byte range of a
    real trace: every truncation and every flipped byte must raise a
    structured TraceFormatError — never anything rawer, never silence."""

    def test_every_truncation_point(self, small_blob):
        for cut in range(len(small_blob)):
            with pytest.raises(TraceFormatError):
                deep_decode(small_blob[:cut])

    def test_every_byte_flipped(self, small_blob):
        for off in range(len(small_blob)):
            mut = bytearray(small_blob)
            mut[off] ^= 1 << (off % 8)
            with pytest.raises(TraceFormatError):
                deep_decode(bytes(mut))

    def test_every_byte_flipped_uncompressed(self):
        blob = TraceFile.from_bytes(
            trace_blob("osu_latency", 4)).to_bytes(compress=False)
        for off in range(len(blob)):
            mut = bytearray(blob)
            mut[off] ^= 0x80
            with pytest.raises(TraceFormatError):
                deep_decode(bytes(mut))


class TestFuzzer:
    def test_fuzz_report_clean(self, small_blob):
        report = run_fuzz(small_blob, seed=0, n_random=500)
        assert report.total >= 500
        assert report.ok, [str(f) for f in report.failures[:5]]
        assert report.structured == report.total
        # several distinct failure modes must actually be exercised
        assert {"ChecksumError", "TruncatedTraceError"} <= set(
            report.by_error)

    def test_fuzz_is_deterministic(self, small_blob):
        a = run_fuzz(small_blob, seed=7, n_random=120)
        b = run_fuzz(small_blob, seed=7, n_random=120)
        assert a.by_error == b.by_error and a.total == b.total

    def test_mutations_differ_from_original(self, small_blob):
        for _desc, mut in iter_mutations(small_blob, seed=3, n_random=60):
            assert mut != small_blob or len(mut) == len(small_blob)

    def test_fuzz_with_timing_sections(self):
        tracer = PilgrimTracer(timing_mode="lossy")
        make("npb_is", 4).run(seed=1, tracer=tracer)
        report = run_fuzz(tracer.result.trace_bytes, seed=2, n_random=200)
        assert report.ok, [str(f) for f in report.failures[:5]]


class TestVerifier:
    @pytest.mark.parametrize("name,params", [
        ("stencil2d", {"iters": 6}),
        ("osu_allreduce", {}),
        ("npb_mg", {}),
        ("flash_sedov", {}),
        ("milc_su3_rmd", {}),
    ])
    def test_verify_workload_families(self, name, params):
        report = verify_workload(name, 8, **params)
        assert report.ok, report.mismatches[:3]
        assert all(report.checks.values())
        assert set(report.checks) == {"terminal_streams", "records",
                                      "call_counts", "reencode"}
        assert sum(report.per_rank_calls) == report.total_calls

    def test_verify_lossy_timing(self):
        report = verify_workload("stencil2d", 4, iters=4, lossy_timing=True)
        assert report.ok, report.mismatches[:3]

    def test_verify_catches_dropped_call(self):
        tracer = PilgrimTracer(keep_raw=True)
        make("stencil2d", 4, iters=4).run(seed=1, tracer=tracer)
        tracer.raw_terms[2].append(tracer.raw_terms[2][-1])  # desync
        report = verify_roundtrip(tracer)
        assert not report.ok
        assert not report.checks["call_counts"]
        assert any("rank 2" in m for m in report.mismatches)

    def test_verify_requires_keep_raw(self):
        with pytest.raises(ValueError):
            verify_roundtrip(PilgrimTracer())

    def test_verify_requires_finalize(self):
        with pytest.raises(ValueError):
            verify_roundtrip(PilgrimTracer(keep_raw=True))


class TestDecoderEdgeCases:
    def test_empty_trace_zero_calls(self):
        # a tracer whose run never started still finalizes to a valid,
        # decodable, zero-call trace (win_space declared in __init__)
        tracer = PilgrimTracer(keep_raw=True)
        assert tracer.win_space is None
        result = tracer.finalize()
        dec = TraceDecoder.from_bytes(result.trace_bytes)
        assert dec.nprocs == 0
        assert dec.call_count() == 0
        assert dec.all_terminals() == []
        assert dec.function_histogram() == {}

    def test_single_rank_run(self):
        tracer = PilgrimTracer(keep_raw=True)
        make("osu_barrier", 1).run(seed=1, tracer=tracer)
        report = verify_roundtrip(tracer)
        assert report.ok, report.mismatches[:3]
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        assert dec.nprocs == 1
        assert dec.call_count(rank=0) == dec.call_count()
        assert len(dec.rank_terminals(0)) == dec.call_count()

    def test_rank_out_of_range(self, small_blob):
        dec = TraceDecoder.from_bytes(small_blob)
        for bad in (-1, dec.nprocs, dec.nprocs + 5):
            with pytest.raises(IndexError):
                dec.rank_terminals(bad)
            with pytest.raises(IndexError):
                dec.call_count(rank=bad)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_rank_terminals_every_workload(self, name):
        tracer = PilgrimTracer(keep_raw=True)
        make(name, 4).run(seed=0, tracer=tracer)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        sig_index = {s: t for t, s in enumerate(dec.trace.cst.sigs)}
        for rank in range(4):
            expected = [sig_index[tracer.csts[rank].sigs[t]]
                        for t in tracer.raw_terms[rank]]
            assert dec.rank_terminals(rank) == expected
            assert dec.call_count(rank=rank) == len(expected)


class TestCLI:
    def test_verify_subcommand(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["verify", "stencil2d", "osu_latency", "-n", "4",
                         "--param", "iters=4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "FAILED" not in out

    def test_fuzz_subcommand(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["fuzz", "stencil2d", "-n", "4",
                         "--param", "iters=4", "--mutations", "120"]) == 0
        assert "0 failures" in capsys.readouterr().out

    def test_corrupt_file_is_diagnosed_not_traceback(self, tmp_path,
                                                     capsys, small_blob):
        from repro.cli import main as cli_main
        bad = bytearray(small_blob)
        bad[len(bad) // 2] ^= 0x08
        path = tmp_path / "bad.pilgrim"
        path.write_bytes(bytes(bad))
        assert cli_main(["info", str(path)]) == 1
        err = capsys.readouterr().err
        assert "repro:" in err and "checksum" in err.lower()

    def test_missing_file_is_diagnosed(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["info", str(tmp_path / "nope.pilgrim")]) == 1
        assert "cannot open" in capsys.readouterr().err


class TestCallCountScoping:
    def test_rank_query_expands_one_grammar(self, monkeypatch):
        # two distinct unique grammars; asking for one rank's count must
        # not price in the other ranks' grammars
        tracer = PilgrimTracer()
        make("npb_is", 4).run(seed=1, tracer=tracer)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        assert dec.trace.cfg.n_unique >= 2
        calls = []
        orig = Grammar.expanded_length

        def counting(self):
            calls.append(self)
            return orig(self)

        monkeypatch.setattr(Grammar, "expanded_length", counting)
        dec.call_count(rank=0)
        assert len(calls) == 1
        assert calls[0] is dec.trace.cfg.unique[dec.trace.cfg.rank_uid[0]]

    def test_rank_counts_sum_to_total(self, small_blob):
        dec = TraceDecoder.from_bytes(small_blob)
        assert sum(dec.call_count(rank=r)
                   for r in range(dec.nprocs)) == dec.call_count()
