"""Tests for the PARAMESH-style Morton-tree AMR substrate."""

from hypothesis import given, settings, strategies as st

from repro.workloads.amr import Block, MortonTree


class TestBlock:
    def test_children_cover_parent(self):
        b = Block(1, 0, 1, 0)
        kids = b.children()
        assert len(kids) == 8
        assert all(k.level == 2 for k in kids)
        assert {(k.x // 2, k.y // 2, k.z // 2) for k in kids} == {(0, 1, 0)}

    def test_face_neighbors_periodic(self):
        b = Block(1, 0, 0, 0)
        nbrs = list(b.face_neighbors())
        assert len(nbrs) == 6
        assert (1, 1, 0, 0) in nbrs
        # periodic wrap: -1 becomes extent-1
        assert (1, 1, 0, 0) in nbrs  # +x and -x wrap to the same at n=2

    def test_morton_orders_children_after_parent_position(self):
        parent = Block(1, 0, 0, 0)
        child = parent.children()[0]
        other = Block(1, 1, 1, 1)
        assert child.morton < other.morton


class TestMortonTree:
    def test_initial_block_count(self):
        assert MortonTree(base_level=1).n_blocks == 8
        assert MortonTree(base_level=2).n_blocks == 64

    def test_refinement_grows_tree(self):
        t = MortonTree(base_level=2, seed=3)
        before = t.n_blocks
        refined = t.refine_step()
        # each refined block nets +7 leaves
        assert t.n_blocks == before + 7 * refined
        t.check_invariants()

    def test_refinement_deterministic(self):
        a, b = MortonTree(base_level=2, seed=5), MortonTree(base_level=2,
                                                            seed=5)
        for _ in range(3):
            assert a.refine_step() == b.refine_step()
        assert a.leaves_sorted() == b.leaves_sorted()

    def test_refinement_seed_dependent(self):
        a, b = MortonTree(base_level=2, seed=1), MortonTree(base_level=2,
                                                            seed=2)
        for _ in range(2):
            a.refine_step()
            b.refine_step()
        assert a.leaves_sorted() != b.leaves_sorted()

    def test_partition_contiguous_and_balanced(self):
        t = MortonTree(base_level=2, seed=1)
        t.refine_step()
        owner = t.partition(8)
        blocks = t.leaves_sorted()
        owners = [owner[b] for b in blocks]
        # contiguous: owner sequence is non-decreasing
        assert owners == sorted(owners)
        # balanced: counts within 1 block-chunk of each other
        from collections import Counter
        counts = Counter(owners)
        assert max(counts.values()) - min(counts.values()) <= \
            len(blocks) // 8 + 1

    def test_all_ranks_get_work_when_enough_blocks(self):
        t = MortonTree(base_level=2)
        owner = t.partition(8)
        assert set(owner.values()) == set(range(8))

    def test_block_neighbors_symmetric_at_same_level(self):
        t = MortonTree(base_level=2)
        blocks = t.leaves_sorted()
        b = blocks[10]
        for nb in t.block_neighbors(b):
            if nb.level == b.level:
                assert b in t.block_neighbors(nb)

    def test_block_neighbors_across_levels(self):
        t = MortonTree(base_level=1, seed=0)
        # refine one specific block manually
        target = t.leaves_sorted()[0]
        t._leaves.discard(target)
        t._leaves.update(target.children())
        t.check_invariants()
        # a coarse neighbour of a fine block is found (and vice versa)
        fine = target.children()[0]
        nbrs = t.block_neighbors(fine)
        assert any(nb.level < fine.level for nb in nbrs)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_invariants_after_refinements(self, seed, rounds):
        t = MortonTree(base_level=1, seed=seed)
        for _ in range(rounds):
            t.refine_step()
        t.check_invariants()
        # every neighbour of every leaf is itself a leaf
        leaves = set(t.leaves_sorted())
        for b in list(leaves)[:20]:
            for nb in t.block_neighbors(b):
                assert nb in leaves
