"""Point-to-point semantics tests: matching, wildcards, modes, probes,
persistent requests, cancellation."""

import pytest

from conftest import run_program
from repro.mpisim import (DeadlockError, TruncationError, constants as C,
                          datatypes as dt)
from repro.mpisim.errors import RankProgramError


class TestBasicSendRecv:
    def test_payload_and_status(self):
        out = {}

        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                yield from m.send(buf, 8, dt.DOUBLE, dest=1, tag=7,
                                  data="payload")
            else:
                data, st = yield from m.recv(buf, 8, dt.DOUBLE, source=0,
                                             tag=7)
                out["data"] = data
                out["status"] = st

        run_program(2, prog)
        assert out["data"] == "payload"
        assert out["status"].MPI_SOURCE == 0
        assert out["status"].MPI_TAG == 7
        assert out["status"].count == 64

    def test_send_before_recv_buffered(self):
        # eager semantics: send completes without a matching recv posted
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1)
                yield from m.barrier()
            else:
                yield from m.barrier()
                data, _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0,
                                            tag=1)

        run_program(2, prog)

    def test_tag_mismatch_never_matches(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1)
            else:
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0, tag=2)

        with pytest.raises(DeadlockError):
            run_program(2, prog)

    def test_truncation_raises(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                yield from m.send(buf, 8, dt.DOUBLE, dest=1, tag=1)
            else:
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0, tag=1)

        with pytest.raises((TruncationError, RankProgramError)):
            run_program(2, prog)

    def test_shorter_message_ok(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1)
            else:
                _, st = yield from m.recv(buf, 8, dt.DOUBLE, source=0, tag=1)
                assert st.count == 8
                assert st.get_count(dt.DOUBLE.size) == 1

        run_program(2, prog)

    def test_invalid_peer_rejected(self):
        def prog(m):
            buf = m.malloc(8)
            yield from m.send(buf, 1, dt.DOUBLE, dest=5, tag=1)

        with pytest.raises(RankProgramError):
            run_program(2, prog)

    def test_invalid_tag_rejected(self):
        def prog(m):
            buf = m.malloc(8)
            yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=-3)

        with pytest.raises(RankProgramError):
            run_program(2, prog)


class TestProcNull:
    def test_send_recv_proc_null_complete_immediately(self):
        def prog(m):
            buf = m.malloc(8)
            yield from m.send(buf, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            data, st = yield from m.recv(buf, 1, dt.DOUBLE,
                                         source=C.PROC_NULL, tag=1)
            assert data is None
            assert st.MPI_SOURCE == C.PROC_NULL
            assert st.count == 0

        run_program(1, prog)


class TestWildcards:
    def test_any_source(self):
        seen = []

        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                for _ in range(2):
                    _, st = yield from m.recv(buf, 1, dt.DOUBLE,
                                              source=C.ANY_SOURCE, tag=3)
                    seen.append(st.MPI_SOURCE)
            else:
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=3)

        run_program(3, prog)
        assert sorted(seen) == [1, 2]

    def test_any_tag(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=17)
            else:
                _, st = yield from m.recv(buf, 1, dt.DOUBLE, source=0,
                                          tag=C.ANY_TAG)
                assert st.MPI_TAG == 17

        run_program(2, prog)

    def test_non_overtaking_same_pair(self):
        """Messages between one (sender, receiver, tag) pair arrive in
        send order — MPI's ordering guarantee."""
        got = []

        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                for i in range(5):
                    yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1,
                                      data=i)
            else:
                for _ in range(5):
                    data, _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0,
                                                tag=1)
                    got.append(data)

        run_program(2, prog)
        assert got == [0, 1, 2, 3, 4]


class TestSynchronousMode:
    def test_ssend_head_to_head_deadlocks(self):
        def prog(m):
            buf = m.malloc(8)
            peer = 1 - m.rank
            yield from m.ssend(buf, 1, dt.DOUBLE, dest=peer, tag=1)
            _ = yield from m.recv(buf, 1, dt.DOUBLE, source=peer, tag=1)

        with pytest.raises(DeadlockError):
            run_program(2, prog)

    def test_ssend_completes_on_match(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.ssend(buf, 1, dt.DOUBLE, dest=1, tag=1)
            else:
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0, tag=1)

        run_program(2, prog)

    def test_issend_not_done_until_matched(self):
        flags = {}

        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                req = m.issend(buf, 1, dt.DOUBLE, dest=1, tag=1)
                flags["before"] = req.done
                yield from m.barrier()     # rank 1 posts its recv after this
                yield from m.wait(req)
                flags["after"] = req.status is not None
            else:
                yield from m.barrier()
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0, tag=1)

        run_program(2, prog)
        assert flags["before"] is False
        assert flags["after"] is True


class TestSendrecv:
    def test_ring_shift(self):
        data_seen = {}

        def prog(m):
            n = m.comm_size()
            me = m.comm_rank()
            buf = m.malloc(16)
            data, st = yield from m.sendrecv(
                buf, 1, dt.DOUBLE, (me + 1) % n, 5,
                buf, 1, dt.DOUBLE, (me - 1) % n, 5, data=me)
            data_seen[me] = data

        run_program(4, prog)
        assert data_seen == {0: 3, 1: 0, 2: 1, 3: 2}


class TestProbe:
    def test_blocking_probe_then_recv(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                yield from m.send(buf, 4, dt.DOUBLE, dest=1, tag=9)
            else:
                st = yield from m.probe(source=C.ANY_SOURCE, tag=9)
                assert st.MPI_SOURCE == 0
                assert st.count == 32
                # probe must NOT consume: the recv still succeeds
                _, st2 = yield from m.recv(buf, 4, dt.DOUBLE, source=0, tag=9)
                assert st2.count == 32

        run_program(2, prog)

    def test_iprobe_false_then_true(self):
        results = []

        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                flag, _ = m.iprobe(source=1, tag=2)
                results.append(flag)
                yield from m.barrier()
                yield from m.barrier()
                flag, st = m.iprobe(source=1, tag=2)
                results.append(flag)
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=1, tag=2)
            else:
                yield from m.barrier()
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=2)
                yield from m.barrier()

        run_program(2, prog)
        assert results == [False, True]


class TestPersistent:
    def test_send_recv_init_start_wait_loop(self):
        got = []

        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                req = m.send_init(buf, 1, dt.DOUBLE, dest=1, tag=4, data="x")
                for _ in range(3):
                    m.start(req)
                    yield from m.wait(req)
                m.request_free(req)
            else:
                req = m.recv_init(buf, 1, dt.DOUBLE, source=0, tag=4)
                for _ in range(3):
                    m.start(req)
                    st = yield from m.wait(req)
                    got.append(st.MPI_SOURCE)
                m.request_free(req)

        run_program(2, prog)
        assert got == [0, 0, 0]

    def test_start_inactive_only(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.send_init(buf, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            m.start(req)
            m.start(req)  # active: must raise
            yield from m.barrier()

        with pytest.raises(RankProgramError):
            run_program(1, prog)

    def test_wait_on_inactive_persistent_returns_empty(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.recv_init(buf, 1, dt.DOUBLE, source=C.PROC_NULL, tag=1)
            st = yield from m.wait(req)  # never started: empty status
            assert st.MPI_SOURCE == C.PROC_NULL

        run_program(1, prog)

    def test_startall(self):
        def prog(m):
            buf = m.malloc(16)
            if m.rank == 0:
                reqs = [m.send_init(buf, 1, dt.DOUBLE, dest=1, tag=t)
                        for t in (1, 2)]
                m.startall(reqs)
                yield from m.waitall(reqs)
            else:
                reqs = [m.recv_init(buf, 1, dt.DOUBLE, source=0, tag=t)
                        for t in (1, 2)]
                m.startall(reqs)
                yield from m.waitall(reqs)

        run_program(2, prog)


class TestCancel:
    def test_cancel_unmatched_recv(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.irecv(buf, 1, dt.DOUBLE, source=C.ANY_SOURCE, tag=99)
            m.cancel(req)
            st = yield from m.wait(req)
            assert st.cancelled

        run_program(1, prog)

    def test_cancelled_recv_does_not_match(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 1:
                req = m.irecv(buf, 1, dt.DOUBLE, source=0, tag=1)
                m.cancel(req)
                _ = yield from m.wait(req)
                yield from m.barrier()
                # message still deliverable to a fresh recv
                data, _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0,
                                            tag=1)
                assert data == "m"
            else:
                yield from m.barrier()
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1, data="m")

        run_program(2, prog)
