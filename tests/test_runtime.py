"""Runtime-level tests: scheduler, deadlock/livelock detection, clocks,
network model, error surfacing, determinism."""

import pytest

from conftest import run_program
from repro.mpisim import (DeadlockError, NetworkModel, RankProgramError,
                          SimMPI, constants as C, datatypes as dt)
from repro.mpisim.clock import RankClock
from repro.mpisim.errors import MpiSimError


class TestLifecycle:
    def test_run_once_only(self):
        def prog(m):
            yield from m.barrier()
        sim = SimMPI(2, seed=0)
        sim.run(prog)
        with pytest.raises(MpiSimError):
            sim.run(prog)

    def test_nonpositive_nprocs_rejected(self):
        with pytest.raises(MpiSimError):
            SimMPI(0)

    def test_non_generator_program_rejected(self):
        def prog(m):
            return 42
        with pytest.raises((MpiSimError, RankProgramError)):
            SimMPI(1, seed=0).run(prog)

    def test_programs_without_yields_allowed_if_none(self):
        def prog(m):
            m.comm_rank()
            return None
        res = SimMPI(2, seed=0).run(prog)
        assert res.nprocs == 2

    def test_rank_exception_wrapped_with_rank(self):
        def prog(m):
            if m.rank == 3:
                raise RuntimeError("boom")
            yield from m.barrier()
        with pytest.raises(RankProgramError) as ei:
            run_program(5, prog)
        assert ei.value.rank == 3


class TestDeadlockDetection:
    def test_recv_without_send(self):
        def prog(m):
            buf = m.malloc(8)
            _ = yield from m.recv(buf, 1, dt.DOUBLE, source=1 - m.rank,
                                  tag=1)
        with pytest.raises(DeadlockError) as ei:
            run_program(2, prog)
        assert 0 in ei.value.blocked and 1 in ei.value.blocked

    def test_partial_barrier(self):
        def prog(m):
            if m.rank != 2:
                yield from m.barrier()
        with pytest.raises(DeadlockError) as ei:
            run_program(3, prog)
        assert "barrier" in str(ei.value)

    def test_livelock_spin_detected(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.irecv(buf, 1, dt.DOUBLE, source=C.ANY_SOURCE, tag=1)
            flag = False
            while not flag:
                flag, _ = yield from m.test(req)
        with pytest.raises(DeadlockError):
            sim = SimMPI(1, seed=0, spin_limit=5_000)
            sim.run(prog)


class TestDeterminism:
    def _trace_times(self, seed):
        def prog(m):
            m.compute(1e-4)
            yield from m.barrier()
            buf = m.malloc(8)
            peer = 1 - m.rank
            yield from m.sendrecv(buf, 64, dt.BYTE, peer, 1, buf, 64,
                                  dt.BYTE, peer, 1)
        sim = SimMPI(2, seed=seed, noise=0.1)
        res = sim.run(prog)
        return res.rank_times

    def test_same_seed_bitwise_identical(self):
        assert self._trace_times(7) == self._trace_times(7)

    def test_different_seed_different_noise(self):
        assert self._trace_times(7) != self._trace_times(8)


class TestVirtualTime:
    def test_compute_advances_clock(self):
        def prog(m):
            m.compute(0.5)
            yield from m.barrier()
        sim, res = run_program(1, prog)
        assert res.app_time >= 0.5

    def test_message_latency_ordering(self):
        """Receiver cannot complete before send time + transfer time."""
        times = {}

        def prog(m):
            buf = m.malloc(1 << 20)
            if m.rank == 0:
                m.compute(1e-3)
                yield from m.send(buf, 1 << 20, dt.BYTE, dest=1, tag=1)
                times["sent"] = m.clock.now
            else:
                _ = yield from m.recv(buf, 1 << 20, dt.BYTE, source=0, tag=1)
                times["recvd"] = m.clock.now

        net = NetworkModel()
        sim = SimMPI(2, seed=0, noise=0.0, net=net)
        sim.run(prog)
        assert times["recvd"] >= 1e-3 + net.p2p_time(1 << 20)

    def test_barrier_aligns_clocks(self):
        def prog(m):
            m.compute(1e-2 if m.rank == 0 else 1e-6)
            yield from m.barrier()
            m.compute(0.0)
        sim, res = run_program(4, prog)
        assert max(res.rank_times) - min(res.rank_times) < 1e-3

    def test_noise_zero_is_exact(self):
        c = RankClock(seed=1, noise=0.0)
        c.advance(0.125)
        assert c.now == 0.125

    def test_noise_multiplicative(self):
        c = RankClock(seed=1, noise=0.2)
        d = c.advance(1.0)
        assert d != 1.0 and 0.3 < d < 3.0

    def test_sync_never_goes_backwards(self):
        c = RankClock(seed=1, noise=0.0, start=5.0)
        c.sync_to(3.0)
        assert c.now == 5.0
        c.sync_to(7.0)
        assert c.now == 7.0


class TestNetworkModel:
    def test_p2p_monotone_in_size(self):
        net = NetworkModel()
        assert net.p2p_time(10) < net.p2p_time(10_000) < net.p2p_time(10**7)

    def test_coll_monotone_in_procs(self):
        net = NetworkModel()
        assert net.coll_time("allreduce", 2, 64) < \
            net.coll_time("allreduce", 1024, 64)

    def test_alltoall_costlier_than_barrier(self):
        net = NetworkModel()
        assert net.coll_time("alltoall", 64, 1 << 16) > \
            net.coll_time("barrier", 64, 0)

    def test_single_proc_collective_cheap(self):
        net = NetworkModel()
        assert net.coll_time("allreduce", 1, 8) <= net.overhead


class TestRunResult:
    def test_mpi_calls_via_tracer(self):
        from repro.core import PilgrimTracer

        def prog(m):
            yield from m.barrier()
        tr = PilgrimTracer()
        res = SimMPI(3, seed=0, tracer=tr).run(prog)
        assert res.mpi_calls == tr.result.total_calls == 3 * 3  # init+bar+fin

    def test_steps_counted(self):
        def prog(m):
            yield from m.barrier()
        _, res = run_program(2, prog)
        assert res.steps > 0
