"""Communicator management: split/dup/create/free, non-blocking dup,
inter-communicators, Cartesian comms, and the id-agreement corner cases
the paper highlights (§3.3.1)."""

import pytest

from conftest import run_program
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops
from repro.mpisim.errors import RankProgramError


class TestSplit:
    def test_split_groups_and_ranks(self):
        def prog(m):
            sub = yield from m.comm_split(color=m.rank % 2, key=m.rank)
            assert m.comm_size(sub) == 2
            assert m.comm_rank(sub) == m.rank // 2
            yield from m.barrier(sub)
        run_program(4, prog)

    def test_split_key_reverses_order(self):
        def prog(m):
            sub = yield from m.comm_split(color=0, key=-m.rank)
            assert m.comm_rank(sub) == m.comm_size() - 1 - m.rank
        run_program(4, prog)

    def test_split_undefined_gets_none(self):
        def prog(m):
            color = C.UNDEFINED if m.rank == 0 else 1
            sub = yield from m.comm_split(color=color, key=0)
            if m.rank == 0:
                assert sub is None
            else:
                assert m.comm_size(sub) == 3
        run_program(4, prog)

    def test_same_subcomm_object_shared(self):
        seen = {}

        def prog(m):
            sub = yield from m.comm_split(color=m.rank // 2, key=m.rank)
            seen[m.rank] = sub
            yield from m.barrier()
        run_program(4, prog)
        assert seen[0] is seen[1]
        assert seen[2] is seen[3]
        assert seen[0] is not seen[2]

    def test_p2p_in_subcomm(self):
        def prog(m):
            sub = yield from m.comm_split(color=m.rank % 2, key=m.rank)
            me = m.comm_rank(sub)
            peer = 1 - me
            buf = m.malloc(8)
            data, st = yield from m.sendrecv(buf, 1, dt.INT, peer, 3,
                                             buf, 1, dt.INT, peer, 3,
                                             comm=sub, data=m.rank)
            # partner in my sub-comm is rank +/- 2 in the world
            assert data == (m.rank + 2) % 4 or data == (m.rank - 2) % 4
        run_program(4, prog)

    def test_split_type_by_node(self):
        def prog(m):
            sub = yield from m.comm_split_type()
            assert m.comm_size(sub) == 2  # node_size=2 below
            assert m.comm_rank(sub) == m.rank % 2
        sim = SimMPI(4, seed=0, node_size=2)
        sim.run(prog)


class TestDup:
    def test_dup_same_group_new_context(self):
        def prog(m):
            dup = yield from m.comm_dup()
            assert m.comm_size(dup) == m.comm_size()
            assert m.comm_rank(dup) == m.comm_rank()
            assert dup is not m.world
            assert m.comm_compare(m.world, dup) == C.CONGRUENT
            # messages on dup do not match messages on world
            yield from m.barrier(dup)
        run_program(3, prog)

    def test_idup_delivers_comm_at_wait(self):
        """§3.3.1's hard case: non-blocking duplication; the new comm (and
        its symbolic id) only exist once a Wait completes the request."""
        def prog(m):
            req = m.comm_idup()
            # overlap something else with the pending duplication
            yield from m.allreduce(0, 0, 1, dt.INT, ops.SUM, data=1)
            yield from m.wait(req)
            newcomm = req.value
            assert m.comm_size(newcomm) == m.comm_size()
            yield from m.barrier(newcomm)
        run_program(4, prog)


class TestCreateFree:
    def test_comm_create_members_only(self):
        def prog(m):
            grp = m.comm_group().incl([0, 2])
            sub = yield from m.comm_create(m.world, grp)
            if m.rank in (0, 2):
                assert m.comm_size(sub) == 2
                yield from m.barrier(sub)
            else:
                assert sub is None
        run_program(4, prog)

    def test_comm_free_collective(self):
        def prog(m):
            dup = yield from m.comm_dup()
            yield from m.barrier(dup)
            m.comm_free(dup)
            yield from m.barrier()  # world still usable
        run_program(3, prog)

    def test_freed_comm_unusable(self):
        def prog(m):
            dup = yield from m.comm_dup()
            m.comm_free(dup)
            yield from m.barrier(dup)
        with pytest.raises(RankProgramError):
            run_program(1, prog)


class TestIntercomm:
    @staticmethod
    def _halves(m):
        return (yield from m.comm_split(color=m.rank // 2, key=m.rank))

    def test_create_query(self):
        def prog(m):
            half = yield from m.comm_split(color=m.rank // 2, key=m.rank)
            remote_leader = 2 if m.rank < 2 else 0
            ic = yield from m.intercomm_create(half, 0, m.world,
                                               remote_leader, tag=5)
            assert m.comm_test_inter(ic)
            assert m.comm_size(ic) == 2
            assert m.comm_remote_size(ic) == 2
            assert m.comm_rank(ic) == m.rank % 2
        run_program(4, prog)

    def test_p2p_across_intercomm(self):
        def prog(m):
            half = yield from m.comm_split(color=m.rank // 2, key=m.rank)
            remote_leader = 2 if m.rank < 2 else 0
            ic = yield from m.intercomm_create(half, 0, m.world,
                                               remote_leader, tag=5)
            buf = m.malloc(8)
            peer = m.rank % 2  # same local rank on the other side
            data, _ = yield from m.sendrecv(buf, 1, dt.INT, peer, 1,
                                            buf, 1, dt.INT, peer, 1,
                                            comm=ic, data=m.rank)
            assert data == (m.rank + 2) % 4
        run_program(4, prog)

    def test_merge_orders_by_high(self):
        def prog(m):
            half = yield from m.comm_split(color=m.rank // 2, key=m.rank)
            remote_leader = 2 if m.rank < 2 else 0
            ic = yield from m.intercomm_create(half, 0, m.world,
                                               remote_leader, tag=5)
            merged = yield from m.intercomm_merge(ic, high=(m.rank < 2))
            assert m.comm_size(merged) == 4
            # the high group comes second: ranks 2,3 first then 0,1
            expected = {2: 0, 3: 1, 0: 2, 1: 3}[m.rank]
            assert m.comm_rank(merged) == expected
            yield from m.barrier(merged)
        run_program(4, prog)


class TestCartComm:
    def test_cart_create_and_shift(self):
        def prog(m):
            cart = yield from m.cart_create(None, (2, 3), (False, True))
            me = m.comm_rank(cart)
            coords = m.cart_coords(cart, me)
            assert m.cart_rank(cart, coords) == me
            src, dst = m.cart_shift(cart, 1, 1)  # periodic dim
            assert src != C.PROC_NULL and dst != C.PROC_NULL
            src, dst = m.cart_shift(cart, 0, 1)  # non-periodic dim
            if coords[0] == 1:
                assert dst == C.PROC_NULL
            yield from m.barrier(cart)
        run_program(6, prog)

    def test_cart_smaller_than_comm(self):
        def prog(m):
            cart = yield from m.cart_create(None, (2, 2), (False, False))
            if m.rank < 4:
                assert cart is not None
                yield from m.barrier(cart)
            else:
                assert cart is None
        run_program(6, prog)

    def test_cart_sub(self):
        def prog(m):
            cart = yield from m.cart_create(None, (2, 3), (False, False))
            row = yield from m.cart_sub(cart, [False, True])
            assert m.comm_size(row) == 3
            col = yield from m.cart_sub(cart, [True, False])
            assert m.comm_size(col) == 2
            # row comm rank == my column coordinate
            coords = m.cart_coords(cart, m.comm_rank(cart))
            assert m.comm_rank(row) == coords[1]
            assert m.comm_rank(col) == coords[0]
        run_program(6, prog)


class TestNamesAndQueries:
    def test_set_get_name(self):
        def prog(m):
            m.comm_set_name(m.world, "my-comm")
            assert m.comm_get_name(m.world) == "my-comm"
            yield from m.barrier()
        run_program(2, prog)

    def test_group_queries(self):
        def prog(m):
            grp = m.comm_group()
            assert m.group_size(grp) == 3
            assert m.group_rank(grp) == m.rank
            sub = m.group_excl(grp, [0])
            assert m.group_rank(sub) == (C.UNDEFINED if m.rank == 0
                                         else m.rank - 1)
            m.group_free(sub)
            yield from m.barrier()
        run_program(3, prog)
