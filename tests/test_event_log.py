"""Tests for the runtime event log and the scheduler's diagnostics:
wildcard-receive resolution events, collective completions, bounded
buffering, and the spin-limit livelock report."""

import pytest

from repro.mpisim import (DeadlockError, SimMPI, constants as C,
                          datatypes as dt)
from repro.obs import EventLog


class TestEventLogBuffer:
    def test_emit_and_counts(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", x=2)
        log.emit("a", x=3)
        assert len(log) == 3
        assert log.counts == {"a": 2, "b": 1}
        assert log.last("a")["x"] == 3
        assert [e["x"] for e in log.by_kind("a")] == [1, 3]
        assert [e["seq"] for e in log] == [1, 2, 3]

    def test_bounded_buffer_counts_dropped(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 4
        assert log.dropped == 6
        assert log.counts["tick"] == 10  # totals stay honest
        assert [e["i"] for e in log.tail(2)] == [8, 9]

    def test_disabled_log_is_inert(self):
        log = EventLog(enabled=False)
        log.emit("x")
        assert len(log) == 0 and log.seq == 0

    def test_records_tagged_for_jsonl(self):
        log = EventLog()
        log.emit("k", v=1)
        assert log.records() == [{"type": "event", "kind": "k",
                                  "seq": 1, "v": 1}]


class TestEventLogExport:
    def test_to_jsonl_header_then_events(self, tmp_path):
        import json
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", x=2)
        path = tmp_path / "events.jsonl"
        text = log.to_jsonl(str(path))
        assert path.read_text() == text
        lines = [json.loads(ln) for ln in text.splitlines()]
        assert lines[0]["type"] == "event_log"
        assert lines[0]["seq"] == 2 and lines[0]["dropped"] == 0
        assert lines[0]["first_seq"] == 1 and lines[0]["buffered"] == 2
        assert [ln["seq"] for ln in lines[1:]] == [1, 2]

    def test_write_returns_event_count(self, tmp_path):
        log = EventLog()
        for i in range(3):
            log.emit("tick", i=i)
        assert log.write(str(tmp_path / "e.jsonl")) == 3

    def test_header_accounts_for_eviction(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("tick", i=i)
        hdr = log.header()
        assert hdr["seq"] == 5 and hdr["dropped"] == 3
        assert hdr["first_seq"] == 4 and hdr["buffered"] == 2

    def test_empty_log_header(self):
        hdr = EventLog().header()
        assert hdr["first_seq"] is None and hdr["buffered"] == 0

    def test_find_gaps_detects_leading_eviction(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("tick", i=i)
        assert EventLog.find_gaps(log.records()) == [(0, 4)]

    def test_find_gaps_detects_interior_truncation(self):
        log = EventLog()
        for i in range(6):
            log.emit("tick", i=i)
        recs = [r for r in log.records() if r["seq"] not in (3, 4)]
        assert EventLog.find_gaps(recs) == [(2, 5)]

    def test_find_gaps_clean_log(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert EventLog.find_gaps(log.records()) == []
        assert EventLog.find_gaps([]) == []

    def test_find_gaps_ignores_non_event_lines(self):
        log = EventLog()
        log.emit("a")
        recs = [log.header()] + log.records()
        assert EventLog.find_gaps(recs) == []


class TestRuntimeEvents:
    def _wildcard_program(self, m):
        """Rank 0 gathers one message from each worker via ANY_SOURCE."""
        buf = m.malloc(64)
        if m.rank == 0:
            for _ in range(m.comm_size() - 1):
                yield from m.recv(buf, 1, dt.DOUBLE, source=C.ANY_SOURCE,
                                  tag=5)
        else:
            yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=5)
        yield from m.barrier()

    def test_wildcard_workload_events(self):
        log = EventLog()
        SimMPI(4, seed=3, events=log).run(self._wildcard_program)
        counts = log.counts
        assert counts["p2p.match"] == 3
        assert counts["p2p.wildcard"] == 3
        assert counts["sched.rank_done"] == 4
        assert counts.get("coll.complete", 0) >= 1  # the barrier
        for e in log.by_kind("p2p.wildcard"):
            assert e["dst"] == 0
            assert e["resolved_src"] in (1, 2, 3)
        # every wildcard match is flagged as such
        wild = [e for e in log.by_kind("p2p.match") if e["wildcard"]]
        assert len(wild) == 3

    def test_no_log_attached_is_default(self):
        sim = SimMPI(2, seed=0)
        assert sim.events is None
        res = sim.run(self._wildcard_program)
        assert res.nprocs == 2

    def test_disabled_log_not_wired(self):
        sim = SimMPI(2, seed=0, events=EventLog(enabled=False))
        assert sim.events is None


class TestSpinLimitDiagnostics:
    def _spinner(self, m):
        buf = m.malloc(8)
        req = m.irecv(buf, 1, dt.DOUBLE, source=C.ANY_SOURCE, tag=1)
        flag = False
        while not flag:
            flag, _ = yield from m.test(req)

    def test_diagnostic_names_rank_and_call(self):
        with pytest.raises(DeadlockError) as ei:
            SimMPI(1, seed=0, spin_limit=5_000).run(self._spinner)
        msg = str(ei.value)
        assert "spin loop" in msg
        assert "MPI_Test" in msg          # where the rank is parked
        assert "5000 steps" in msg
        assert 0 in ei.value.blocked

    def test_spin_limit_event_emitted(self):
        log = EventLog()
        with pytest.raises(DeadlockError):
            SimMPI(1, seed=0, spin_limit=5_000, events=log).run(self._spinner)
        e = log.last("sched.spin_limit")
        assert e is not None
        assert e["spin_limit"] == 5_000

    def test_plain_deadlock_names_last_call(self):
        def prog(m):
            buf = m.malloc(8)
            yield from m.recv(buf, 1, dt.DOUBLE, source=1 - m.rank, tag=9)
        with pytest.raises(DeadlockError) as ei:
            SimMPI(2, seed=0).run(prog)
        assert "last MPI call: MPI_Recv" in str(ei.value)
