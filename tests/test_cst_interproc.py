"""CST interning/merging and inter-process grammar compression tests."""

from hypothesis import given, settings, strategies as st

from repro.core.cst import CST, MergedCST, merge_csts
from repro.core.grammar import Grammar
from repro.core.interproc import expand_rank, merge_grammars
from repro.core.packing import Reader
from repro.core.sequitur import Sequitur


def freeze(seq):
    s = Sequitur()
    for v in seq:
        s.append(v)
    return Grammar.freeze(s)


class TestCST:
    def test_intern_assigns_dense_terminals(self):
        c = CST()
        assert c.intern(("a",), 0.1) == 0
        assert c.intern(("b",), 0.2) == 1
        assert c.intern(("a",), 0.3) == 0
        assert len(c) == 2

    def test_stats_aggregate(self):
        c = CST()
        c.intern(("a",), 1.0)
        c.intern(("a",), 3.0)
        assert c.counts[0] == 2
        assert c.avg_duration(0) == 2.0

    def test_contains_lookup(self):
        c = CST()
        c.intern(("x", 1), 0.0)
        assert ("x", 1) in c
        assert c.lookup(("x", 1)) == 0
        assert c.lookup(("y",)) is None


class TestMergeCSTs:
    def _cst(self, sigs):
        c = CST()
        for s in sigs:
            c.intern(s, 1.0)
        return c

    def test_fig3_example(self):
        """The paper's Fig 3: two ranks sharing one signature."""
        r0 = self._cst([("barrier", "comm1"), ("barrier", "comm2")])
        r1 = self._cst([("barrier", "comm1"), ("barrier", "comm3")])
        merged = merge_csts([r0, r1])
        assert len(merged) == 3
        # rank 0's numbering is preserved; rank 1's comm3 gets terminal 2
        assert merged.sigs[0] == ("barrier", "comm1")
        assert merged.sigs[1] == ("barrier", "comm2")
        assert merged.sigs[2] == ("barrier", "comm3")
        assert merged.remaps[0] == [0, 1]
        assert merged.remaps[1] == [0, 2]

    def test_counts_summed_across_ranks(self):
        r0, r1 = self._cst([("a",)]), self._cst([("a",), ("b",)])
        r0.intern(("a",), 1.0)  # second occurrence on rank 0
        merged = merge_csts([r0, r1])
        assert merged.counts[merged.sigs.index(("a",))] == 3

    def test_identical_csts_collapse(self):
        csts = [self._cst([("a",), ("b",)]) for _ in range(8)]
        merged = merge_csts(csts)
        assert len(merged) == 2
        assert all(r == [0, 1] for r in merged.remaps)

    def test_non_power_of_two_ranks(self):
        csts = [self._cst([(f"r{i}",)]) for i in range(5)]
        merged = merge_csts(csts)
        assert len(merged) == 5
        for i, r in enumerate(merged.remaps):
            assert merged.sigs[r[0]] == (f"r{i}",)

    def test_serialization_roundtrip(self):
        merged = merge_csts([self._cst([("a", 1), ("b", (2, 3))])])
        out = bytearray()
        merged.write_to(out)
        back = MergedCST.read_from(Reader(bytes(out)))
        assert back.sigs == merged.sigs
        assert back.counts == merged.counts

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 6), min_size=1, max_size=10),
                    min_size=1, max_size=9))
    def test_merge_equals_union_property(self, rank_sigs):
        csts = [self._cst([(v,) for v in sigs]) for sigs in rank_sigs]
        merged = merge_csts(csts)
        expected = set()
        for sigs in rank_sigs:
            expected.update((v,) for v in sigs)
        assert set(merged.sigs) == expected
        # remaps must be consistent: remap[t] points at the same signature
        for cst, remap in zip(csts, merged.remaps):
            for local_t, global_t in enumerate(remap):
                assert merged.sigs[global_t] == cst.sigs[local_t]


class TestMergeGrammars:
    def test_identical_grammars_dedup(self):
        gs = [freeze([1, 2, 3] * 5)] * 8
        res = merge_grammars(gs)
        assert res.n_unique == 1
        assert res.rank_uid == [0] * 8

    def test_expansion_is_rank_concatenation(self):
        gs = [freeze([1, 2] * 3), freeze([3, 4]), freeze([1, 2] * 3)]
        res = merge_grammars(gs)
        assert res.final.expand() == [1, 2] * 3 + [3, 4] + [1, 2] * 3

    def test_expand_single_rank(self):
        gs = [freeze([i, i + 1] * 4) for i in range(5)]
        res = merge_grammars(gs)
        for r in range(5):
            assert expand_rank(res, r) == [r, r + 1] * 4

    def test_dedup_false_keeps_all(self):
        gs = [freeze([1, 2])] * 4
        res = merge_grammars(gs, dedup=False)
        assert res.n_unique == 4
        assert res.final.expand() == [1, 2] * 4

    def test_dedup_shrinks_output(self):
        gs = [freeze([1, 2, 3, 4] * 50)] * 64
        with_d = merge_grammars(gs, dedup=True).final.size_bytes()
        without = merge_grammars(gs, dedup=False).final.size_bytes()
        assert with_d < without / 10

    def test_alternating_classes_compress_at_top(self):
        a, b = freeze([1] * 10), freeze([2] * 10)
        res = merge_grammars([a, b] * 16)
        assert res.n_unique == 2
        # 32 ranks cost only a handful of top-level tokens
        assert res.final.n_tokens < 16

    def test_blocked_classes_runlength_at_top(self):
        a, b = freeze([1] * 10), freeze([2] * 10)
        res = merge_grammars([a] * 500 + [b] * 500)
        assert res.final.n_tokens <= 6  # two exponent tokens + rules

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 4), max_size=12),
                    min_size=1, max_size=8))
    def test_concat_property(self, rank_seqs):
        gs = [freeze(seq) for seq in rank_seqs]
        res = merge_grammars(gs)
        expected = [v for seq in rank_seqs for v in seq]
        assert res.final.expand() == expected
        for r, seq in enumerate(rank_seqs):
            assert expand_rank(res, r) == seq
