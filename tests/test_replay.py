"""Replay engine + mini-app generator tests (paper §6).

The headline property is the structural fixed point: trace → replay →
re-trace yields the same per-rank signature streams.
"""

import pytest

from repro.core import PilgrimTracer, TraceDecoder
from repro.mpisim import MpiSimError, SimMPI, constants as C, datatypes as dt
from repro.replay import (generate_miniapp, load_miniapp, replay_trace,
                          structurally_equal)
from repro.replay.engine import ReplayState
from repro.workloads import make


def trace_of(workload, nprocs, seed=1, **params) -> bytes:
    tracer = PilgrimTracer()
    make(workload, nprocs, **params).run(seed=seed, tracer=tracer)
    return tracer.result.trace_bytes


def retrace_replay(blob: bytes, seed=9) -> bytes:
    tracer = PilgrimTracer()
    replay_trace(blob, seed=seed, tracer=tracer)
    return tracer.result.trace_bytes


REPLAY_MATRIX = [
    ("stencil2d", 9, {"iters": 8}),
    ("stencil3d", 8, {"iters": 5}),
    ("osu_latency", 2, {"iters": 3}),
    ("osu_bw", 2, {"iters": 2}),
    ("osu_allreduce", 4, {"iters": 2}),
    ("npb_is", 4, {"iters": 3}),
    ("npb_mg", 8, {"iters": 3}),
    ("npb_cg", 8, {"iters": 4}),
    ("npb_lu", 4, {"iters": 4}),
    ("npb_sp", 9, {"iters": 4}),
    ("flash_stirturb", 8, {"iters": 6}),
    ("flash_sedov", 8, {"iters": 12}),
    ("flash_cellular", 8, {"iters": 12}),
    ("milc_su3_rmd", 16, {"steps": 2, "cg_iters": 3}),
]


class TestFixedPoint:
    @pytest.mark.parametrize("workload,nprocs,params", REPLAY_MATRIX)
    def test_replay_fixed_point(self, workload, nprocs, params):
        blob = trace_of(workload, nprocs, **params)
        assert structurally_equal(blob, retrace_replay(blob))

    def test_replay_seed_independent(self):
        """Directed replay pins the non-determinism: any replay seed
        reproduces the recorded behaviour."""
        blob = trace_of("stencil2d", 9, iters=6)
        for seed in (0, 7, 123):
            assert structurally_equal(blob, retrace_replay(blob, seed=seed))

    def test_structural_equality_discriminates(self):
        a = trace_of("stencil2d", 9, iters=6)
        b = trace_of("stencil2d", 9, iters=7)
        assert not structurally_equal(a, b)
        c = trace_of("stencil2d", 4, iters=6)
        assert not structurally_equal(a, c)


class TestDirectedReplay:
    def test_waitany_order_replayed(self):
        """Replay completes requests in the recorded order, not the
        replay scheduler's — the intro's replay-in-proper-order claim."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(512)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in range(4)]
            for t in range(4):
                yield from m.send(buf + 256, 1, dt.DOUBLE, dest=peer, tag=t)
            yield from m.barrier()
            for _ in range(4):
                idx, _st = yield from m.waitany(reqs)

        def waitany_indices(blob):
            dec = TraceDecoder.from_bytes(blob)
            return [c.params["index"] for c in dec.rank_calls(0)
                    if c.fname == "MPI_Waitany"]

        tracer = PilgrimTracer()
        SimMPI(2, seed=3, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        recorded = waitany_indices(blob)

        replay_blob = retrace_replay(blob, seed=99)
        assert waitany_indices(replay_blob) == recorded
        assert structurally_equal(blob, replay_blob)

    def test_intro_testsome_pattern_fixed_point(self):
        """The paper's introduction example end to end: a Testsome-driven
        completion loop replays to the exact same trace — including the
        fruitless polls (flag=False Testsome calls)."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(512)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in range(5)]
            for t in range(5):
                yield from m.send(buf + 256, 1, dt.DOUBLE, dest=peer, tag=t)
            done = 0
            while done < 5:
                idxs, _ = yield from m.testsome(reqs)
                done += len(idxs)

        tracer = PilgrimTracer()
        SimMPI(2, seed=3, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        assert structurally_equal(blob, retrace_replay(blob, seed=77))

    def test_any_source_recv_directed(self):
        def prog(m):
            buf = m.malloc(64)
            if m.rank == 0:
                for _ in range(2):
                    _ = yield from m.recv(buf, 1, dt.DOUBLE,
                                          source=C.ANY_SOURCE, tag=1)
            else:
                m.compute(1e-6 * m.rank)
                yield from m.send(buf, 1, dt.DOUBLE, dest=0, tag=1)

        tracer = PilgrimTracer()
        SimMPI(3, seed=2, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        assert structurally_equal(blob, retrace_replay(blob))

    def test_comm_construction_replayed(self):
        def prog(m):
            sub = yield from m.comm_split(color=m.rank % 2, key=m.rank)
            dup = yield from m.comm_dup(sub)
            yield from m.barrier(dup)
            req = m.comm_idup()
            yield from m.wait(req)
            yield from m.barrier(req.value)
            cart = yield from m.cart_create(None, (2, 2), (True, False))
            if cart is not None:
                yield from m.barrier(cart)

        tracer = PilgrimTracer()
        SimMPI(4, seed=1, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        assert structurally_equal(blob, retrace_replay(blob))

    def test_datatype_construction_replayed(self):
        def prog(m):
            t = m.type_vector(4, 2, 8, dt.DOUBLE)
            m.type_commit(t)
            buf = m.malloc(2048)
            yield from m.send(buf, 1, t, dest=C.PROC_NULL, tag=1)
            m.type_free(t)

        tracer = PilgrimTracer()
        SimMPI(2, seed=1, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        assert structurally_equal(blob, retrace_replay(blob))

    def test_device_buffers_replayed(self):
        def prog(m):
            d = m.cuda_malloc(4096, device=1)
            yield from m.send(d + 128, 1, dt.DOUBLE, dest=C.PROC_NULL,
                              tag=1)
            m.cuda_free(d)

        tracer = PilgrimTracer()
        SimMPI(1, seed=1, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        assert structurally_equal(blob, retrace_replay(blob))


class TestMiniApp:
    def _miniapp_blob(self, blob, seed=4):
        ns = load_miniapp(generate_miniapp(blob))
        tracer = PilgrimTracer()
        state = ReplayState(ns["NPROCS"])
        sim = SimMPI(ns["NPROCS"], seed=seed, tracer=tracer)
        state.bind_comm(0, sim.world)
        sim.run(ns["make_program"](state))
        return tracer.result.trace_bytes

    @pytest.mark.parametrize("workload,nprocs,params", [
        ("stencil2d", 9, {"iters": 8}),
        ("npb_lu", 4, {"iters": 4}),
        ("flash_sedov", 8, {"iters": 12}),
    ])
    def test_miniapp_fixed_point(self, workload, nprocs, params):
        blob = trace_of(workload, nprocs, **params)
        assert structurally_equal(blob, self._miniapp_blob(blob))

    def test_generated_source_shape(self):
        blob = trace_of("stencil2d", 9, iters=20)
        src = generate_miniapp(blob)
        # the compressed grammar is visible as loops in the source
        assert "for _ in range(" in src
        assert "def class_0():" in src
        assert "RANK_CLASS" in src
        # iteration count appears as a loop bound, not 20x unrolled code
        assert src.count("yield 4") < 20

    def test_generated_source_loop_bound_scales(self):
        short = generate_miniapp(trace_of("stencil2d", 9, iters=10))
        long = generate_miniapp(trace_of("stencil2d", 9, iters=300))
        # 30x the iterations: essentially identical source size
        assert abs(len(long) - len(short)) < 64

    def test_miniapp_runs_via_main(self):
        blob = trace_of("osu_barrier", 4, iters=2)
        ns = load_miniapp(generate_miniapp(blob))
        result = ns["main"](seed=0)
        assert result.nprocs == 4


class TestReplayValidation:
    def test_replay_rejects_garbage(self):
        with pytest.raises(ValueError):
            replay_trace(b"not a trace")

    def test_replay_detects_unknown_comm(self):
        """A trace whose first comm use predates its creation record is
        rejected with a *structured* trace error (it indicates
        corruption), never a bare simulator error."""
        from repro.core import ReplayFormatError
        from repro.core.cst import MergedCST
        from repro.core.grammar import Grammar
        from repro.core.interproc import merge_grammars
        from repro.core.sequitur import Sequitur
        from repro.core.trace_format import TraceFile
        from repro.mpisim import funcs as F
        sig = (F.FUNCS["MPI_Barrier"].fid, 5)  # comm id 5 never created
        cst = MergedCST(sigs=[sig], counts=[1], dur_sums=[0.0], remaps=[])
        s = Sequitur()
        s.append(0)
        cfg = merge_grammars([Grammar.freeze(s)])
        blob = TraceFile(nprocs=1, cst=cst, cfg=cfg).to_bytes()
        with pytest.raises(ReplayFormatError):
            replay_trace(blob)
