"""Tests for MPI datatypes (builtin + derived)."""

import pytest

from repro.mpisim import datatypes as dt
from repro.mpisim.errors import InvalidArgumentError, InvalidHandleError


@pytest.fixture
def table():
    return dt.DatatypeTable()


class TestBuiltins:
    @pytest.mark.parametrize("t,size", [
        (dt.BYTE, 1), (dt.CHAR, 1), (dt.SHORT, 2), (dt.INT, 4),
        (dt.FLOAT, 4), (dt.LONG, 8), (dt.DOUBLE, 8), (dt.INT64, 8),
        (dt.DOUBLE_COMPLEX, 16),
    ])
    def test_sizes(self, t, size):
        assert t.size == size
        assert t.extent == size

    def test_builtin_handles_negative_and_stable(self):
        assert dt.INT.handle < 0
        assert dt.INT.handle != dt.DOUBLE.handle
        assert dt.BUILTINS[dt.INT.handle] is dt.INT

    def test_builtins_committed(self):
        dt.DOUBLE.check_usable()  # must not raise

    def test_lookup_builtin_via_table(self, table):
        assert table.lookup(dt.INT.handle) is dt.INT

    def test_cannot_free_builtin(self, table):
        with pytest.raises(InvalidHandleError):
            table.free(dt.INT)


class TestContiguous:
    def test_size_and_extent(self, table):
        t = table.contiguous(10, dt.INT)
        assert t.size == 40
        assert t.extent == 40
        assert t.combiner == "contiguous"
        assert t.recipe == (10,)

    def test_zero_count(self, table):
        t = table.contiguous(0, dt.INT)
        assert t.size == 0

    def test_negative_count_rejected(self, table):
        with pytest.raises(InvalidArgumentError):
            table.contiguous(-1, dt.INT)

    def test_usable_only_after_commit(self, table):
        t = table.contiguous(4, dt.INT)
        with pytest.raises(InvalidArgumentError):
            t.check_usable()
        table.commit(t)
        t.check_usable()


class TestVector:
    def test_size_excludes_gaps(self, table):
        t = table.vector(3, 2, 4, dt.INT)  # 3 blocks of 2 ints, stride 4
        assert t.size == 3 * 2 * 4
        assert t.extent == ((3 - 1) * 4 + 2) * 4

    def test_unit_stride_equals_contiguous_size(self, table):
        v = table.vector(5, 1, 1, dt.DOUBLE)
        c = table.contiguous(5, dt.DOUBLE)
        assert v.size == c.size

    def test_zero_count(self, table):
        assert table.vector(0, 2, 4, dt.INT).size == 0


class TestIndexed:
    def test_size(self, table):
        t = table.indexed([1, 3, 2], [0, 4, 10], dt.INT)
        assert t.size == 6 * 4
        assert t.extent == (10 + 2) * 4
        assert t.recipe == ((1, 3, 2), (0, 4, 10))

    def test_length_mismatch_rejected(self, table):
        with pytest.raises(InvalidArgumentError):
            table.indexed([1, 2], [0], dt.INT)


class TestStruct:
    def test_mixed_types(self, table):
        t = table.struct([2, 1], [0, 8], [dt.INT, dt.DOUBLE])
        assert t.size == 2 * 4 + 8
        assert t.extent == 8 + 8
        assert t.base_handles == (dt.INT.handle, dt.DOUBLE.handle)

    def test_arity_mismatch_rejected(self, table):
        with pytest.raises(InvalidArgumentError):
            table.struct([1], [0, 8], [dt.INT, dt.DOUBLE])


class TestLifecycle:
    def test_handles_sequential_per_table(self, table):
        a = table.contiguous(1, dt.INT)
        b = table.contiguous(2, dt.INT)
        assert (a.handle, b.handle) == (1, 2)

    def test_same_order_same_handles_across_tables(self):
        # the cross-rank id alignment property
        t1, t2 = dt.DatatypeTable(), dt.DatatypeTable()
        a1 = t1.vector(2, 1, 2, dt.INT)
        a2 = t2.vector(2, 1, 2, dt.INT)
        assert a1.handle == a2.handle

    def test_double_free_rejected(self, table):
        t = table.contiguous(1, dt.INT)
        table.commit(t)
        table.free(t)
        with pytest.raises(InvalidHandleError):
            table.free(t)

    def test_freed_type_unusable(self, table):
        t = table.contiguous(1, dt.INT)
        table.commit(t)
        table.free(t)
        with pytest.raises(InvalidHandleError):
            t.check_usable()

    def test_derived_of_derived(self, table):
        inner = table.contiguous(3, dt.INT)
        table.commit(inner)
        outer = table.vector(2, 1, 2, inner)
        assert outer.size == 2 * 12

    def test_unknown_handle(self, table):
        with pytest.raises(InvalidHandleError):
            table.lookup(999)
