"""Tests for the self-instrumentation layer: metrics registry, phase
profiler, JSONL dump/aggregation, and the stats/--json CLI surface."""

import json

import pytest

from repro.analysis import summarize_metrics
from repro.cli import main as cli_main
from repro.core import PilgrimTracer
from repro.obs import (NULL_REGISTRY, EventLog, MetricsRegistry,
                      PhaseProfiler, read_metrics_jsonl, write_metrics_jsonl)
from repro.workloads import make


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("calls")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert reg.counter("calls") is c  # get-or-create

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("ranks")
        g.set(8)
        g.set(64)
        assert g.value == 64

    def test_timer_add_and_block(self):
        t = MetricsRegistry().timer("work")
        t.add(0.5, count=10)
        with t.time():
            pass
        assert t.count == 11
        assert t.total >= 0.5
        assert t.mean == pytest.approx(t.total / 11)

    def test_timer_clock_validation(self):
        reg = MetricsRegistry()
        assert reg.timer("cpu_t", "cpu").clock == "cpu"
        from repro.obs.registry import Timer
        with pytest.raises(ValueError):
            Timer("bad", "sundial")

    def test_histogram_log_bins(self):
        h = MetricsRegistry().histogram("sizes", base=2.0)
        for v in (1, 2, 3, 4, 1024):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 1034
        # 1 -> bin 0, 2 -> bin 1, 3 and 4 -> bin 2, 1024 -> bin 10
        assert h.bins == {0: 1, 1: 1, 2: 2, 10: 1}
        assert h.bin_edge(10) == 1024

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.timer("x")

    def test_scope_prefixes_and_nests(self):
        reg = MetricsRegistry()
        s = reg.scope("pilgrim").scope("cst")
        s.counter("hits").inc()
        assert reg.names() == ["pilgrim.cst.hits"]


class TestSnapshotDeterminism:
    def _populate(self, reg):
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.timer("t").add(1.5, count=3)
        reg.histogram("h").observe(10)
        reg.gauge("g").set(7)

    def test_identical_histories_identical_snapshots(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        self._populate(r1)
        self._populate(r2)
        assert r1.snapshot() == r2.snapshot()
        assert json.dumps(r1.snapshot(), sort_keys=True) == \
            json.dumps(r2.snapshot(), sort_keys=True)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        self._populate(reg)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"]["g"] == 7
        assert snap["timers"]["t"]["count"] == 3


class TestDisabledMode:
    def test_null_instruments_are_inert(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.gauge("g").set(1)
        reg.timer("t").add(2.0)
        with reg.timer("t").time():
            pass
        reg.histogram("h").observe(3)
        assert len(reg) == 0
        assert reg.records() == []

    def test_null_registry_shared_and_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert not NULL_REGISTRY.scope("x").enabled
        NULL_REGISTRY.counter("leak").inc()
        assert len(NULL_REGISTRY) == 0

    def test_profiler_fine_only_when_enabled(self):
        assert PhaseProfiler(None).fine is False
        assert PhaseProfiler(NULL_REGISTRY.scope("p")).fine is False
        assert PhaseProfiler(MetricsRegistry().scope("p")).fine is True


class TestPhaseProfiler:
    def test_accumulates_and_publishes(self):
        reg = MetricsRegistry()
        prof = PhaseProfiler(reg.scope("pilgrim"))
        prof.add("encode", 0.25, count=100, cpu=0.2)
        prof.add("encode", 0.75, count=100, cpu=0.6)
        with prof.phase("merge") as ph:
            pass
        assert prof.wall("encode") == pytest.approx(1.0)
        assert prof.count("encode") == 200
        assert prof.total() == pytest.approx(1.0 + ph.wall)
        assert prof.phases() == {"encode": pytest.approx(1.0),
                                 "merge": pytest.approx(ph.wall)}
        t = reg.timer("pilgrim.phase.encode")
        assert t.total == pytest.approx(1.0) and t.count == 200
        assert reg.timer("pilgrim.phase.encode.cpu").clock == "cpu"

    def test_measures_even_without_registry(self):
        prof = PhaseProfiler(None)
        with prof.phase("only"):
            pass
        assert prof.wall("only") > 0
        assert prof.snapshot()["only"]["count"] == 1


class TestJsonlRoundTrip:
    def test_write_read_summarize(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("pilgrim.calls").inc(1000)
        reg.timer("pilgrim.phase.encode").add(0.6, count=1000)
        reg.timer("pilgrim.phase.cfg_merge").add(0.3)
        reg.timer("pilgrim.phase.encode.cpu", "cpu").add(0.5, count=1000)
        reg.timer("pilgrim.total").add(1.0)
        reg.histogram("pilgrim.msg").observe(256)
        log = EventLog()
        log.emit("p2p.match", src=0, dst=1)
        path = str(tmp_path / "m.jsonl")
        n = write_metrics_jsonl(path, reg, meta={"workload": "stencil2d"},
                                events=log.records())
        records = read_metrics_jsonl(path)
        assert len(records) == n
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == "repro.obs/v1"
        # every line is valid standalone JSON with sorted keys
        for line in open(path):
            assert json.loads(line)

        s = summarize_metrics(records)
        assert s.meta["workload"] == "stencil2d"
        assert s.counters["pilgrim.calls"] == 1000
        assert s.event_counts == {"p2p.match": 1}
        table = s.phase_table("pilgrim")
        # .cpu twin excluded; sorted by wall seconds, shares vs .total
        assert [row[0] for row in table] == ["encode", "cfg_merge"]
        assert table[0][3] == pytest.approx(0.6)
        assert sum(r[3] for r in table) == pytest.approx(0.9)

    def test_concatenated_files_accumulate(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        reg.timer("t").add(1.0, count=2)
        p1, p2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_metrics_jsonl(p1, reg)
        write_metrics_jsonl(p2, reg)
        s = summarize_metrics(read_metrics_jsonl(p1) + read_metrics_jsonl(p2))
        assert s.counters["n"] == 10
        assert s.timers["t"] == {"clock": "wall", "count": 4, "seconds": 2.0}


class TestTracerIntegration:
    def _run(self, metrics=None):
        tracer = PilgrimTracer(metrics=metrics)
        make("stencil2d", 9, iters=3).run(seed=2, tracer=tracer)
        return tracer

    def test_enabled_and_disabled_traces_identical(self):
        plain = self._run()
        profiled = self._run(MetricsRegistry())
        assert plain.result.trace_bytes == profiled.result.trace_bytes

    def test_phases_cover_measured_overhead(self):
        reg = MetricsRegistry()
        tracer = self._run(reg)
        r = tracer.result
        phases = r.phases
        percall = sum(phases.get(p, 0.0) for p in
                      ("encode", "cst", "sequitur", "timing", "mem"))
        assert percall >= 0.9 * r.time_intra
        total = reg.timer("pilgrim.total").total
        assert sum(phases.values()) >= 0.9 * total
        assert {"cst_merge", "cfg_merge", "serialize"} <= set(phases)

    def test_disabled_mode_records_nothing(self):
        tracer = self._run()
        assert tracer.metrics is NULL_REGISTRY
        assert len(NULL_REGISTRY) == 0
        # coarse accounting still populated for PilgrimResult compat
        assert tracer.result.time_intra > 0
        assert tracer.result.phases["cfg_merge"] >= 0


class TestCli:
    def test_trace_metrics_then_stats(self, tmp_path, capsys):
        trace = str(tmp_path / "t.pilgrim")
        mfile = str(tmp_path / "m.jsonl")
        rc = cli_main(["trace", "stencil2d", "-n", "9", "-o", trace,
                       "--param", "iters=3", "--metrics", mfile,
                       "--events", mfile])
        assert rc == 0
        records = read_metrics_jsonl(mfile)
        assert records[0]["type"] == "meta"
        s = summarize_metrics(records)
        assert s.counters["pilgrim.calls"] > 0
        assert "p2p.match" in s.event_counts
        table = s.phase_table("pilgrim")
        assert sum(r[3] for r in table) >= 0.9  # >=90% of total overhead
        capsys.readouterr()

        rc = cli_main(["stats", mfile, "--events", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "overhead decomposition" in out
        assert "encode" in out and "cfg_merge" in out

    def test_stats_json_mode(self, tmp_path, capsys):
        mfile = str(tmp_path / "m.jsonl")
        reg = MetricsRegistry()
        reg.timer("pilgrim.phase.encode").add(0.9)
        reg.timer("pilgrim.total").add(1.0)
        write_metrics_jsonl(mfile, reg)
        assert cli_main(["stats", mfile, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        decomp = payload["decomposition"]["pilgrim"]
        assert decomp[0]["phase"] == "encode"
        assert decomp[0]["share"] == pytest.approx(0.9)

    def test_info_json_mode(self, tmp_path, capsys):
        trace = str(tmp_path / "t.pilgrim")
        assert cli_main(["trace", "osu_barrier", "-n", "4", "-o", trace,
                         "--param", "iters=2"]) == 0
        capsys.readouterr()
        assert cli_main(["info", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ranks"] == 4
        assert payload["total_calls"] > 0
        assert "MPI_Barrier" in payload["calls_per_function"]

    def test_compare_json_mode(self, capsys):
        assert cli_main(["compare", "osu_barrier", "-n", "4",
                         "--param", "iters=2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["nprocs"] == 4
        assert rows[0]["pilgrim_size"] > 0
