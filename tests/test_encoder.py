"""Signature-encoding tests: symbolic ids, relative ranks, pointers,
request pools, communicator id agreement."""


from conftest import trace_program
from repro.core import PilgrimTracer
from repro.core.encoder import (PTR_DEVICE, PTR_HEAP, PTR_NULL, PTR_STACK,
                                CommIdSpace, MemoryTable)
from repro.mpisim import SimMPI, constants as C, datatypes as dt
from repro.mpisim.comm import Comm
from repro.mpisim.group import Group


class TestMemoryTable:
    def test_null_pointer(self):
        t = MemoryTable()
        assert t.encode_ptr(0) == (PTR_NULL,)

    def test_heap_pointer_with_displacement(self):
        t = MemoryTable()
        t.on_alloc(0x200000, 1024)
        assert t.encode_ptr(0x200000) == (PTR_HEAP, 0, 0)
        assert t.encode_ptr(0x200100) == (PTR_HEAP, 0, 0x100)

    def test_freed_segment_id_reused(self):
        t = MemoryTable()
        t.on_alloc(0x200000, 64)
        t.on_free(0x200000)
        t.on_alloc(0x300000, 64)
        assert t.encode_ptr(0x300000) == (PTR_HEAP, 0, 0)

    def test_stack_fallback_first_touch(self):
        t = MemoryTable()
        assert t.encode_ptr(0x50) == (PTR_STACK, 0)
        assert t.encode_ptr(0x60) == (PTR_STACK, 1)
        assert t.encode_ptr(0x50) == (PTR_STACK, 0)  # stable

    def test_device_pointer(self):
        t = MemoryTable()
        t.on_alloc(0x900000, 4096, device=2)
        assert t.encode_ptr(0x900010) == (PTR_DEVICE, 2, 0, 0x10)

    def test_free_unknown_is_noop(self):
        t = MemoryTable()
        assert t.on_free(0x1234) is None


class TestCommIdSpace:
    def test_world_is_zero(self):
        s = CommIdSpace(4)
        world = Comm(0, Group(range(4)))
        assert s.sym_for(world) == 0

    def test_group_wide_max_plus_one(self):
        s = CommIdSpace(4)
        s.sym_for(Comm(0, Group(range(4))))
        a = Comm(1, Group([0, 1]))
        b = Comm(2, Group([2, 3]))
        # disjoint groups: both get 1 — same id for "first sub-comm", the
        # cross-rank alignment §3.3.1 is designed for
        assert s.sym_for(a) == 1
        assert s.sym_for(b) == 1
        # a comm spanning both halves must exceed both locals
        c = Comm(3, Group(range(4)))
        assert s.sym_for(c) == 2

    def test_idempotent(self):
        s = CommIdSpace(2)
        c = Comm(5, Group([0, 1]))
        assert s.sym_for(c) == s.sym_for(c)

    def test_intercomm_uses_both_groups(self):
        s = CommIdSpace(4)
        left = Comm(1, Group([0, 1]))
        s.sym_for(left)   # left half now at max 1
        inter = Comm(2, Group([0, 1]), Group([2, 3]))
        assert s.sym_for(inter) == 2  # exceeds the left half's max


def _sig_stream(tracer, rank):
    return [tracer.csts[rank].sigs[t] for t in tracer.raw_terms[rank]]


class TestEndToEndEncoding:
    def test_comm_rank_output_relative(self):
        def prog(m):
            m.comm_rank()
            yield from m.barrier()
        tr = trace_program(4, prog, keep_raw=True)
        sigs = {r: _sig_stream(tr, r) for r in range(4)}
        # the comm_rank signature must be identical on every rank
        assert sigs[0][1] == sigs[1][1] == sigs[2][1] == sigs[3][1]

    def test_buffer_ids_align_across_ranks(self):
        def prog(m):
            a = m.malloc(100)
            b = m.malloc(200)
            yield from m.send(b + 8, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            m.free(a)
            m.free(b)
            yield from m.barrier()
        tr = trace_program(3, prog, keep_raw=True)
        send0 = _sig_stream(tr, 0)[1]
        send2 = _sig_stream(tr, 2)[1]
        assert send0 == send2
        # buf param of MPI_Send is parts[1]: (PTR_HEAP, segid=1, disp=8)
        assert send0[1] == (PTR_HEAP, 1, 8)

    def test_datatype_creation_and_use_share_id(self):
        def prog(m):
            t = m.type_vector(4, 2, 8, dt.DOUBLE)
            m.type_commit(t)
            buf = m.malloc(1024)
            yield from m.send(buf, 1, t, dest=C.PROC_NULL, tag=1)
            m.type_free(t)
            yield from m.barrier()
        tr = trace_program(1, prog, keep_raw=True)
        sigs = _sig_stream(tr, 0)
        create = next(s for s in sigs if s[0] ==
                      _fid("MPI_Type_vector"))
        send = next(s for s in sigs if s[0] == _fid("MPI_Send"))
        newtype_id = create[-1]
        used_id = send[3]
        assert newtype_id == used_id >= 0

    def test_request_ids_stable_across_seeds(self):
        """The §3.4.3 guarantee: per-signature pools give the same ids no
        matter the completion order (scheduler seed)."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(256)
            for _ in range(4):
                reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                        for t in range(3)]
                for t in range(3):
                    yield from m.send(buf + 128, 1, dt.DOUBLE, dest=peer,
                                      tag=t)
                done = 0
                while done < 3:
                    idxs, _ = yield from m.waitsome(reqs)
                    done += len(idxs)

        def irecv_sigs(seed):
            tr = PilgrimTracer(keep_raw=True)
            SimMPI(2, seed=seed, tracer=tr).run(prog)
            return [s for s in _sig_stream(tr, 0)
                    if s[0] == _fid("MPI_Irecv")]

        a, b = irecv_sigs(1), irecv_sigs(99)
        assert a == b  # identical irecv signatures despite seed change

    def test_global_pool_ablation_unstable(self):
        """Without per-signature pools, creation-time ids leak the
        completion order (the §3.4.3 defect): in a sliding-window loop the
        replacement request takes over whichever slot the non-
        deterministically-completed request freed."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(1024)
            # a sliding window of 3 outstanding irecvs, refilled as they
            # complete; tags cycle so creation signatures are distinct
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in range(3)]
            tags = [0, 1, 2]
            next_tag = 3
            for t in range(24):
                yield from m.send(buf + 512, 1, dt.DOUBLE, dest=peer,
                                  tag=t)
            consumed = 0
            while consumed < 21:
                idx, _ = yield from m.waitany(reqs)
                consumed += 1
                reqs[idx] = m.irecv(buf, 1, dt.DOUBLE, source=peer,
                                    tag=next_tag % 24)
                tags[idx] = next_tag
                next_tag += 1
            yield from m.waitall(reqs)

        def irecv_sig_set(seed, per_sig):
            tr = PilgrimTracer(keep_raw=True,
                               per_signature_request_pools=per_sig)
            SimMPI(2, seed=seed, tracer=tr).run(prog)
            return frozenset(s for s in _sig_stream(tr, 0)
                             if s[0] == _fid("MPI_Irecv"))

        with_pools = {irecv_sig_set(s, True) for s in range(4)}
        without = {irecv_sig_set(s, False) for s in range(4)}
        assert len(with_pools) == 1      # stable creation signatures
        assert len(without) > 1          # single pool leaks the order

    def test_comm_split_same_symbolic_id_all_members(self):
        def prog(m):
            sub = yield from m.comm_split(color=m.rank % 2, key=m.rank)
            yield from m.barrier(sub)
        tr = trace_program(4, prog, keep_raw=True)
        barrier_sigs = {r: [s for s in _sig_stream(tr, r)
                            if s[0] == _fid("MPI_Barrier")][0]
                        for r in range(4)}
        # both sub-comms get symbolic id 1 on their members
        assert len({barrier_sigs[r][1] for r in range(4)}) == 1

    def test_statuses_keep_source_and_tag_only(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=9)
            else:
                _ = yield from m.recv(buf, 1, dt.DOUBLE, source=0, tag=9)
        tr = trace_program(2, prog, keep_raw=True)
        recv = next(s for s in _sig_stream(tr, 1)
                    if s[0] == _fid("MPI_Recv"))
        status_enc = recv[-1]
        assert status_enc == ((1, -1), 9)  # (relative source, tag), no more


def _fid(name):
    from repro.mpisim import funcs as F
    return F.FUNCS[name].fid
