"""The ingest subsystem's lower layers, sans-io.

Layer 1 (framing): every frame kind round-trips through the decoder at
any byte-split granularity; every corruption raises a structured
``TraceFormatError`` subclass (the frame fuzzer pins the exhaustive
version).  Layer 2 (sessions): the per-tenant state machine accepts
exactly the in-order stream, re-classifies duplicates, refuses gaps and
concurrent sessions, and resumes idempotently.  Layer 3 (fold
checkpoints): a checkpoint round-trip reproduces the exact final trace.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (ChecksumError, FrameFormatError,
                               TraceFormatError, TruncatedTraceError,
                               UnsupportedVersionError)
from repro.core.shard import ShardPartial
from repro.ingest import protocol as proto
from repro.ingest.aggregator import Aggregator, TenantFold
from repro.ingest.client import ChunkingTracer
from repro.ingest.fuzz import build_frame_corpus, run_frame_fuzz
from repro.ingest.session import (SEQ_DUPLICATE, SEQ_NEW, SequenceError,
                                  Session, SessionError, SessionRegistry)
from repro.workloads import make

CFG = proto.IngestConfig()


def _decode_all(blob: bytes, *, step: int = 0) -> list:
    dec = proto.FrameDecoder()
    if step:
        for i in range(0, len(blob), step):
            dec.feed(blob[i:i + step])
    else:
        dec.feed(blob)
    frames = list(dec.frames())
    dec.check_eof()
    return frames


class TestFraming:
    def all_kinds(self) -> bytes:
        return b"".join([
            proto.encode_hello("t-1", 4, CFG),
            proto.encode_hello_ack(7),
            proto.encode_chunk(3, b"partial-blob"),
            proto.encode_ack(3),
            proto.encode_fin([10, 20, 30, 40]),
            proto.encode_result(b"trace-blob"),
            proto.encode_error("FoldError", "boom"),
        ])

    @pytest.mark.parametrize("step", [0, 1, 3, 1000])
    def test_roundtrip_any_split(self, step):
        frames = _decode_all(self.all_kinds(), step=step)
        kinds = [k for k, _ in frames]
        assert kinds == [proto.HELLO, proto.HELLO_ACK, proto.CHUNK,
                         proto.ACK, proto.FIN, proto.RESULT, proto.ERROR]
        assert proto.parse_hello(frames[0][1]) == ("t-1", 4, False, CFG)
        assert proto.parse_hello_ack(frames[1][1]) == 7
        assert proto.parse_chunk(frames[2][1]) == (3, b"partial-blob")
        assert proto.parse_ack(frames[3][1]) == 3
        assert proto.parse_fin(frames[4][1]) == [10, 20, 30, 40]
        assert frames[5][1] == b"trace-blob"
        assert proto.parse_error(frames[6][1]) == ("FoldError", "boom")

    def test_compressed_frame_roundtrip(self):
        payload = b"x" * 4096
        blob = proto.encode_frame(proto.RESULT, payload, compress=True)
        assert len(blob) < len(payload)
        [(kind, got)] = _decode_all(blob)
        assert (kind, got) == (proto.RESULT, payload)

    def test_bad_magic(self):
        blob = bytearray(proto.encode_ack(0))
        blob[0] ^= 0xFF
        with pytest.raises(FrameFormatError):
            _decode_all(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(proto.encode_ack(0))
        blob[4] = 99
        with pytest.raises(UnsupportedVersionError):
            _decode_all(bytes(blob))

    def test_unknown_kind_and_flags(self):
        blob = bytearray(proto.encode_ack(0))
        blob[5] = 200
        with pytest.raises(FrameFormatError):
            _decode_all(bytes(blob))
        blob = bytearray(proto.encode_ack(0))
        blob[6] |= 0x80
        with pytest.raises(FrameFormatError):
            _decode_all(bytes(blob))

    def test_payload_corruption_fails_crc(self):
        blob = bytearray(proto.encode_chunk(1, b"partial-blob"))
        blob[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            _decode_all(bytes(blob))

    def test_truncation_is_structured(self):
        blob = self.all_kinds()
        with pytest.raises(TruncatedTraceError):
            _decode_all(blob[:-3])

    def test_tenant_validation(self):
        assert proto.validate_tenant("a.B-2_c") == "a.B-2_c"
        for bad in ("", "a b", "a/b", "x" * 100, "t\n"):
            with pytest.raises(FrameFormatError):
                proto.validate_tenant(bad)

    def test_config_tuple_roundtrip(self):
        cfg = proto.IngestConfig(loop_detection=False, lossy_timing=True,
                                 timing_base=1.5,
                                 per_function_base={"MPI_Send": 1.1})
        assert proto.IngestConfig.from_tuple(cfg.to_tuple()) == cfg
        with pytest.raises(TraceFormatError):
            proto.IngestConfig.from_tuple(("nope",))

    def test_fin_rejects_negatives(self):
        from repro.core.packing import write_value
        payload = bytearray()
        write_value(payload, (1, -2))
        with pytest.raises(FrameFormatError):
            proto.parse_fin(bytes(payload))


class TestFrameFuzz:
    """Satellite: corrupt/truncated frames through the shared fuzz
    harness — structured errors only, never a crash, never a silently
    different decode."""

    def test_recorded_stream_survives_fuzz(self):
        blob = build_frame_corpus("osu_latency", 2, seed=11,
                                  chunk_calls=32)
        report = run_frame_fuzz(blob, seed=1, n_random=150)
        assert report.ok, report.summary() + "".join(
            f"\n  {f}" for f in report.failures[:10])
        # the boundary attack must actually exercise the CRC and
        # truncation paths, not just bounce off the magic check
        assert report.by_error.get("ChecksumError", 0) > 0
        assert report.by_error.get("TruncatedTraceError", 0) > 0


class TestSession:
    def test_happy_path(self):
        reg = SessionRegistry()
        s = Session(reg)
        assert s.on_hello("t", 2, CFG) == 0
        assert s.on_chunk(0) == SEQ_NEW
        s.absorbed(0)
        assert s.on_chunk(1) == SEQ_NEW
        s.absorbed(1)
        s.on_fin([3, 4])
        assert s.tenant_state.fin_calls == [3, 4]
        s.finish()
        assert s.state == Session.CLOSED
        assert reg.active_sessions == 0

    def test_duplicate_and_gap(self):
        s = Session(SessionRegistry())
        s.on_hello("t", 1, CFG)
        assert s.on_chunk(0) == SEQ_NEW
        assert s.on_chunk(0) == SEQ_DUPLICATE
        with pytest.raises(SequenceError):
            s.on_chunk(5)

    def test_frames_out_of_state(self):
        reg = SessionRegistry()
        s = Session(reg)
        with pytest.raises(SessionError):
            s.on_chunk(0)
        s.on_hello("t", 1, CFG)
        with pytest.raises(SessionError):
            s.on_hello("t", 1, CFG)
        with pytest.raises(SessionError):
            s.on_fin([1, 2])  # wrong rank count
        s.on_fin([1])
        with pytest.raises(SessionError):
            s.on_chunk(1)  # FINISHING, not ACTIVE

    def test_concurrent_sessions_refused(self):
        reg = SessionRegistry()
        Session(reg).on_hello("t", 2, CFG)
        with pytest.raises(SessionError):
            Session(reg).on_hello("t", 2, CFG)
        # a different tenant is fine
        Session(reg).on_hello("u", 2, CFG)

    def test_resume_keeps_watermark(self):
        reg = SessionRegistry()
        s1 = Session(reg)
        s1.on_hello("t", 2, CFG)
        assert s1.on_chunk(0) == SEQ_NEW
        s1.absorbed(0)
        s1.close()  # connection dropped; durable state survives
        s2 = Session(reg)
        assert s2.on_hello("t", 2, CFG, resume=True) == 1
        # the resent chunk 0 is recognized as a duplicate
        assert s2.on_chunk(0) == SEQ_DUPLICATE
        assert s2.on_chunk(1) == SEQ_NEW

    def test_resume_mismatch_refused(self):
        reg = SessionRegistry()
        s1 = Session(reg)
        s1.on_hello("t", 2, CFG)
        s1.close()
        with pytest.raises(SessionError):
            Session(reg).on_hello("t", 4, CFG, resume=True)

    def test_fresh_hello_resets_finished_tenant(self):
        reg = SessionRegistry()
        s1 = Session(reg)
        s1.on_hello("t", 2, CFG)
        s1.on_fin([0, 0])
        s1.finish()
        with pytest.raises(SessionError):
            Session(reg).on_hello("t", 2, CFG, resume=True)
        assert Session(reg).on_hello("t", 2, CFG) == 0

    def test_absorb_out_of_order_refused(self):
        s = Session(SessionRegistry())
        s.on_hello("t", 1, CFG)
        s.on_chunk(0)
        s.on_chunk(1)
        with pytest.raises(SessionError):
            s.absorbed(1)  # 0 not yet absorbed


def _stream_partials(family: str, nprocs: int, seed: int,
                     chunk_calls: int = 32) -> tuple[list, list]:
    """Trace a run with the chunking tracer; return (partials, fin)."""
    out: list[ShardPartial] = []
    tracer = ChunkingTracer(out.append, chunk_calls=chunk_calls)
    make(family, nprocs).run(seed=seed, tracer=tracer, noise=0.05)
    return out, [rc.streamed_calls for rc in tracer.ranks]


class TestCheckpoint:
    def test_fold_checkpoint_roundtrip_is_byte_identical(self):
        from repro.ingest.session import TenantState
        partials, fin = _stream_partials("stencil2d", 2, seed=9)
        assert len(partials) > 4
        cut = len(partials) // 2

        ref = TenantFold("t", 2, CFG)
        for p in partials:
            ref.absorb(p)

        half = TenantFold("t", 2, CFG)
        for p in partials[:cut]:
            half.absorb(p)
        st = TenantState(tenant="t", nprocs=2, config=CFG, next_seq=cut)
        restored, st2 = TenantFold.from_bytes(half.to_bytes(st))
        assert (st2.tenant, st2.nprocs, st2.next_seq) == ("t", 2, cut)
        for p in partials[cut:]:
            restored.absorb(p)
        assert restored.finish(fin) == ref.finish(fin)

    def test_aggregator_checkpoint_restore(self, tmp_path):
        from repro.ingest.session import TenantState
        partials, fin = _stream_partials("osu_latency", 2, seed=4)
        ckdir = str(tmp_path / "ck")

        a1 = Aggregator(checkpoint_dir=ckdir)
        a1.start("t", 2, CFG)
        for i, p in enumerate(partials):
            a1.absorb("t", p.to_bytes())
        path = a1.checkpoint("t", TenantState(
            tenant="t", nprocs=2, config=CFG, next_seq=len(partials)))
        assert path is not None and path.endswith("t.ckpt")
        expected = a1.finish("t", fin)

        a2 = Aggregator(checkpoint_dir=ckdir)
        [state] = a2.restore()
        assert state.tenant == "t" and state.next_seq == len(partials)
        assert a2.finish("t", fin) == expected

    def test_corrupt_checkpoint_is_structured(self):
        with pytest.raises(TraceFormatError):
            TenantFold.from_bytes(b"NOPE" + b"\x00" * 20)
