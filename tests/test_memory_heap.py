"""Tests for the simulated per-rank heap."""

import pytest

from repro.mpisim.errors import InvalidArgumentError, InvalidHandleError
from repro.mpisim.memory import DEVICE_BASE, HEAP_BASE, RankHeap


class TestMalloc:
    def test_addresses_above_heap_base(self):
        h = RankHeap()
        assert h.malloc(100) >= HEAP_BASE

    def test_distinct_live_allocations(self):
        h = RankHeap()
        a, b = h.malloc(64), h.malloc(64)
        assert a != b

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidArgumentError):
            RankHeap().malloc(-1)

    def test_zero_size_allowed(self):
        h = RankHeap()
        a = h.malloc(0)
        assert h.containing(a) is not None

    def test_deterministic_across_instances(self):
        # same allocation sequence => same addresses, the property that
        # aligns Pilgrim's buffer ids across ranks
        h1, h2 = RankHeap(), RankHeap()
        seq1 = [h1.malloc(s) for s in (10, 200, 3000)]
        seq2 = [h2.malloc(s) for s in (10, 200, 3000)]
        assert seq1 == seq2

    def test_calloc(self):
        h = RankHeap()
        a = h.calloc(10, 8)
        assert h.containing(a).size == 80


class TestFree:
    def test_free_then_malloc_reuses_address(self):
        h = RankHeap()
        a = h.malloc(128)
        h.free(a)
        assert h.malloc(128) == a  # LIFO reuse, like glibc fastbins

    def test_free_null_rejected(self):
        with pytest.raises(InvalidArgumentError):
            RankHeap().free(0)

    def test_double_free_rejected(self):
        h = RankHeap()
        a = h.malloc(16)
        h.free(a)
        with pytest.raises(InvalidHandleError):
            h.free(a)

    def test_free_unknown_rejected(self):
        with pytest.raises(InvalidHandleError):
            RankHeap().free(0x123456)

    def test_live_accounting(self):
        h = RankHeap()
        a = h.malloc(100)
        h.malloc(50)
        assert h.live_count == 2 and h.live_bytes == 150
        h.free(a)
        assert h.live_count == 1 and h.live_bytes == 50


class TestRealloc:
    def test_realloc_null_is_malloc(self):
        h = RankHeap()
        a = h.realloc(0, 64)
        assert h.containing(a).size == 64

    def test_realloc_moves_and_frees(self):
        h = RankHeap()
        a = h.malloc(64)
        b = h.realloc(a, 128)
        assert h.containing(b).size == 128
        # old block freed (either reused by b or gone)
        assert h.live_count == 1


class TestDevice:
    def test_device_addresses_separate(self):
        h = RankHeap()
        d = h.cuda_malloc(1024, device=0)
        assert d >= DEVICE_BASE
        assert h.containing(d).device == 0

    def test_cuda_free_host_pointer_rejected(self):
        h = RankHeap()
        a = h.malloc(8)
        with pytest.raises(InvalidHandleError):
            h.cuda_free(a)

    def test_cuda_roundtrip(self):
        h = RankHeap()
        d = h.cuda_malloc(256, device=1)
        alloc = h.cuda_free(d)
        assert alloc.device == 1
        assert h.containing(d) is None


class TestContaining:
    def test_interior_pointer(self):
        h = RankHeap()
        a = h.malloc(100)
        assert h.containing(a + 50).addr == a
        assert h.containing(a + 99).addr == a
        assert h.containing(a + 100) is None or \
            h.containing(a + 100).addr != a
