"""The content-addressed cross-run trace store (``repro.store``).

The contract under test, layer by layer:

* **objects** — CAS round-trips, idempotent puts, integrity
  re-verification on read, refcount sidecars, debris pruning;
* **manifest / index** — binary round-trips, exhaustive corruption
  rejection as structured :class:`StoreFormatError` subclasses;
* **repository** — ``get(put(trace))`` is byte-identical for every
  workload family and timing mode, identical re-runs are >= 90% by
  reference, diffs and drift queries answer without decoding;
* **maintenance** — GC sweeps exactly the unreferenced blobs and the
  refcount audit *conserves* (sidecar == computed for every object);
* **integration** — the CLI verbs, the ingest-server archival hook,
  the manifest fuzzer, and the upward-only layering rule.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import api, cli
from repro.core import (MissingObjectError, StoreFormatError,
                        StoreIntegrityError, TraceFormatError,
                        TracerOptions, section_hashes, split_sections)
from repro.obs import MetricsRegistry
from repro.store import (ObjectStore, RunIndex, RunRecord, SectionRef,
                         TraceStore, apply_retention, compute_refcounts,
                         gc, hash_blob, manifest_spans)
from repro.store.fuzz import corpus_manifest_mutations, run_store_fuzz
from repro.store.manifest import resolve_ref, validate_name, \
    validate_run_id

FAMILIES = ("stencil2d", "osu_latency", "npb_mg", "flash_sedov",
            "milc_su3_rmd")


def _trace_bytes(family: str = "stencil2d", nprocs: int = 4,
                 seed: int = 1, *, lossy: bool = False) -> bytes:
    return api.trace(family, nprocs, seed=seed,
                     options=TracerOptions(
                         lossy_timing=lossy)).trace_bytes


class TestSectionSplit:
    """The core helpers the store is built on."""

    def test_split_reassembles_byte_identical(self):
        blob = _trace_bytes()
        header, sections = split_sections(blob)
        assert header + b"".join(s for _, s in sections) == blob
        assert [n for n, _ in sections]  # named, ordered

    def test_trailing_bytes_rejected(self):
        blob = _trace_bytes()
        with pytest.raises(TraceFormatError, match="trailing"):
            split_sections(blob + b"\x00")

    def test_section_hashes_track_content(self):
        a = section_hashes(_trace_bytes(seed=1))
        b = section_hashes(_trace_bytes(seed=1))
        c = section_hashes(_trace_bytes(seed=2))
        assert a == b
        assert a.keys() == c.keys() and a != c


class TestObjectStore:
    def test_roundtrip_and_idempotent_put(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        digest, created = objs.put(b"hello world")
        assert created and digest == hash_blob(b"hello world")
        digest2, created2 = objs.put(b"hello world")
        assert digest2 == digest and not created2
        assert objs.get(digest) == b"hello world"
        assert objs.contains(digest)
        assert objs.size(digest) == 11

    def test_missing_object_is_structured(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        with pytest.raises(MissingObjectError):
            objs.get("0" * 64)
        with pytest.raises(StoreFormatError):
            objs.get("not-a-digest")

    def test_integrity_reverified_on_read(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        digest, _ = objs.put(b"payload under test")
        path = objs.path_for(digest)
        with open(path, "wb") as fh:
            fh.write(b"payload under tesT")
        with pytest.raises(StoreIntegrityError):
            objs.get(digest)
        assert objs.get(digest, verify=False) == b"payload under tesT"

    def test_refcounts(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        digest, _ = objs.put(b"x")
        assert objs.refcount(digest) == 0
        objs.incref(digest)
        objs.incref(digest)
        assert objs.refcount(digest) == 2
        objs.decref(digest)
        assert objs.refcount(digest) == 1
        objs.set_refcount(digest, 7)
        assert objs.refcount(digest) == 7

    def test_delete_and_prune(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        digest, _ = objs.put(b"doomed")
        objs.incref(digest)
        assert objs.delete(digest) == 6
        assert not objs.contains(digest)
        assert objs.delete(digest) == 0  # idempotent
        # stranded temp debris from an interrupted put is pruned
        shard = os.path.dirname(objs.path_for(hash_blob(b"q")))
        os.makedirs(shard, exist_ok=True)
        open(os.path.join(shard, ".tmp-dead"), "wb").close()
        assert objs.prune() >= 1
        assert not os.path.exists(os.path.join(shard, ".tmp-dead"))

    def test_stats(self, tmp_path):
        objs = ObjectStore(str(tmp_path))
        d1, _ = objs.put(b"aaaa")
        objs.put(b"bb")
        objs.incref(d1)
        stats = objs.stats()
        assert stats.objects == 2
        assert stats.bytes == 6
        assert stats.refs == 1


class TestManifestAndIndex:
    def _record(self) -> RunRecord:
        return RunRecord(
            run_id="r000042", workload="stencil", tenant="default",
            nprocs=8, created_ms=1_700_000_000_000, parent="r000041",
            header=b"PILG\x02\x08",
            sections=[
                SectionRef("cst", "a" * 64, 120, False),
                SectionRef("cfg", "b" * 64, 80, True)])

    def test_manifest_roundtrip(self):
        rec = self._record()
        back = RunRecord.from_bytes(rec.to_bytes())
        assert back == rec
        assert back.total_bytes == 206  # 6-byte header + sections
        assert back.reused_bytes == 80 and back.new_bytes == 120
        assert back.reused_fraction == pytest.approx(0.4)

    def test_manifest_spans_cover_blob(self):
        blob = self._record().to_bytes()
        spans = manifest_spans(blob)
        assert spans["magic"] == (0, 4)
        assert max(end for _, end in spans.values()) == len(blob)

    def test_corruption_is_always_structured(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        for desc, mut in corpus_manifest_mutations(self._record()):
            with pytest.raises(StoreFormatError):
                # a dangling-but-well-formed hash ref parses; it must
                # then fail dereference with MissingObjectError (a
                # StoreFormatError subclass), never FileNotFoundError
                rec = RunRecord.from_bytes(mut)
                for sec in rec.sections:
                    st_.objects.get(sec.digest)

    def test_name_and_run_id_validation(self):
        validate_name("a.b-c_9", "workload")
        for bad in ("", ".hidden", "../evil", "a/b", "x" * 101):
            with pytest.raises(StoreFormatError):
                validate_name(bad, "workload")
        validate_run_id("r000001")
        for bad in ("", "r1", "x000001", "r00001a"):
            with pytest.raises(StoreFormatError):
                validate_run_id(bad)

    def test_resolve_ref_forms(self):
        assert resolve_ref("r000007") == ("r000007", None)
        assert resolve_ref("w@latest") == (None, "w@latest")
        assert resolve_ref("w@golden") == (None, "w@golden")
        with pytest.raises(StoreFormatError):
            resolve_ref("w@newest")
        with pytest.raises(StoreFormatError):
            resolve_ref("not a ref")

    def test_index_roundtrip(self, tmp_path):
        idx = RunIndex(str(tmp_path))
        r1, r2 = idx.issue_run_id(), idx.issue_run_id()
        idx.append("w", r1)
        idx.append("w", r2)
        idx.pin_golden("w", r1)
        idx.save()
        back = RunIndex(str(tmp_path))
        assert back.runs("w") == [r1, r2]
        assert back.golden("w") == r1
        assert back.latest("w") == r2
        assert back.workload_of(r2) == "w"
        assert back.issue_run_id() == "r000003"

    def test_corrupt_index_is_structured(self, tmp_path):
        idx = RunIndex(str(tmp_path))
        idx.append("w", idx.issue_run_id())
        idx.save()
        data = bytearray(open(idx.path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(idx.path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(StoreFormatError):
            RunIndex(str(tmp_path))


class TestTraceStore:
    def test_roundtrip_across_families_and_timing(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        for fam in ("stencil2d", "npb_mg"):
            for lossy in (False, True):
                blob = _trace_bytes(fam, 4, lossy=lossy)
                put = st_.put(blob, f"{fam}{'-lossy' if lossy else ''}")
                assert st_.get(put.run_id) == blob

    def test_identical_rerun_is_by_reference(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        blob = _trace_bytes(seed=1)
        st_.put(blob, "w")
        put = st_.put(blob, "w")
        assert put.record.reused_fraction == 1.0
        assert put.record.reused_fraction >= 0.9  # the CI acceptance bar
        assert put.created == 0
        assert put.record.parent  # delta-encoded against the prior run
        assert st_.dedup_stats("w").ratio >= 2.0

    def test_selectors_and_golden(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        b1, b2 = _trace_bytes(seed=1), _trace_bytes(seed=2)
        r1 = st_.put(b1, "w").run_id
        st_.put(b2, "w")
        assert st_.get("w@latest") == b2
        with pytest.raises(StoreFormatError, match="golden"):
            st_.get("w@golden")
        assert st_.pin_golden(r1) == "w"
        assert st_.get("w@golden") == b1

    def test_diff_and_drift(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        r1 = st_.put(_trace_bytes(seed=1), "w").run_id
        r2 = st_.put(_trace_bytes(seed=2), "w").run_id
        r3 = st_.put(_trace_bytes(seed=1), "w").run_id
        assert st_.diff(r1, r3).identical
        drifted = st_.diff(r1, r2)
        assert not drifted.identical
        assert all(e.kind == "changed" for e in drifted.drifted)
        with pytest.raises(StoreFormatError, match="golden"):
            st_.drifted("w")
        st_.pin_golden(r1)
        verdicts = dict(st_.drifted("w"))
        assert not verdicts[r2].identical and verdicts[r3].identical

    def test_unknown_refs_are_structured(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        with pytest.raises(StoreFormatError):
            st_.get("r999999")
        with pytest.raises(StoreFormatError):
            st_.get("nobody@latest")
        with pytest.raises(StoreFormatError):
            st_.put(_trace_bytes(), "../evil")

    def test_obs_counters(self, tmp_path):
        reg = MetricsRegistry()
        st_ = TraceStore(str(tmp_path), metrics=reg)
        blob = _trace_bytes()
        st_.put(blob, "w")
        st_.put(blob, "w")
        st_.get("w@latest")
        snap = reg.snapshot()["counters"]
        n_secs = len(split_sections(blob)[1])
        assert snap["store.puts"] == 2
        assert snap["store.misses"] == n_secs
        assert snap["store.hits"] == n_secs
        assert snap["store.bytes_deduped"] == sum(
            len(s) for _, s in split_sections(blob)[1])
        assert snap["store.gets"] == 1


class TestMaintenance:
    def test_gc_sweeps_only_unreferenced(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        b1, b2 = _trace_bytes(seed=1), _trace_bytes(seed=2)
        r1 = st_.put(b1, "w").run_id
        r2 = st_.put(b2, "w").run_id
        before = st_.objects.stats().objects
        st_.delete_run(r2)
        report = gc(st_)
        assert report.conserved and not report.mismatches
        assert 0 < report.removed_objects < before
        assert st_.get(r1) == b1  # survivors untouched

    def test_gc_audit_detects_and_repairs(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        rec = st_.put(_trace_bytes(), "w").record
        victim = rec.sections[0].digest
        st_.objects.set_refcount(victim, 9)
        report = gc(st_)
        assert not report.conserved
        assert (victim, 9, 1) in report.mismatches
        report = gc(st_, repair=True)
        assert report.conserved and report.repaired == 1
        assert gc(st_).conserved
        assert st_.objects.refcount(victim) == 1

    def test_compute_refcounts_matches_sidecars(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        blob = _trace_bytes()
        st_.put(blob, "w")
        st_.put(blob, "w")
        expected = compute_refcounts(st_)
        for digest, n in expected.items():
            assert st_.objects.refcount(digest) == n == 2

    def test_retention_keeps_golden(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        runs = [st_.put(_trace_bytes(seed=s), "w").run_id
                for s in (1, 2, 3)]
        st_.pin_golden(runs[0])
        report = apply_retention(st_, 1)
        assert report.deleted_runs == [runs[1]]
        assert report.kept_runs == 2
        assert report.gc is not None and report.gc.conserved
        assert st_.index.runs("w") == [runs[0], runs[2]]


class TestStoreFuzz:
    def test_manifest_fuzz_is_structured(self, tmp_path):
        st_ = TraceStore(str(tmp_path))
        put = st_.put(_trace_bytes(), "w")
        report = run_store_fuzz(st_, put.run_id, n_random=150)
        assert report.ok, report.failures[:5]
        assert report.total > 100
        # the dangling-ref corpus entry must surface as the dedicated
        # subclass, not a bare FileNotFoundError
        assert report.by_error.get("MissingObjectError", 0) >= 1


class TestStoreCLI:
    def _trace_file(self, tmp_path, name: str, seed: int) -> str:
        path = str(tmp_path / name)
        with open(path, "wb") as fh:
            fh.write(_trace_bytes(seed=seed))
        return path

    def test_cli_verbs_end_to_end(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        t1 = self._trace_file(tmp_path, "t1.pilgrim", 1)
        t2 = self._trace_file(tmp_path, "t2.pilgrim", 2)
        assert cli.main(["store", "put", t1, "-w", "w",
                         "--root", root]) == 0
        assert cli.main(["store", "put", t2, "-w", "w",
                         "--root", root]) == 0
        assert cli.main(["store", "put", t1, "-w", "w",
                         "--root", root]) == 0
        out = str(tmp_path / "back.pilgrim")
        assert cli.main(["store", "get", "r000001", "--root", root,
                         "-o", out]) == 0
        assert open(out, "rb").read() == open(t1, "rb").read()
        assert cli.main(["store", "ls", "--root", root]) == 0
        assert "r000003" in capsys.readouterr().out
        # GNU-diff exit convention: 0 identical, 1 drifted
        assert cli.main(["store", "diff", "r000001", "r000003",
                         "--root", root]) == 0
        assert cli.main(["store", "diff", "r000001", "r000002",
                         "--root", root]) == 1
        assert cli.main(["store", "pin", "r000001", "--root", root]) == 0
        assert cli.main(["store", "drift", "w", "--root", root]) == 1
        assert cli.main(["store", "stats", "--root", root]) == 0
        assert "dedup ratio" in capsys.readouterr().out
        assert cli.main(["store", "gc", "--root", root]) == 0
        assert cli.main(["store", "gc", "--keep-last", "1",
                         "--root", root]) == 0
        # golden + newest survive retention and still round-trip
        assert cli.main(["store", "get", "w@golden", "--root", root,
                         "-o", out]) == 0
        assert open(out, "rb").read() == open(t1, "rb").read()

    def test_cli_structured_error_diagnosis(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert cli.main(["store", "get", "r000099",
                         "--root", root]) == 1
        err = capsys.readouterr().err
        assert "StoreFormatError" in err

    def test_cli_store_fuzz(self, capsys):
        assert cli.main(["fuzz", "osu_latency", "-n", "2", "--store",
                         "--mutations", "60"]) == 0
        assert "structured errors" in capsys.readouterr().out


class TestIngestHook:
    def test_served_folds_are_archived_byte_identical(self, tmp_path):
        root = str(tmp_path / "ingest-store")
        with api.serve(store_dir=root) as srv:
            res = api.push("osu_latency", 2, port=srv.port,
                           tenant="teamA", seed=1, chunk_calls=32)
            res2 = api.push("osu_latency", 2, port=srv.port,
                            tenant="teamA", seed=1, chunk_calls=32)
            assert srv.server.aggregator.stored_runs["teamA"] == "r000002"
        st_ = TraceStore(root)
        runs = st_.ls("teamA")
        assert [r.tenant for r in runs] == ["teamA", "teamA"]
        assert st_.get(runs[0].run_id) == res.trace_bytes
        assert st_.get(runs[1].run_id) == res2.trace_bytes
        assert runs[1].reused_fraction == 1.0
        assert st_.dedup_stats("teamA").ratio >= 2.0

    def test_archival_failure_never_loses_the_result(self, tmp_path):
        # ".teamB" is a legal ingest tenant but not a legal store
        # workload: the fold must still complete and RESULT must still
        # reach the client; the store just counts the rejection
        reg = MetricsRegistry()
        root = str(tmp_path / "ingest-store")
        with api.serve(store_dir=root, metrics=reg) as srv:
            res = api.push("osu_latency", 2, port=srv.port,
                           tenant=".teamB", seed=1, chunk_calls=32)
        assert res.trace_bytes
        assert TraceStore(root).ls() == []
        assert reg.snapshot()["counters"]["ingest.store_errors"] == 1


class TestLayering:
    def test_store_layering_is_upward_only(self):
        """Each store layer may import only layers strictly below it
        (and repro.core / repro.obs); nothing in the store may import
        repro.ingest — the ingest aggregator persists *into* the store,
        so the store sits below it (DESIGN.md §8)."""
        import ast

        import repro.store as store_pkg
        pkg_dir = os.path.dirname(store_pkg.__file__)
        order = {"objects": 1, "manifest": 2, "index": 3,
                 "repository": 4, "maintenance": 5, "fuzz": 5}
        for mod, level in order.items():
            tree = ast.parse(
                open(os.path.join(pkg_dir, mod + ".py")).read())
            for node in ast.walk(tree):
                names = []
                if isinstance(node, ast.ImportFrom) and node.module:
                    names.append(node.module)
                elif isinstance(node, ast.ImportFrom) and node.level:
                    names.extend(a.name for a in node.names)
                elif isinstance(node, ast.Import):
                    names.extend(a.name for a in node.names)
                for name in names:
                    assert "ingest" not in name, (
                        f"store/{mod} imports {name}: the store must "
                        f"stay below repro.ingest")
                    leaf = name.split(".")[-1]
                    if leaf in order and leaf != mod:
                        assert order[leaf] < level, (
                            f"{mod} (layer {level}) imports {leaf} "
                            f"(layer {order[leaf]}): dependencies must "
                            f"flow upward only")

    def test_facade_exports(self):
        import repro
        assert callable(repro.store)
        assert "store" in repro.api.__all__
        assert isinstance(api.store.__module__, str)


class TestHypothesisProperties:
    @settings(max_examples=10, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([2, 4]),
           seed=st.integers(0, 2**16),
           lossy=st.booleans())
    def test_put_get_is_byte_identical(self, tmp_path_factory, family,
                                       nprocs, seed, lossy):
        blob = _trace_bytes(family, nprocs, seed, lossy=lossy)
        st_ = TraceStore(str(tmp_path_factory.mktemp("store")))
        assert st_.get(st_.put(blob, family).run_id) == blob

    @settings(max_examples=6, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([2, 4]),
           seeds=st.lists(st.integers(0, 50), min_size=2, max_size=4))
    def test_n_runs_store_sublinearly(self, tmp_path_factory, family,
                                      nprocs, seeds):
        # guarantee at least one exact re-run, the dedup sweet spot
        seeds = seeds + [seeds[0]]
        st_ = TraceStore(str(tmp_path_factory.mktemp("store")))
        total = 0
        for seed in seeds:
            blob = _trace_bytes(family, nprocs, seed)
            total += len(blob)
            st_.put(blob, family)
        stats = st_.dedup_stats(family)
        assert stats.logical_bytes == total
        assert stats.stored_bytes < total  # strictly sublinear
        assert stats.ratio > 1.0
