"""Tests for the Recorder-style related-work baseline (paper §5)."""

import pytest

from repro.core import PilgrimTracer
from repro.mpisim import SimMPI, datatypes as dt
from repro.scalatrace import RecorderTracer, ScalaTraceTracer
from repro.workloads import make


def run(tracer_cls, name, P, **kw):
    tracer = tracer_cls()
    make(name, P, **kw).run(seed=1, tracer=tracer)
    return tracer.result


class TestWindowCompression:
    def test_repeats_become_backrefs(self):
        def prog(m):
            m.malloc(64)
            for _ in range(30):
                yield from m.barrier()

        tracer = RecorderTracer()
        SimMPI(2, seed=0, tracer=tracer).run(prog)
        # 30 identical barriers: 1 literal + 29 back-references per rank
        tokens = tracer._tokens[0]
        refs = [t for t in tokens if t[0] == "ref"]
        assert len(refs) >= 29
        assert all(d == 1 for _k, d in refs if _k == "ref")

    def test_long_range_repetition_missed(self):
        """The paper's critique: repeats beyond the window are literals."""
        from repro.mpisim import constants as C

        def prog(m):
            buf = m.malloc(64)
            # two identical phases separated by > window distinct calls
            yield from m.barrier()
            for t in range(200):
                yield from m.send(buf, t + 1, dt.BYTE, dest=C.PROC_NULL,
                                  tag=1)
            yield from m.barrier()

        tracer = RecorderTracer(window=64)
        SimMPI(1, seed=0, tracer=tracer).run(prog)
        barrier_tokens = [t for t in tracer._tokens[0]
                          if t[0] == "lit" and t[1][0] ==
                          _fid("MPI_Barrier")]
        assert len(barrier_tokens) == 2  # the second repeat was NOT found

    def test_tokens_linear_in_iterations(self):
        r1 = run(RecorderTracer, "stencil2d", 9, iters=10)
        r2 = run(RecorderTracer, "stencil2d", 9, iters=40)
        # per-occurrence backrefs: tokens scale with the call count
        assert sum(r2.per_rank_tokens) > 3 * sum(r1.per_rank_tokens)
        # ... unlike Pilgrim, whose size stays flat
        p1 = run(PilgrimTracer, "stencil2d", 9, iters=10)
        p2 = run(PilgrimTracer, "stencil2d", 9, iters=40)
        assert p2.trace_size - p1.trace_size < 64


class TestRelatedWorkOrdering:
    @pytest.mark.parametrize("name,P,kw", [
        ("stencil2d", 16, {"iters": 15}),
        ("npb_lu", 16, {"iters": 8}),
    ])
    def test_pilgrim_smallest_recorder_largest(self, name, P, kw):
        pil = run(PilgrimTracer, name, P, **kw).trace_size
        sca = run(ScalaTraceTracer, name, P, **kw).trace_size
        rec = run(RecorderTracer, name, P, **kw).trace_size
        assert pil < sca < rec

    def test_recorder_linear_in_procs(self):
        r16 = run(RecorderTracer, "stencil2d", 16, iters=15).trace_size
        r64 = run(RecorderTracer, "stencil2d", 64, iters=15).trace_size
        assert r64 > 3 * r16  # no inter-process compression


def _fid(name):
    from repro.mpisim import funcs as F
    return F.FUNCS[name].fid
