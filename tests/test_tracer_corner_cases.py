"""Tracer corner cases the paper calls out explicitly (§3.3):
non-blocking communicator creation, inter-communicators, persistent
requests, derived datatypes in flight, device memory, stack buffers."""


from repro.core import PilgrimTracer, TraceDecoder, verify_roundtrip
from repro.core.encoder import PTR_DEVICE, PTR_HEAP, PTR_STACK
from repro.mpisim import SimMPI, constants as C, datatypes as dt, ops


def traced(nprocs, prog, seed=1, **kw):
    tracer = PilgrimTracer(keep_raw=True, **kw)
    SimMPI(nprocs, seed=seed, tracer=tracer).run(prog)
    return tracer


class TestCommIdupTracing:
    def test_idup_roundtrip_and_id_agreement(self):
        def prog(m):
            req = m.comm_idup()
            yield from m.allreduce(0, 0, 1, dt.INT, ops.SUM, data=1)
            yield from m.wait(req)
            newcomm = req.value
            yield from m.barrier(newcomm)
            yield from m.barrier(newcomm)

        tracer = traced(4, prog)
        assert verify_roundtrip(tracer).ok
        # the barrier on the idup'ed comm must use ONE symbolic comm id
        # on every rank (assigned at Wait time, §3.3.1)
        from repro.mpisim import funcs as F
        fid = F.FUNCS["MPI_Barrier"].fid
        ids = set()
        for r in range(4):
            sigs = [tracer.csts[r].sigs[t] for t in tracer.raw_terms[r]]
            ids.update(s[1] for s in sigs if s[0] == fid and s[1] != 0)
        assert len(ids) == 1

    def test_idup_produces_identical_grammars(self):
        def prog(m):
            req = m.comm_idup()
            yield from m.wait(req)
            for _ in range(5):
                yield from m.barrier(req.value)

        tracer = traced(8, prog)
        assert tracer.result.n_unique_grammars == 1


class TestIntercommTracing:
    def test_intercomm_create_merge_roundtrip(self):
        def prog(m):
            half = yield from m.comm_split(color=m.rank // 2, key=m.rank)
            remote_leader = 2 if m.rank < 2 else 0
            ic = yield from m.intercomm_create(half, 0, m.world,
                                               remote_leader, tag=11)
            merged = yield from m.intercomm_merge(ic, high=(m.rank >= 2))
            yield from m.barrier(merged)
            buf = m.malloc(16)
            peer = m.rank % 2
            yield from m.sendrecv(buf, 1, dt.INT, peer, 1, buf, 1, dt.INT,
                                  peer, 1, comm=ic)

        tracer = traced(4, prog)
        assert verify_roundtrip(tracer).ok


class TestPersistentRequestTracing:
    def test_persistent_ids_stable_across_rounds(self):
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(64)
            sreq = m.send_init(buf, 1, dt.DOUBLE, dest=peer, tag=5)
            rreq = m.recv_init(buf + 32, 1, dt.DOUBLE, source=peer, tag=5)
            for _ in range(6):
                m.startall([sreq, rreq])
                yield from m.waitall([sreq, rreq])
            m.request_free(sreq)
            m.request_free(rreq)

        tracer = traced(2, prog)
        assert verify_roundtrip(tracer).ok
        # the Start/Waitall loop uses the SAME persistent-request ids each
        # round, so six rounds collapse into a compressed loop: signature
        # count is independent of the round count
        longer = traced(2, _persistent_prog(20))
        assert longer.result.n_signatures == tracer.result.n_signatures

    def test_persistent_not_released_at_wait(self):
        def prog(m):
            buf = m.malloc(8)
            req = m.send_init(buf, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            m.start(req)
            yield from m.wait(req)
            m.start(req)       # restartable: wait must not have freed it
            yield from m.wait(req)
            m.request_free(req)

        tracer = traced(1, prog)
        assert verify_roundtrip(tracer).ok


def _persistent_prog(rounds):
    def prog(m):
        peer = 1 - m.rank
        buf = m.malloc(64)
        sreq = m.send_init(buf, 1, dt.DOUBLE, dest=peer, tag=5)
        rreq = m.recv_init(buf + 32, 1, dt.DOUBLE, source=peer, tag=5)
        for _ in range(rounds):
            m.startall([sreq, rreq])
            yield from m.waitall([sreq, rreq])
        m.request_free(sreq)
        m.request_free(rreq)
    return prog


class TestDatatypeTracing:
    def test_type_lifecycle_ids_recycled(self):
        def prog(m):
            buf = m.malloc(4096)
            for _ in range(4):
                t = m.type_vector(4, 2, 8, dt.DOUBLE)
                m.type_commit(t)
                yield from m.send(buf, 1, t, dest=C.PROC_NULL, tag=1)
                m.type_free(t)

        tracer = traced(2, prog)
        assert verify_roundtrip(tracer).ok
        # create/use/free loops reuse symbolic id 0: the four iterations
        # produce ONE set of signatures
        from repro.mpisim import funcs as F
        fid = F.FUNCS["MPI_Type_vector"].fid
        sigs = {tracer.csts[0].sigs[t] for t in tracer.raw_terms[0]
                if tracer.csts[0].sigs[t][0] == fid}
        assert len(sigs) == 1

    def test_nested_derived_types(self):
        def prog(m):
            inner = m.type_contiguous(3, dt.INT)
            m.type_commit(inner)
            outer = m.type_indexed([1, 2], [0, 4], inner)
            m.type_commit(outer)
            buf = m.malloc(4096)
            yield from m.send(buf, 1, outer, dest=C.PROC_NULL, tag=1)
            m.type_free(outer)
            m.type_free(inner)

        tracer = traced(1, prog)
        assert verify_roundtrip(tracer).ok


class TestMemoryTracing:
    def test_realloc_and_device_pointers(self):
        def prog(m):
            a = m.malloc(64)
            a = m.realloc(a, 256)
            d = m.cuda_malloc(1024, device=1)
            yield from m.send(a + 16, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            yield from m.send(d + 8, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=2)
            m.cuda_free(d)
            m.free(a)

        tracer = traced(1, prog)
        assert verify_roundtrip(tracer).ok
        from repro.mpisim import funcs as F
        fid = F.FUNCS["MPI_Send"].fid
        sends = [tracer.csts[0].sigs[t] for t in tracer.raw_terms[0]
                 if tracer.csts[0].sigs[t][0] == fid]
        assert sends[0][1][0] == PTR_HEAP
        assert sends[0][1][2] == 16            # displacement preserved
        assert sends[1][1][0] == PTR_DEVICE
        assert sends[1][1][1] == 1             # device ordinal preserved

    def test_stack_buffer_fallback(self):
        def prog(m):
            # an address never malloc'ed: the paper's stack-variable case
            yield from m.send(0x100, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)
            yield from m.send(0x100, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)

        tracer = traced(1, prog)
        from repro.mpisim import funcs as F
        fid = F.FUNCS["MPI_Send"].fid
        sends = [tracer.csts[0].sigs[t] for t in tracer.raw_terms[0]
                 if tracer.csts[0].sigs[t][0] == fid]
        assert sends[0][1] == (PTR_STACK, 0)
        assert len({s[1] for s in sends}) == 1  # stable first-touch id


class TestStatusIgnore:
    def test_status_ignore_recorded_as_such(self):
        def prog(m):
            buf = m.malloc(8)
            if m.rank == 0:
                yield from m.send(buf, 1, dt.DOUBLE, dest=1, tag=1)
            else:
                _, st = yield from m.recv(buf, 1, dt.DOUBLE, source=0,
                                          tag=1, status=None)
                assert st is None

        tracer = traced(2, prog)
        assert verify_roundtrip(tracer).ok
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        recv = next(c for c in dec.rank_calls(1) if c.fname == "MPI_Recv")
        assert recv.params["status"] is None  # STATUS_IGNORE preserved


class TestTimingModes:
    def test_per_function_base_end_to_end(self):
        def prog(m):
            buf = m.malloc(8)
            for _ in range(10):
                yield from m.allreduce(buf, buf, 1, dt.DOUBLE, ops.SUM)
                yield from m.barrier()

        t1 = traced(4, prog, timing_mode="lossy", timing_base=1.2)
        t2 = traced(4, prog, timing_mode="lossy", timing_base=1.2,
                    per_function_base={"MPI_Barrier": 3.0})
        assert verify_roundtrip(t1).ok and verify_roundtrip(t2).ok
        # a coarser per-function base cannot enlarge the duration grammar
        s1 = t1.result.section_sizes()["timing_duration"]
        s2 = t2.result.section_sizes()["timing_duration"]
        assert s2 <= s1 + 32
