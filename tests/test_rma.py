"""One-sided communication (RMA) tests: windows, epochs, locks, data
semantics, tracing, and replay."""

import pytest

from conftest import run_program
from repro.core import PilgrimTracer, verify_roundtrip
from repro.mpisim import DeadlockError, SimMPI, datatypes as dt, ops
from repro.mpisim.errors import RankProgramError
from repro.mpisim.win import LOCK_EXCLUSIVE, LOCK_SHARED
from repro.replay import replay_trace, structurally_equal


class TestWindowLifecycle:
    def test_create_and_free(self):
        def prog(m):
            buf = m.malloc(256)
            win = yield from m.win_create(buf, 256, 8)
            assert win.sizes[m.comm_rank()] == 256
            yield from m.win_free(win)
        run_program(4, prog)

    def test_allocate(self):
        def prog(m):
            base, win = yield from m.win_allocate(128)
            assert base > 0
            yield from m.win_free(win)
        run_program(2, prog)

    def test_freed_window_unusable(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            yield from m.win_free(win)
            yield from m.win_fence(win)
        with pytest.raises(RankProgramError):
            run_program(2, prog)

    def test_bad_args_rejected(self):
        def prog(m):
            buf = m.malloc(64)
            yield from m.win_create(buf, -1)
        with pytest.raises(RankProgramError):
            run_program(1, prog)

    def test_set_name(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            m.win_set_name(win, "halo-window")
            assert win.name == "halo-window"
            yield from m.win_free(win)
        run_program(2, prog)


class TestActiveTarget:
    def test_put_visible_after_fence(self):
        def prog(m):
            n = m.comm_size()
            me = m.comm_rank()
            buf = m.malloc(256)
            win = yield from m.win_create(buf, 256, 8)
            yield from m.win_fence(win)
            peer = (me + 1) % n
            m.put(buf, 1, dt.DOUBLE, peer, 0, 1, dt.DOUBLE, win, data=me)
            # not visible before the closing fence
            assert m.get(buf, 1, dt.DOUBLE, peer, 0, 1, dt.DOUBLE,
                         win) is None
            yield from m.win_fence(win)
            got = m.get(buf, 1, dt.DOUBLE, me, 0, 1, dt.DOUBLE, win)
            assert got == (me - 1) % n
            yield from m.win_free(win)
        run_program(4, prog)

    def test_accumulate_sums_contributions(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            yield from m.win_fence(win)
            # everyone accumulates into rank 0's slot 0
            m.accumulate(buf, 1, dt.INT, 0, 0, 1, dt.INT, ops.SUM, win,
                         data=m.rank + 1)
            yield from m.win_fence(win)
            if m.comm_rank() == 0:
                total = m.get(buf, 1, dt.INT, 0, 0, 1, dt.INT, win)
                assert total == sum(range(1, m.comm_size() + 1))
            yield from m.win_free(win)
        run_program(4, prog)

    def test_partial_fence_deadlocks(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            if m.rank != 1:
                yield from m.win_fence(win)
        with pytest.raises(DeadlockError):
            run_program(3, prog)

    def test_put_bad_target_rejected(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            m.put(buf, 1, dt.INT, 9, 0, 1, dt.INT, win)
        with pytest.raises(RankProgramError):
            run_program(2, prog)


class TestPassiveTarget:
    def test_lock_put_unlock_visible(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            if m.rank == 0:
                yield from m.win_lock(LOCK_EXCLUSIVE, 1, win)
                m.put(buf, 1, dt.INT, 1, 0, 1, dt.INT, win, data="x")
                m.win_unlock(1, win)
                yield from m.barrier()
            else:
                yield from m.barrier()
                if m.rank == 1:
                    got = m.get(buf, 1, dt.INT, 1, 0, 1, dt.INT, win)
                    assert got == "x"
            yield from m.win_free(win)
        run_program(3, prog)

    def test_exclusive_lock_blocks_second_locker(self):
        order = []

        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            if m.rank == 0:
                yield from m.win_lock(LOCK_EXCLUSIVE, 2, win)
                order.append(("acquire", 0))
                # ssend blocks (holding the lock) until rank 1's recv —
                # which rank 1 posts BEFORE its own lock attempt
                yield from m.ssend(buf, 1, dt.INT, dest=1, tag=1)
                m.win_unlock(2, win)
                order.append(("release", 0))
            elif m.rank == 1:
                _ = yield from m.recv(buf, 1, dt.INT, source=0, tag=1)
                yield from m.win_lock(LOCK_EXCLUSIVE, 2, win)
                order.append(("acquire", 1))
                m.win_unlock(2, win)
                order.append(("release", 1))
            yield from m.win_free(win)

        run_program(3, prog)
        assert order.index(("acquire", 0)) < order.index(("acquire", 1))
        assert order.index(("release", 0)) < order.index(("acquire", 1))

    def test_shared_locks_coexist(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            yield from m.win_lock(LOCK_SHARED, 0, win)
            yield from m.barrier()  # everyone holds the shared lock at once
            m.win_unlock(0, win)
            yield from m.win_free(win)
        run_program(4, prog)

    def test_unlock_without_lock_rejected(self):
        def prog(m):
            buf = m.malloc(64)
            win = yield from m.win_create(buf, 64)
            m.win_unlock(0, win)
            yield
        with pytest.raises(RankProgramError):
            run_program(2, prog)


class TestRMATracing:
    def _rma_prog(self, m):
        n = m.comm_size()
        me = m.comm_rank()
        buf = m.malloc(512)
        win = yield from m.win_create(buf, 512, 8)
        for _ in range(5):
            yield from m.win_fence(win)
            peer = (me + 1) % n
            m.put(buf, 4, dt.DOUBLE, peer, 0, 4, dt.DOUBLE, win)
            m.accumulate(buf, 1, dt.DOUBLE, peer, 32, 1, dt.DOUBLE,
                         ops.SUM, win)
            yield from m.win_fence(win)
            m.get(buf, 4, dt.DOUBLE, peer, 0, 4, dt.DOUBLE, win)
        yield from m.win_free(win)

    def test_roundtrip_lossless(self):
        tracer = PilgrimTracer(keep_raw=True)
        SimMPI(4, seed=1, tracer=tracer).run(self._rma_prog)
        assert verify_roundtrip(tracer).ok

    def test_ring_rma_grammars_collapse(self):
        """Relative target ranks: an RMA ring produces ONE grammar class
        on a periodic ring of any size."""
        tracer = PilgrimTracer()
        SimMPI(8, seed=1, tracer=tracer).run(self._rma_prog)
        t16 = PilgrimTracer()
        SimMPI(16, seed=1, tracer=t16).run(self._rma_prog)
        # two classes on a periodic ring: interior (+1) and the wrapping
        # last rank — constant at any ring size
        assert tracer.result.n_unique_grammars == \
            t16.result.n_unique_grammars == 2
        assert abs(t16.result.trace_size - tracer.result.trace_size) < 32

    def test_window_ids_agree_across_ranks(self):
        tracer = PilgrimTracer(keep_raw=True)
        SimMPI(4, seed=1, tracer=tracer).run(self._rma_prog)
        from repro.mpisim import funcs as F
        fid = F.FUNCS["MPI_Win_fence"].fid
        ids = set()
        for r in range(4):
            sigs = [tracer.csts[r].sigs[t] for t in tracer.raw_terms[r]]
            ids.update(s[2] for s in sigs if s[0] == fid)
        assert ids == {0}  # one window, same symbolic id everywhere

    def test_scalatrace_does_not_record_rma(self):
        from repro.scalatrace import ScalaTraceTracer
        st = ScalaTraceTracer()
        SimMPI(4, seed=1, tracer=st).run(self._rma_prog)
        assert st.result.recorded_calls < st.result.total_calls

    def test_replay_fixed_point(self):
        tracer = PilgrimTracer()
        SimMPI(4, seed=1, tracer=tracer).run(self._rma_prog)
        blob = tracer.result.trace_bytes
        retrace = PilgrimTracer()
        replay_trace(blob, seed=9, tracer=retrace)
        assert structurally_equal(blob, retrace.result.trace_bytes)

    def test_replay_fixed_point_win_allocate(self):
        def prog(m):
            base, win = yield from m.win_allocate(256, 8)
            yield from m.win_fence(win)
            peer = (m.comm_rank() + 1) % m.comm_size()
            m.put(base, 1, dt.DOUBLE, peer, 0, 1, dt.DOUBLE, win)
            yield from m.win_fence(win)
            yield from m.win_free(win)

        tracer = PilgrimTracer()
        SimMPI(4, seed=1, tracer=tracer).run(prog)
        blob = tracer.result.trace_bytes
        retrace = PilgrimTracer()
        replay_trace(blob, seed=2, tracer=retrace)
        assert structurally_equal(blob, retrace.result.trace_bytes)
