"""Resilience subsystem tests: fault plans, the injector, retry
supervision, the chaos recovery property, partial-trace salvage, and
degraded-mode (watermark) tracing."""

import pytest

import repro
from repro.core import (MissingRankError, PilgrimTracer, TraceDecoder,
                        TracerOptions, TracePipeline, corpus_mutations,
                        run_fuzz)
from repro.resilience import (FOREVER, FaultInjector, FaultPlan, FaultSpec,
                              InjectedOSError, RetryPolicy, SalvageReport,
                              SupervisorStats, TaskSupervisor,
                              WorkerDiedError, arm)
from repro.resilience.chaos import run_chaos_case, run_fault_matrix
from repro.workloads import make

WORKLOAD = "stencil2d"
NP = 4
PARAMS = {"iters": 3}


def trace(**kw):
    return repro.trace(WORKLOAD, NP, params=dict(PARAMS), **kw)


@pytest.fixture(scope="module")
def reference():
    return trace()


# -- fault plans -------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "kill@merge*2;corrupt@shard.freeze:rank=1;"
            "oserror@serialize*forever", seed=7)
        assert plan.seed == 7
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["kill", "corrupt", "oserror"]
        assert plan.specs[0].times == 2
        assert plan.specs[1].rank == 1
        assert plan.specs[2].times == FOREVER

    def test_parse_rejects_garbage(self):
        for bad in ("explode@merge", "kill@nowhere", "kill@merge*0",
                    "kill@merge:p=2", "kill@merge:bogus=1"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_sched_kinds_only_on_sched_site(self):
        with pytest.raises(ValueError):
            FaultSpec("delay", "merge")
        with pytest.raises(ValueError):
            FaultSpec("kill", "sched")

    def test_sched_faults_must_be_bounded(self):
        # an unbounded delay could starve the last runnable rank forever
        with pytest.raises(ValueError):
            FaultSpec("delay", "sched", times=FOREVER)

    def test_random_plans_are_deterministic(self):
        a = FaultPlan.random(42, nprocs=8)
        b = FaultPlan.random(42, nprocs=8)
        assert a == b
        assert 1 <= len(a.specs) <= 3

    def test_empty_plan_arms_to_none(self):
        assert arm(None) is None
        assert arm(FaultPlan(())) is None
        inj = arm(FaultPlan.parse("kill@merge"))
        assert isinstance(inj, FaultInjector)
        assert arm(inj) is inj  # idempotent


class TestFaultInjector:
    def test_times_budget(self):
        inj = arm(FaultPlan.parse("oserror@merge*2"))
        with pytest.raises(InjectedOSError):
            inj.raise_failure("merge.level.0")
        with pytest.raises(InjectedOSError):
            inj.raise_failure("merge.level.1")
        inj.raise_failure("merge.level.2")  # budget spent: no-op
        assert len(inj.fired) == 2
        assert inj.exhausted

    def test_rank_targeting(self):
        inj = arm(FaultPlan.parse("oserror@shard.freeze:rank=2"))
        inj.raise_failure("shard.freeze", 0)  # wrong rank: no-op
        with pytest.raises(InjectedOSError):
            inj.raise_failure("shard.freeze", 2)

    def test_corrupt_bytes_preserves_header(self):
        inj = arm(FaultPlan.parse("corrupt@serialize;truncate@serialize",
                                  seed=5))
        data = bytes(range(200))
        damaged = inj.corrupt_bytes("serialize", data)
        assert damaged is not None and damaged != data
        assert damaged[:16] == data[:16]
        truncated = inj.corrupt_bytes("serialize", data)
        assert truncated is not None and len(truncated) >= 16
        assert inj.corrupt_bytes("serialize", data) is None  # spent

    def test_wants_sched(self):
        assert arm(FaultPlan.parse("delay@sched*3")).wants_sched
        assert not arm(FaultPlan.parse("kill@merge")).wants_sched


# -- retry supervision -------------------------------------------------------------


class TestSupervisor:
    def test_retries_then_succeeds(self):
        sup = TaskSupervisor(RetryPolicy(max_retries=3, backoff_base=0.0,
                                         backoff_cap=0.0),
                             (OSError,), sleep=lambda s: None)
        calls = []

        def thunk(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise OSError("transient")
            return "done"

        assert sup.run(thunk, site="merge.level.0") == "done"
        assert calls == [0, 1, 2]
        assert sup.stats.retries == 2
        assert not sup.broken

    def test_exhaustion_calls_fallback(self):
        sup = TaskSupervisor(RetryPolicy(max_retries=1, backoff_base=0.0,
                                         backoff_cap=0.0),
                             (OSError,), sleep=lambda s: None)

        def thunk(attempt):
            raise OSError("permanent")

        out = sup.run(thunk, site="shard.freeze",
                      on_exhausted=lambda exc: ("fallback", str(exc)))
        assert out == ("fallback", "permanent")
        assert sup.stats.gave_up == 1

    def test_exhaustion_reraises_without_fallback(self):
        sup = TaskSupervisor(RetryPolicy(max_retries=0),
                             (OSError,), sleep=lambda s: None)
        with pytest.raises(OSError):
            sup.run(lambda attempt: (_ for _ in ()).throw(OSError("x")),
                    site="serialize")

    def test_breaker_trips_on_consecutive_worker_deaths(self):
        sup = TaskSupervisor(
            RetryPolicy(max_retries=5, backoff_base=0.0, backoff_cap=0.0,
                        breaker_threshold=2),
            (WorkerDiedError,), sleep=lambda s: None)
        deaths = iter([True, True, False, False])

        def thunk(attempt):
            if next(deaths):
                raise WorkerDiedError("worker died")
            return "ok"

        assert sup.run(thunk, site="merge.level.0") == "ok"
        assert sup.broken  # 2 consecutive deaths >= threshold
        assert sup.stats.worker_deaths == 2
        assert sup.stats.breaker_trips == 1

    def test_backoff_is_bounded_and_seeded(self):
        pol = RetryPolicy(backoff_base=0.01, backoff_cap=0.05, seed=3)
        a = TaskSupervisor(pol, (), sleep=lambda s: None)
        b = TaskSupervisor(pol, (), sleep=lambda s: None)
        da = [a.backoff(i) for i in range(6)]
        db = [b.backoff(i) for i in range(6)]
        assert da == db  # same seed, same jitter
        assert all(0 <= d <= 0.05 for d in da)

    def test_unretryable_error_escapes(self):
        sup = TaskSupervisor(RetryPolicy(max_retries=3),
                             (OSError,), sleep=lambda s: None)
        with pytest.raises(KeyError):
            sup.run(lambda attempt: (_ for _ in ()).throw(KeyError("x")),
                    site="merge.level.0")


# -- salvage report ----------------------------------------------------------------


class TestSalvageReport:
    def test_lose_rank_dedupes_and_keeps_max(self):
        rep = SalvageReport()
        rep.lose_rank(3, 10, "first")
        rep.lose_rank(3, 25, "second")
        assert rep.lost_ranks == [3]
        assert rep.call_deficit == 25

    def test_merge_and_survivors(self):
        a = SalvageReport()
        a.lose_rank(0, 5)
        b = SalvageReport()
        b.lose_rank(2, 7)
        b.lose_section("timing")
        a.merge(b)
        assert a.lost_ranks == [0, 2]
        assert a.call_deficit == 12
        assert a.lost_sections == ["timing"]
        assert a.surviving_ranks(4) == [1, 3]
        assert a.degraded

    def test_summary_renders_spans(self):
        rep = SalvageReport()
        for r in (0, 1, 2, 5):
            rep.lose_rank(r, 1)
        assert "0-2" in rep.summary() and "5" in rep.summary()

    def test_empty_is_not_degraded(self):
        rep = SalvageReport()
        assert not rep.degraded
        assert rep.call_deficit == 0


# -- the chaos property ------------------------------------------------------------


class TestChaosProperty:
    """Any seeded fault plan must end in byte-identical recovery OR a
    degraded result whose salvage report conserves calls — never an
    unhandled exception (the PR's headline property)."""

    @pytest.mark.parametrize("plan_seed", range(100, 112))
    def test_random_plan_recovers_or_degrades(self, plan_seed):
        plan = FaultPlan.random(plan_seed, nprocs=NP)
        case = run_chaos_case(WORKLOAD, NP, plan, params=dict(PARAMS))
        assert case.ok, case.describe()

    def test_matrix_helper(self):
        cases = run_fault_matrix([WORKLOAD], nprocs=NP, n_plans=4,
                                 params=dict(PARAMS))
        assert len(cases) == 4
        assert all(c.ok for c in cases)

    @pytest.mark.parametrize("plan", [
        "oserror@shard.freeze*3",
        "memoryerror@merge*2",
        "corrupt@serialize",
        "truncate@shard.freeze:rank=1",
        "kill@merge;stall@merge",
        "delay@sched*6;drop@sched*2",
    ])
    def test_transient_faults_recover_byte_identical(self, plan, reference):
        r = trace(fault_plan=plan)
        assert r.fired_faults, "plan never fired"
        assert not r.degraded
        assert r.trace_bytes == reference.trace_bytes

    def test_injection_points_are_noops_without_plan(self, reference):
        # a second fault-free run is byte-identical: arming machinery
        # does not perturb the pipeline
        assert trace().trace_bytes == reference.trace_bytes

    def test_permanent_kill_degrades_with_exact_accounting(self, reference):
        r = trace(fault_plan="kill@shard.freeze*forever:rank=2")
        assert r.degraded
        assert r.salvage is not None
        assert r.salvage.lost_ranks == [2]
        ref_dec = TraceDecoder.from_bytes(reference.trace_bytes)
        assert r.salvage.call_deficit == ref_dec.call_count(2)
        # the surviving ranks still decode to the reference streams
        # (compare signatures, not terminal ids — dropping a rank's shard
        # renumbers the merged CST)
        dec = TraceDecoder.from_bytes(r.trace_bytes, salvage=True)
        for rank in (0, 1, 3):
            got = [dec.trace.cst.sigs[t] for t in dec.rank_terminals(rank)]
            ref = [ref_dec.trace.cst.sigs[t]
                   for t in ref_dec.rank_terminals(rank)]
            assert got == ref

    def test_degraded_verify_passes_with_allow(self):
        rep = repro.verify(WORKLOAD, NP, **PARAMS,
                           fault_plan="kill@shard.freeze*forever:rank=2",
                           allow_degraded=True)
        assert rep.ok, rep.mismatches
        assert rep.checks["salvage_accounting"]

    def test_degraded_verify_fails_strict(self):
        rep = repro.verify(WORKLOAD, NP, **PARAMS,
                           fault_plan="kill@shard.freeze*forever:rank=2")
        assert not rep.ok
        assert rep.checks.get("degraded") is False

    def test_parallel_merge_recovers(self, reference):
        r = trace(fault_plan="kill@merge*2",
                  options=TracerOptions(jobs=2))
        assert not r.degraded
        assert r.trace_bytes == reference.trace_bytes

    def test_retry_counters_reach_metrics(self):
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
        r = trace(fault_plan="oserror@merge*2",
                  options=TracerOptions(metrics=metrics))
        assert not r.degraded
        counters = metrics.snapshot()["counters"]
        assert counters.get("pipeline.retries", 0) >= 2


# -- salvage decode ----------------------------------------------------------------


class TestSalvageDecode:
    def test_corpus_raises_missing_rank(self, reference):
        blob = reference.trace_bytes
        mutations = dict(corpus_mutations(blob))
        mut = mutations[
            "header declares one more rank than the rank map covers"]
        dec = TraceDecoder.from_bytes(mut, salvage=True)
        assert dec.salvage is not None
        assert dec.salvage.lost_ranks == [NP]
        with pytest.raises(MissingRankError) as exc:
            dec.rank_terminals(NP)
        assert exc.value.rank == NP
        with pytest.raises(IndexError):
            dec.rank_terminals(NP + 1)  # out of range: caller bug

    def test_truncated_blob_salvages_what_parses(self, reference):
        blob = reference.trace_bytes
        # cut inside the CFG section: the CST survives, everything that
        # depends on the CFG is reported lost
        dec = TraceDecoder.from_bytes(blob[:len(blob) - 10], salvage=True)
        assert dec.salvage is not None
        assert dec.salvage.degraded

    def test_salvage_fuzz_never_crashes(self, reference):
        report = run_fuzz(reference.trace_bytes, seed=0, n_random=80,
                          salvage=True)
        assert report.ok, [str(f) for f in report.failures[:5]]
        assert report.salvaged > 0

    def test_strict_fuzz_still_structured(self, reference):
        report = run_fuzz(reference.trace_bytes, seed=0, n_random=80)
        assert report.ok, [str(f) for f in report.failures[:5]]


# -- degraded-mode tracer (memory watermark) ---------------------------------------


class TestWatermark:
    def test_byte_identity_with_spills(self, reference):
        r = trace(options=TracerOptions(memory_watermark=10))
        spills = [rc.watermark_spills for rc in r.tracer.ranks]
        assert all(s > 0 for s in spills)
        assert r.trace_bytes == reference.trace_bytes

    def test_byte_identity_with_lossy_timing(self):
        ref = trace(options=TracerOptions(lossy_timing=True))
        wm = trace(options=TracerOptions(lossy_timing=True,
                                         memory_watermark=8))
        assert wm.trace_bytes == ref.trace_bytes

    def test_watermark_with_faults(self, reference):
        r = trace(fault_plan="oserror@shard.freeze*2",
                  options=TracerOptions(memory_watermark=10))
        assert not r.degraded
        assert r.trace_bytes == reference.trace_bytes

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            PilgrimTracer(memory_watermark=0)


# -- scheduler injection -----------------------------------------------------------


class TestSchedulerFaults:
    def test_delay_drop_preserve_trace(self, reference):
        r = trace(fault_plan="delay@sched*9;drop@sched*3")
        fired = [f for f in r.fired_faults if "sched" in f]
        assert fired
        assert r.trace_bytes == reference.trace_bytes

    def test_injector_shared_between_run_and_pipeline(self):
        # one plan, one injector: scheduler and pipeline fires land in
        # the same log with one global times= budget
        r = trace(fault_plan="delay@sched*2;oserror@merge")
        sites = {f.split("@")[1].split("[")[0] for f in r.fired_faults}
        assert "sched" in sites
        assert any(s.startswith("merge") for s in sites)


# -- pipeline plumbing -------------------------------------------------------------


class TestPipelinePlumbing:
    def test_pipeline_not_resilient_by_default(self):
        assert not TracePipeline().resilient

    def test_retry_policy_inherits_plan_seed(self):
        pipe = TracePipeline(faults=FaultPlan.parse("kill@merge", seed=9))
        assert pipe.resilient
        assert pipe.supervisor.policy.seed == 9

    def test_freeze_fallback_placeholder_keeps_shape(self):
        tracer = PilgrimTracer(
            fault_plan=FaultPlan.parse("kill@shard.freeze*forever:rank=0"))
        make(WORKLOAD, NP, **PARAMS).run(seed=1, tracer=tracer)
        res = tracer.result
        assert res.degraded
        dec = TraceDecoder.from_bytes(res.trace_bytes, salvage=True)
        assert dec.nprocs == NP
        assert dec.call_count(0) == 0  # placeholder: empty, not absent
