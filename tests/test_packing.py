"""Unit + property tests for the varint/tagged-value serializer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.packing import (Reader, pack_ints, pack_value, read_value,
                                unpack_ints, unzigzag, write_uvarint,
                                write_varint, zigzag)


class TestZigzag:
    @pytest.mark.parametrize("n", [0, 1, -1, 2, -2, 63, -64, 2**31, -2**31])
    def test_roundtrip(self, n):
        assert unzigzag(zigzag(n)) == n

    def test_small_negative_small_encoding(self):
        # zigzag keeps small-magnitude ints small
        assert zigzag(-1) == 1
        assert zigzag(1) == 2
        assert zigzag(0) == 0

    @given(st.integers(min_value=-2**62, max_value=2**62))
    def test_roundtrip_property(self, n):
        assert unzigzag(zigzag(n)) == n


class TestVarint:
    def test_single_byte_values(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1

    def test_multibyte(self):
        out = bytearray()
        write_uvarint(out, 128)
        assert len(out) == 2

    def test_negative_uvarint_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_reader_sequence(self):
        out = bytearray()
        values = [0, 1, 300, 2**40, 7]
        for v in values:
            write_uvarint(out, v)
        r = Reader(bytes(out))
        assert [r.read_uvarint() for _ in values] == values
        assert r.exhausted

    def test_signed_roundtrip(self):
        out = bytearray()
        values = [0, -1, 1, -1000, 1000, -2**40]
        for v in values:
            write_varint(out, v)
        r = Reader(bytes(out))
        assert [r.read_varint() for _ in values] == values

    @given(st.lists(st.integers(min_value=-2**62, max_value=2**62)))
    def test_pack_ints_roundtrip(self, values):
        assert unpack_ints(pack_ints(values)) == values

    def test_truncated_read_bytes(self):
        r = Reader(b"ab")
        with pytest.raises(ValueError):
            r.read_bytes(3)


# strategy for signature-shaped values: nested tuples of scalars
_scalar = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False),
)
_value = st.recursive(_scalar,
                      lambda children: st.tuples(children, children),
                      max_leaves=12)


class TestTaggedValues:
    @pytest.mark.parametrize("v", [
        None, True, False, 0, -5, 12345, "", "hello", "üñí",
        (), (1, 2), (None, ("a", (True, -9))), 3.25,
    ])
    def test_roundtrip_examples(self, v):
        r = Reader(pack_value(v))
        assert read_value(r) == v
        assert r.exhausted

    @given(_value)
    def test_roundtrip_property(self, v):
        assert read_value(Reader(pack_value(v))) == v

    def test_bool_is_not_int_after_decode(self):
        assert read_value(Reader(pack_value(True))) is True
        assert read_value(Reader(pack_value(1))) == 1
        assert read_value(Reader(pack_value(1))) is not True

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            pack_value([1, 2])  # lists are not part of the closed set

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError):
            read_value(Reader(b"\xff"))
