"""Unit + property tests for the varint/tagged-value serializer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import (CorruptTraceError, TraceFormatError,
                               TruncatedTraceError)
from repro.core.packing import (Reader, pack_ints, pack_value, read_value,
                                unpack_ints, unzigzag, write_uvarint,
                                write_varint, zigzag)


class TestZigzag:
    @pytest.mark.parametrize("n", [0, 1, -1, 2, -2, 63, -64, 2**31, -2**31,
                                   2**63, -2**63, 2**64, -(2**64),
                                   -(2**64) - 1, 2**200, -(2**200)])
    def test_roundtrip(self, n):
        assert unzigzag(zigzag(n)) == n

    def test_small_negative_small_encoding(self):
        # zigzag keeps small-magnitude ints small
        assert zigzag(-1) == 1
        assert zigzag(1) == 2
        assert zigzag(0) == 0

    def test_interleaving_order(self):
        # the canonical 0, -1, 1, -2, 2, ... interleaving must hold for
        # any magnitude — the old C 64-bit idiom broke it below -2**63
        assert zigzag(-(2**64)) == 2**65 - 1
        assert zigzag(2**64) == 2**65

    @given(st.integers(min_value=-2**62, max_value=2**62))
    def test_roundtrip_property(self, n):
        assert unzigzag(zigzag(n)) == n

    @given(st.integers(min_value=-2**300, max_value=2**300))
    def test_roundtrip_property_huge(self, n):
        # arbitrary-precision negatives: no 64-bit assumptions anywhere
        assert unzigzag(zigzag(n)) == n
        out = bytearray()
        write_varint(out, n)
        assert Reader(bytes(out)).read_varint() == n


class TestVarint:
    def test_single_byte_values(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1

    def test_multibyte(self):
        out = bytearray()
        write_uvarint(out, 128)
        assert len(out) == 2

    def test_negative_uvarint_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_reader_sequence(self):
        out = bytearray()
        values = [0, 1, 300, 2**40, 7]
        for v in values:
            write_uvarint(out, v)
        r = Reader(bytes(out))
        assert [r.read_uvarint() for _ in values] == values
        assert r.exhausted

    def test_signed_roundtrip(self):
        out = bytearray()
        values = [0, -1, 1, -1000, 1000, -2**40]
        for v in values:
            write_varint(out, v)
        r = Reader(bytes(out))
        assert [r.read_varint() for _ in values] == values

    @given(st.lists(st.integers(min_value=-2**62, max_value=2**62)))
    def test_pack_ints_roundtrip(self, values):
        assert unpack_ints(pack_ints(values)) == values

    def test_truncated_read_bytes(self):
        r = Reader(b"ab")
        with pytest.raises(ValueError):
            r.read_bytes(3)

    def test_truncated_read_bytes_structured(self):
        with pytest.raises(TruncatedTraceError):
            Reader(b"ab").read_bytes(3)

    def test_uvarint_on_empty_buffer(self):
        with pytest.raises(TruncatedTraceError):
            Reader(b"").read_uvarint()

    def test_uvarint_truncated_mid_varint(self):
        # continuation bit set on the last byte: the promised next byte
        # does not exist — must be a structured error, not IndexError
        with pytest.raises(TruncatedTraceError):
            Reader(b"\x80\x80").read_uvarint()

    def test_malformed_varint_longer_than_buffer(self):
        # all-continuation garbage: the shift loop must stop at the
        # buffer end instead of running unbounded
        with pytest.raises(TruncatedTraceError):
            Reader(b"\xff" * 64).read_uvarint()

    def test_reader_position_unchanged_on_truncation(self):
        r = Reader(b"\x80")
        with pytest.raises(TruncatedTraceError):
            r.read_uvarint()
        assert r.pos == 0


# strategy for signature-shaped values: nested tuples of scalars
_scalar = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False),
)
_value = st.recursive(_scalar,
                      lambda children: st.tuples(children, children),
                      max_leaves=12)


class TestTaggedValues:
    @pytest.mark.parametrize("v", [
        None, True, False, 0, -5, 12345, "", "hello", "üñí",
        (), (1, 2), (None, ("a", (True, -9))), 3.25,
    ])
    def test_roundtrip_examples(self, v):
        r = Reader(pack_value(v))
        assert read_value(r) == v
        assert r.exhausted

    @given(_value)
    def test_roundtrip_property(self, v):
        assert read_value(Reader(pack_value(v))) == v

    def test_bool_is_not_int_after_decode(self):
        assert read_value(Reader(pack_value(True))) is True
        assert read_value(Reader(pack_value(1))) == 1
        assert read_value(Reader(pack_value(1))) is not True

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            pack_value([1, 2])  # lists are not part of the closed set

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError):
            read_value(Reader(b"\xff"))

    def test_unknown_tag_is_structured(self):
        with pytest.raises(CorruptTraceError):
            read_value(Reader(b"\xff"))

    def test_value_on_empty_buffer(self):
        with pytest.raises(TruncatedTraceError):
            read_value(Reader(b""))

    @pytest.mark.parametrize("v", ["hello", (1, "ab", None), 3.25, 12345])
    def test_truncated_value_every_prefix(self, v):
        blob = pack_value(v)
        for cut in range(len(blob)):
            with pytest.raises(TraceFormatError):
                read_value(Reader(blob[:cut]))

    def test_tuple_count_exceeding_buffer(self):
        # tag 3 (tuple) claiming 2**20 elements in a 3-byte buffer
        blob = bytes([3]) + b"\x80\x80\x40"
        with pytest.raises(TruncatedTraceError):
            read_value(Reader(blob))

    def test_invalid_utf8_string(self):
        blob = bytes([2, 2, 0xC0, 0x00])  # _T_STR, len 2, bad UTF-8
        with pytest.raises(CorruptTraceError):
            read_value(Reader(blob))
