"""Tests for decoded records and the analysis/report helpers."""

import pytest

from repro.analysis import (classify_growth, fmt_count, fmt_kb, fmt_time,
                            growth_factor, print_table, run_experiment)
from repro.core.records import DecodedCall, sig_to_params
from repro.mpisim import funcs as F


class TestSigToParams:
    def test_named_params(self):
        spec = F.FUNCS["MPI_Send"]
        sig = (spec.fid, (1, 0, 0), 4, -6, (1, 1), 7, 0)
        fname, params = sig_to_params(sig)
        assert fname == "MPI_Send"
        assert params["count"] == 4
        assert params["dest"] == (1, 1)
        assert params["comm"] == 0

    def test_arity_mismatch_rejected(self):
        spec = F.FUNCS["MPI_Barrier"]
        with pytest.raises(ValueError):
            sig_to_params((spec.fid, 0, 1, 2))

    def test_materialized_decodes_relative(self):
        spec = F.FUNCS["MPI_Send"]
        sig = (spec.fid, (1, 0, 0), 4, -6, (1, 1), (2, 7), 0)
        fname, params = sig_to_params(sig)
        call = DecodedCall(rank=3, fname=fname, params=params)
        mat = call.materialized()
        assert mat["dest"] == 4   # (REL,+1) against rank 3
        assert mat["tag"] == 7    # absolute


class TestReportHelpers:
    def test_fmt_kb(self):
        assert fmt_kb(512) == "512B"
        assert fmt_kb(0) == "0B"
        assert fmt_kb(1023) == "1023B"
        assert fmt_kb(2048) == "2.0KB"
        assert fmt_kb(100 * 1024) == "100KB"
        assert fmt_kb(3 * 1024 * 1024).endswith("MB")

    def test_fmt_count(self):
        assert fmt_count(950) == "950"
        assert fmt_count(8500) == "8.5K"
        assert fmt_count(1_200_000) == "1.2M"
        assert fmt_count(123_456) == "123K"
        assert fmt_count(3_000_000_000) == "3.0B"

    def test_fmt_kb_boundaries(self):
        """Unit-ladder edges: the GB and TB tiers exist, and negative
        byte deltas carry exactly one leading sign at every tier."""
        assert fmt_kb(1024) == "1.0KB"
        assert fmt_kb(2 * 1024 ** 3) == "2.0GB"
        assert fmt_kb(3 * 1024 ** 4) == "3.0TB"
        assert fmt_kb(5000 * 1024 ** 4).endswith("TB")  # no ladder overflow
        assert fmt_kb(-1) == "-1B"
        assert fmt_kb(-512) == "-512B"
        assert fmt_kb(-2048) == "-2.0KB"
        assert fmt_kb(-2 * 1024 ** 3) == "-2.0GB"
        assert fmt_kb(-3 * 1024 ** 4) == "-3.0TB"
        assert "--" not in fmt_kb(-10 ** 15)

    def test_fmt_count_boundaries(self):
        assert fmt_count(0) == "0"
        assert fmt_count(999) == "999"
        assert fmt_count(1000) == "1.0K"
        assert fmt_count(100_000) == "100K"
        assert fmt_count(2_500_000_000_000) == "2.5T"
        assert fmt_count(-950) == "-950"
        assert fmt_count(-8500) == "-8.5K"
        assert fmt_count(-1_200_000) == "-1.2M"
        assert fmt_count(-3_000_000_000) == "-3.0B"
        assert fmt_count(-2_500_000_000_000) == "-2.5T"

    def test_fmt_time(self):
        assert fmt_time(0.0031) == "3.1ms"
        assert fmt_time(2.5) == "2.5s"
        assert fmt_time(250) == "250s"

    def test_growth_factor(self):
        assert growth_factor([10, 20, 40]) == 4
        assert growth_factor([0, 0]) == 0.0

    @pytest.mark.parametrize("ys,expect", [
        ([100, 101, 102], "flat"),
        ([100, 200, 400, 800], "linear"),
        ([100, 140, 200, 280], "sublinear"),
        ([100, 500, 2500, 12500], "superlinear"),
    ])
    def test_classify_growth(self, ys, expect):
        xs = [8 * 2 ** i for i in range(len(ys))]
        assert classify_growth(xs, ys) == expect

    def test_print_table_smoke(self, capsys):
        print_table("T", ["a", "bb"], [[1, 2], ["xxx", 4]], note="n")
        out = capsys.readouterr().out
        assert "T" in out and "xxx" in out and "note: n" in out


class TestRunExperiment:
    def test_collects_all_fields(self):
        row = run_experiment("stencil2d", 9, iters=5)
        assert row.mpi_calls > 0
        assert row.pilgrim_size > 0
        assert row.scalatrace_size > 0
        assert row.n_unique_grammars == 9
        assert row.app_seconds > 0
        assert row.time_intra > 0

    def test_selective_tracers(self):
        row = run_experiment("osu_barrier", 4, iters=2, scalatrace=False,
                             baseline=False)
        assert row.pilgrim_size > 0
        assert row.scalatrace_size == 0
        assert row.app_seconds == 0

    def test_pilgrim_kwargs_forwarded(self):
        # 16 ranks collapse to 9 classes only WITH relative ranks
        row = run_experiment("stencil2d", 16, iters=5, scalatrace=False,
                             baseline=False,
                             pilgrim_kwargs={"relative_ranks": False})
        assert row.n_unique_grammars == 16
