"""Binary trace format round-trip tests (writer <-> reader)."""

import pytest

from repro.core.cst import CST, merge_csts
from repro.core.errors import (ChecksumError, CorruptTraceError,
                               TruncatedTraceError, UnsupportedVersionError)
from repro.core.grammar import Grammar
from repro.core.interproc import merge_grammars
from repro.core.sequitur import Sequitur
from repro.core.trace_format import MAGIC, VERSION, TraceFile, section_spans


def _freeze(seq):
    s = Sequitur()
    for v in seq:
        s.append(v)
    return Grammar.freeze(s)


def _trace(rank_seqs, with_timing=False):
    csts = []
    grams = []
    for seq in rank_seqs:
        c = CST()
        terms = [c.intern((v, "sig"), 0.5) for v in seq]
        csts.append(c)
        grams.append(_freeze(terms))
    merged = merge_csts(csts)
    remapped = [g.remap_terminals(lambda t, m=merged.remaps[i]: m[t])
                for i, g in enumerate(grams)]
    cfg = merge_grammars(remapped)
    td = ti = None
    if with_timing:
        td = merge_grammars([_freeze([3, 3, 4]) for _ in rank_seqs])
        ti = merge_grammars([_freeze([5, 6, 5]) for _ in rank_seqs])
    return TraceFile(nprocs=len(rank_seqs), cst=merged, cfg=cfg,
                     timing_duration=td, timing_interval=ti)


class TestRoundTrip:
    def test_magic_and_version(self):
        blob = _trace([[0, 1, 0]]).to_bytes()
        assert blob[:4] == MAGIC

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            TraceFile.from_bytes(b"XXXX\x01\x00")

    def test_bad_version_rejected(self):
        blob = bytearray(_trace([[0]]).to_bytes())
        blob[4] = 99
        with pytest.raises(UnsupportedVersionError) as ei:
            TraceFile.from_bytes(bytes(blob))
        assert ei.value.found == 99
        assert ei.value.expected == VERSION

    def test_v1_traces_rejected(self):
        # pre-checksum traces (version 1) are not silently misparsed
        blob = bytearray(_trace([[0, 1]]).to_bytes())
        blob[4] = 1
        with pytest.raises(UnsupportedVersionError):
            TraceFile.from_bytes(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(TruncatedTraceError):
            TraceFile.from_bytes(b"PILG\x02")

    def test_unknown_flag_bits_rejected(self):
        blob = bytearray(_trace([[0]]).to_bytes())
        blob[5] |= 0x40
        with pytest.raises(CorruptTraceError):
            TraceFile.from_bytes(bytes(blob))

    def test_trailing_bytes_rejected(self):
        blob = _trace([[0, 1, 0]]).to_bytes()
        with pytest.raises(CorruptTraceError):
            TraceFile.from_bytes(blob + b"\x00")

    @pytest.mark.parametrize("rank_seqs", [
        [[0]],
        [[0, 1, 0, 1]],
        [[0, 1] * 5, [0, 1] * 5],
        [[0, 1] * 5, [2, 3] * 4, [0, 1] * 5],
        [[i % 3 for i in range(20)] for _ in range(7)],
    ])
    def test_cfg_roundtrip(self, rank_seqs):
        t = _trace(rank_seqs)
        back = TraceFile.from_bytes(t.to_bytes())
        assert back.nprocs == t.nprocs
        assert back.cst.sigs == t.cst.sigs
        assert back.cfg.rank_uid == t.cfg.rank_uid
        assert back.cfg.final.expand() == t.cfg.final.expand()
        for uid, g in enumerate(back.cfg.unique):
            assert g.expand() == t.cfg.unique[uid].expand()

    def test_timing_sections_roundtrip(self):
        t = _trace([[0, 1], [0, 1]], with_timing=True)
        back = TraceFile.from_bytes(t.to_bytes())
        assert back.timing_duration is not None
        assert back.timing_duration.final.expand() == \
            t.timing_duration.final.expand()
        assert back.timing_interval.rank_uid == t.timing_interval.rank_uid

    def test_no_timing_flag(self):
        back = TraceFile.from_bytes(_trace([[0]]).to_bytes())
        assert back.timing_duration is None


class TestChecksums:
    @pytest.mark.parametrize("compress", [True, False])
    def test_payload_flip_raises_checksum_error(self, compress):
        t = _trace([[0, 1] * 6, [2] * 4])
        blob = bytearray(t.to_bytes(compress=compress))
        start, _end = section_spans(bytes(blob))["cst.payload"]
        blob[start] ^= 0x10
        with pytest.raises(ChecksumError) as ei:
            TraceFile.from_bytes(bytes(blob))
        assert ei.value.section == "CST"
        assert ei.value.stored != ei.value.computed

    def test_crc_field_flip_raises_checksum_error(self):
        blob = bytearray(_trace([[0, 1, 0]]).to_bytes())
        start, _end = section_spans(bytes(blob))["cfg.crc"]
        blob[start] ^= 0x01
        with pytest.raises(ChecksumError):
            TraceFile.from_bytes(bytes(blob))

    def test_section_spans_tile_the_blob(self):
        blob = _trace([[0, 1] * 3, [0, 1] * 3], with_timing=True).to_bytes()
        spans = sorted(section_spans(blob).values())
        assert spans[0][0] == 0
        assert spans[-1][1] == len(blob)
        for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
            assert a_end == b_start

    def test_uncompressed_roundtrip(self):
        t = _trace([[0, 1] * 4])
        back = TraceFile.from_bytes(t.to_bytes(compress=False))
        assert back.cfg.final.expand() == t.cfg.final.expand()


class TestSectionSizes:
    def test_sections_sum_to_total(self):
        t = _trace([[0, 1] * 10, [2] * 5], with_timing=True)
        sizes = t.section_sizes()
        parts = sum(v for k, v in sizes.items() if k != "total")
        assert sizes["total"] == parts
        assert sizes["total"] == pytest.approx(len(t.to_bytes()), abs=2)

    def test_cst_and_cfg_nonzero(self):
        sizes = _trace([[0, 1, 2]]).section_sizes()
        assert sizes["cst"] > 0 and sizes["cfg"] > 0


class TestTimingMetaSection:
    def _meta_trace(self):
        from repro.core.timing import TimingMeta
        t = _trace([[0, 1], [0, 1]], with_timing=True)
        t.timing_meta = TimingMeta(
            base=1.3, per_function_base={"MPI_Barrier": 2.0})
        return t

    def test_roundtrip(self):
        t = self._meta_trace()
        back = TraceFile.from_bytes(t.to_bytes())
        assert back.timing_meta == t.timing_meta

    def test_timing_trace_without_explicit_meta_gets_default(self):
        from repro.core.timing import TimingMeta
        t = _trace([[0, 1]], with_timing=True)
        back = TraceFile.from_bytes(t.to_bytes())
        assert back.timing_meta == TimingMeta()

    def test_untimed_trace_has_no_meta(self):
        back = TraceFile.from_bytes(_trace([[0]]).to_bytes())
        assert back.timing_meta is None

    def test_meta_flag_without_timing_rejected(self):
        from repro.core.trace_format import FLAG_TIMING, FLAG_TIMING_META
        blob = bytearray(_trace([[0, 1]], with_timing=True).to_bytes())
        blob[5] = (blob[5] | FLAG_TIMING_META) & ~FLAG_TIMING
        with pytest.raises(CorruptTraceError):
            TraceFile.from_bytes(bytes(blob))

    def test_meta_survives_salvage(self):
        t = self._meta_trace()
        back = TraceFile.from_bytes(t.to_bytes(), salvage=True)
        assert back.timing_meta == t.timing_meta

    def test_corrupt_meta_salvaged_to_default(self):
        from repro.core.timing import TimingMeta
        t = self._meta_trace()
        blob = bytearray(t.to_bytes())
        start, end = section_spans(bytes(blob))["timing_meta.payload"]
        blob[start] ^= 0x10
        back = TraceFile.from_bytes(bytes(blob), salvage=True)
        # the timing sections themselves survive; the lost meta falls
        # back to the defaults and the loss is reported
        assert back.timing_duration is not None
        assert back.timing_meta in (None, TimingMeta())
        assert back.salvage is not None
        assert "timing-meta" in " ".join(back.salvage.lost_sections)

    def test_meta_section_spans_present(self):
        blob = self._meta_trace().to_bytes()
        spans = section_spans(blob)
        assert "timing_meta.payload" in spans
