"""Unit + property tests for run-length Sequitur (paper §2.2).

The two grammar invariants under test are the paper's P1 (digram
uniqueness) and P2 (rule utility), plus the run-length extension's
O(1)-for-regular-loops size claim and lossless expansion.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grammar import Grammar
from repro.core.sequitur import Sequitur


def compress(seq, ld=True):
    s = Sequitur(loop_detection=ld)
    for v in seq:
        s.append(v)
    return s


def roundtrip(seq, ld=True):
    s = compress(seq, ld)
    assert s.expand() == list(seq)
    s.flush()
    s.check_invariants()
    assert s.expand() == list(seq)
    return s


class TestBasics:
    def test_empty(self):
        s = Sequitur()
        assert s.expand() == []
        assert s.n_input == 0

    def test_single(self):
        roundtrip([5])

    def test_no_repetition(self):
        s = roundtrip([1, 2, 3, 4, 5])
        assert s.n_rules() == 1  # nothing to factor

    def test_negative_terminal_rejected(self):
        with pytest.raises(ValueError):
            Sequitur().append(-1)

    def test_zero_exponent_rejected(self):
        with pytest.raises(ValueError):
            Sequitur().append(1, exp=0)

    def test_run_collapses_to_one_token(self):
        s = roundtrip([7] * 1000)
        assert s.n_tokens() == 1  # the paper's O(1) loop claim

    def test_digram_rule_formation(self):
        s = roundtrip([1, 2, 3, 1, 2])
        # "1 2" appears twice -> becomes a rule
        assert s.n_rules() == 2

    def test_rule_reuse_not_duplicate(self):
        # the second occurrence must reuse the existing rule (P1 handling
        # when the match is a whole rule body)
        s = roundtrip([1, 2, 9, 1, 2, 8, 1, 2])
        assert s.n_rules() == 2

    def test_rule_utility_inlining(self):
        # transient rules that end up used once must be inlined (P2)
        s = roundtrip([1, 2, 1, 3, 1, 2, 1, 3])
        s.check_invariants()

    def test_n_input_counts_expansions(self):
        s = Sequitur()
        s.append(1, exp=5)
        s.append(2)
        assert s.n_input == 6


class TestLoopCompression:
    def test_two_symbol_loop_constant_size(self):
        s = roundtrip([1, 2] * 500)
        assert s.n_tokens() <= 4

    def test_loop_size_independent_of_iterations(self):
        sizes = []
        for n in (10, 100, 1000):
            s = compress([1, 2, 3, 4, 5] * n)
            s.flush()
            sizes.append(s.n_tokens())
        assert sizes[0] == sizes[1] == sizes[2]  # O(1), not O(log N)

    def test_nested_loops(self):
        inner = [1, 2] * 10 + [3]
        seq = (inner * 8 + [4]) * 5
        s = roundtrip(seq)
        assert s.n_tokens() < 20

    def test_partial_tail_iteration_preserved(self):
        body = [1, 2, 3]
        seq = body * 10 + [1, 2]  # loop plus a partial iteration
        roundtrip(seq)

    def test_plain_sequitur_logn_vs_runlength_o1(self):
        # without exponents a loop costs O(log N) rules; with them O(1)
        seq = [1, 2, 3, 4] * 256
        rl = compress(seq, ld=False)
        rl.flush()
        assert rl.expand() == seq
        assert rl.n_tokens() <= 8

    def test_loop_detection_equivalent_grammar(self):
        # the loop-detection fast path must not change the final grammar
        for body in ([1], [1, 2], [1, 2, 3, 4, 5], [1, 2, 1, 3]):
            seq = body * 50 + [9] + body * 30
            g_fast = Grammar.freeze(compress(seq, ld=True))
            g_slow = Grammar.freeze(compress(seq, ld=False))
            assert g_fast.expand() == g_slow.expand() == seq

    def test_flush_idempotent(self):
        s = compress([1, 2, 3] * 20 + [1, 2])
        s.flush()
        before = s.expand()
        s.flush()
        assert s.expand() == before


class TestInvariants:
    @pytest.mark.parametrize("seq", [
        [1, 2, 1, 2, 1, 2],
        [0, 0, 1, 0, 0, 1, 0],
        [5, 4, 3, 2, 1] * 6,
        [1, 1, 2, 2, 1, 1, 2, 2],
        [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3],
    ])
    def test_invariants_after_each_append(self, seq):
        s = Sequitur()
        for v in seq:
            s.append(v)
            s.flush()
            s.check_invariants()
        assert s.expand() == seq

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=80))
    def test_roundtrip_property(self, seq):
        s = compress(seq)
        assert s.expand() == seq
        s.flush()
        s.check_invariants()
        assert s.expand() == seq

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=50),
           st.integers(2, 10))
    def test_repeated_body_roundtrip(self, body, reps):
        seq = body * reps
        s = compress(seq)
        assert s.expand() == seq
        s.flush()
        s.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4),
                              st.integers(1, 6)), min_size=1, max_size=40))
    def test_exponent_appends(self, tokens):
        s = Sequitur()
        expected = []
        for v, e in tokens:
            s.append(v, exp=e)
            expected.extend([v] * e)
        assert s.expand() == expected
        s.flush()
        s.check_invariants()


class TestGrammarSizeAccounting:
    def test_n_tokens_counts_rule_bodies(self):
        s = compress([1, 2] * 10)
        s.flush()
        total = sum(sum(1 for _ in r.tokens()) for r in s.rules.values())
        assert s.n_tokens() == total

    def test_compression_ratio_on_trace_like_input(self):
        # an MPI-trace-shaped input: long loop of a 13-call iteration body
        seq = list(range(13)) * 1000
        s = compress(seq)
        s.flush()
        assert s.n_tokens() < len(seq) / 400


class TestBatchAppend:
    """append_array/extend must be byte-identical to scalar appends."""

    def _same_grammar(self, seq, chunks, ld=True):
        batched = Sequitur(loop_detection=ld)
        i = 0
        for c in chunks:
            batched.append_array(seq[i:i + c])
            i += c
        batched.append_array(seq[i:])
        scalar = compress(seq, ld)
        assert batched.expand() == scalar.expand() == list(seq)
        assert Grammar.freeze(batched).expand() == \
            Grammar.freeze(scalar).expand()

    def test_loopy_input_chunked(self):
        seq = [1, 2, 3] * 40 + [9] + [1, 2, 3] * 20
        self._same_grammar(seq, [1, 5, 17, 64])

    def test_chunk_boundary_mid_prediction(self):
        # a batch that ends inside a live loop prediction must save the
        # partial match and resume on the next batch
        seq = [1, 2, 3, 4] * 30
        self._same_grammar(seq, [10, 7])  # 17 = mid-iteration

    def test_expand_counts_partial_prediction(self):
        s = Sequitur()
        s.append_array([1, 2, 3] * 10 + [1, 2])  # ends mid-prediction
        assert s._predict is not None and s._predict_pos
        assert len(s.expand()) == s.n_input == 32

    def test_extend_routes_through_batch_path(self):
        a = Sequitur()
        a.extend(iter([5, 6] * 25))
        b = compress([5, 6] * 25)
        assert a.expand() == b.expand()
        assert Grammar.freeze(a).expand() == Grammar.freeze(b).expand()

    def test_extend_with_exponents(self):
        a = Sequitur()
        a.extend([1, 2, 1], exps=[3, 1, 4])
        b = Sequitur()
        for v, e in ((1, 3), (2, 1), (1, 4)):
            b.append(v, exp=e)
        assert a.expand() == b.expand() == [1] * 3 + [2] + [1] * 4

    def test_huge_exponent_falls_back_to_tuple_key(self):
        # exponents >= 2**32 exceed the packed digram-key range; the
        # tuple fallback must keep the grammar lossless (loop detection
        # off: arming a prediction would materialize the 2**40 run)
        s = Sequitur(loop_detection=False)
        big = 1 << 40
        s.append(1, exp=big)
        s.append(2)
        s.append(1, exp=big)
        s.append(2)
        s.flush()
        s.check_invariants()
        assert s.n_input == 2 * (big + 1)

    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=80),
           st.integers(1, 80), st.booleans())
    def test_batched_equals_scalar_property(self, seq, chunk, ld):
        batched = Sequitur(loop_detection=ld)
        for i in range(0, len(seq), chunk):
            batched.append_array(seq[i:i + chunk])
        scalar = compress(seq, ld)
        assert batched.expand() == scalar.expand() == seq
        assert Grammar.freeze(batched).expand() == \
            Grammar.freeze(scalar).expand()
        batched.flush()
        batched.check_invariants()
