"""The streaming ingest subsystem's core invariant and its service.

The invariant (tentpole): **any** chunking of a rank's stream into
partial shards folds, server-side, to a trace byte-identical to the
one-shot in-process run — across workload families, chunk sizes
(including per-call streaming and whole-run), lossy timing, and the
memory watermark.  Property-tested in-memory (fast), then pinned over
real sockets with concurrent multi-tenant pushes, reconnects, and a
corrupt client that must not disturb healthy tenants.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.backends import TracerOptions, make_tracer
from repro.ingest import (ChunkingTracer, IngestClient, IngestError,
                          protocol as proto, push, serve_in_thread)
from repro.ingest.aggregator import Aggregator
from repro.workloads import make

FAMILIES = ("stencil2d", "osu_latency", "npb_mg", "flash_sedov",
            "milc_su3_rmd")

#: per-call streaming, tiny, mid-size, and one whole-run chunk
CHUNKINGS = (1, 7, 97, 10 ** 9)


def _one_shot(family: str, nprocs: int, seed: int, *,
              lossy: bool, watermark=None) -> bytes:
    tracer = make_tracer("pilgrim", TracerOptions(
        lossy_timing=lossy, memory_watermark=watermark))
    make(family, nprocs).run(seed=seed, tracer=tracer, noise=0.05)
    return tracer.result.trace_bytes


def _folded(family: str, nprocs: int, seed: int, *, chunk_calls: int,
            lossy: bool, watermark=None) -> bytes:
    """Stream through ChunkingTracer into an Aggregator, no sockets."""
    agg = Aggregator()
    tracer = ChunkingTracer(
        lambda p: agg.absorb("t", p.to_bytes()),
        chunk_calls=chunk_calls,
        timing_mode="lossy" if lossy else "aggregate",
        memory_watermark=watermark)
    agg.start("t", nprocs, tracer.config())
    make(family, nprocs).run(seed=seed, tracer=tracer, noise=0.05)
    return agg.finish("t", [rc.streamed_calls for rc in tracer.ranks])


class TestFoldByteIdentity:
    """The tentpole property, over >= 4 workload families."""

    @settings(max_examples=10, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([2, 4]),
           seed=st.integers(0, 2 ** 16),
           chunk_calls=st.sampled_from(CHUNKINGS),
           lossy=st.booleans())
    def test_chunked_fold_byte_identity(self, family, nprocs, seed,
                                        chunk_calls, lossy):
        ref = _one_shot(family, nprocs, seed, lossy=lossy)
        got = _folded(family, nprocs, seed, chunk_calls=chunk_calls,
                      lossy=lossy)
        assert got == ref

    @pytest.mark.parametrize("family", ["stencil2d", "milc_su3_rmd"])
    @pytest.mark.parametrize("chunk_calls", [1, 23, 10 ** 9])
    def test_identity_under_memory_watermark(self, family, chunk_calls):
        ref = _one_shot(family, 4, 5, lossy=True, watermark=7)
        got = _folded(family, 4, 5, chunk_calls=chunk_calls,
                      lossy=True, watermark=7)
        assert got == ref

    def test_every_family_whole_run_and_per_call(self):
        for family in FAMILIES[:4]:
            ref = _one_shot(family, 2, 3, lossy=False)
            for chunk_calls in (1, 10 ** 9):
                assert _folded(family, 2, 3, chunk_calls=chunk_calls,
                               lossy=False) == ref, family


class TestSocketEndToEnd:
    def test_push_matches_in_process(self):
        ref = repro.trace("stencil2d", 4, seed=5,
                          options=TracerOptions(lossy_timing=True)
                          ).trace_bytes
        with serve_in_thread() as srv:
            res = push("stencil2d", 4, port=srv.port, seed=5,
                       options=TracerOptions(lossy_timing=True),
                       chunk_calls=32)
        assert res.trace_bytes == ref
        assert res.chunks_sent > 10
        assert res.total_calls == sum(res.per_rank_calls)

    def test_concurrent_tenants_are_isolated(self):
        jobs = [("t0", "stencil2d", 1), ("t1", "osu_latency", 2),
                ("t2", "stencil2d", 3), ("t3", "npb_mg", 4)]
        refs = {t: repro.trace(w, 2, seed=s).trace_bytes
                for t, w, s in jobs}
        results, errors = {}, []

        def _push(tenant, wl, seed, port):
            try:
                results[tenant] = push(wl, 2, port=port, tenant=tenant,
                                       seed=seed, chunk_calls=16)
            except Exception as e:  # noqa: BLE001 — collected for assert
                errors.append((tenant, e))

        with serve_in_thread() as srv:
            threads = [threading.Thread(target=_push,
                                        args=(t, w, s, srv.port))
                       for t, w, s in jobs]
            for th in threads:
                th.start()
            for th in threads:
                th.join(120)
        assert not errors, errors
        for tenant, wl, seed in jobs:
            assert results[tenant].trace_bytes == refs[tenant], tenant

    def test_corrupt_client_does_not_disturb_healthy_tenants(self):
        ref = repro.trace("osu_latency", 2, seed=7).trace_bytes
        with serve_in_thread() as srv:
            # a garbage stream: must get a structured ERROR frame back
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=10) as bad:
                bad.sendall(b"\xde\xad\xbe\xef" * 16)
                dec = proto.FrameDecoder()
                while True:
                    data = bad.recv(65536)
                    if not data:
                        break
                    dec.feed(data)
                frames = list(dec.frames())
            assert frames and frames[0][0] == proto.ERROR
            code, _ = proto.parse_error(frames[0][1])
            assert code == "FrameFormatError"
            # a mid-session corruption: valid HELLO, then garbage
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=10) as bad:
                bad.sendall(proto.encode_hello("evil", 2,
                                               proto.IngestConfig()))
                bad.sendall(b"\x00" * 64)
                while bad.recv(65536):
                    pass
            # the healthy tenant's stream still folds byte-identically
            res = push("osu_latency", 2, port=srv.port, tenant="good",
                       seed=7, chunk_calls=16)
            assert res.trace_bytes == ref
            assert srv.server.errors >= 2

    def test_reconnect_resumes_idempotently(self):
        ref = repro.trace("stencil2d", 2, seed=11).trace_bytes
        with serve_in_thread() as srv:
            client = IngestClient("127.0.0.1", srv.port, "t")
            sent = [0]

            def emit(p):
                # sever the transport under the client mid-stream, twice
                if sent[0] in (3, 9):
                    client._sock.close()
                    time.sleep(0.05)
                client.send_partial(p)
                sent[0] += 1

            tracer = ChunkingTracer(emit, chunk_calls=32)
            client.connect(2, tracer.config())
            make("stencil2d", 2).run(seed=11, tracer=tracer, noise=0.05)
            blob = client.finish(
                [rc.streamed_calls for rc in tracer.ranks])
        assert client.reconnects >= 2
        assert blob == ref

    def test_conservation_mismatch_is_refused(self):
        with serve_in_thread() as srv:
            client = IngestClient("127.0.0.1", srv.port, "t")
            tracer = ChunkingTracer(client.send_partial, chunk_calls=16)
            client.connect(2, tracer.config())
            make("osu_latency", 2).run(seed=1, tracer=tracer)
            wrong = [rc.streamed_calls + 1 for rc in tracer.ranks]
            with pytest.raises(IngestError) as ei:
                client.finish(wrong)
            assert ei.value.code == "FoldError"
            assert "conservation" in ei.value.detail


class TestSatelliteGuards:
    """The smaller PR-8 satellites: eager option validation, the
    freeze() guard, and the upward-only layering rule."""

    def test_tracer_options_validate_eagerly(self):
        with pytest.raises(ValueError, match="batch_size"):
            TracerOptions(batch_size=0)
        with pytest.raises(ValueError, match="memory_watermark"):
            TracerOptions(memory_watermark=0)
        with pytest.raises(ValueError, match="jobs"):
            TracerOptions(jobs=-1)
        TracerOptions(batch_size=1, memory_watermark=1, jobs=1)

    def test_chunk_calls_validates(self):
        with pytest.raises(ValueError, match="chunk_calls"):
            ChunkingTracer(lambda p: None, chunk_calls=0)

    def test_freeze_refused_after_streaming(self):
        tracer = ChunkingTracer(lambda p: None, chunk_calls=16)
        make("osu_latency", 2).run(seed=1, tracer=tracer)
        with pytest.raises(RuntimeError, match="flush_partial"):
            tracer.finalize()

    def test_layering_is_upward_only(self):
        """Each ingest layer may import only layers strictly below it
        (and repro.core / repro.obs / repro.resilience)."""
        import ast
        import os

        import repro.ingest as ingest_pkg
        pkg_dir = os.path.dirname(ingest_pkg.__file__)
        order = {"protocol": 1, "session": 2, "aggregator": 3,
                 "server": 4, "client": 4}
        for mod, level in order.items():
            tree = ast.parse(
                open(os.path.join(pkg_dir, mod + ".py")).read())
            for node in ast.walk(tree):
                names = []
                if isinstance(node, ast.ImportFrom) and node.module:
                    names.append(node.module)
                elif isinstance(node, ast.ImportFrom) and node.level:
                    # "from . import protocol as proto" style
                    names.extend(a.name for a in node.names)
                elif isinstance(node, ast.Import):
                    names.extend(a.name for a in node.names)
                for name in names:
                    leaf = name.split(".")[-1]
                    if leaf in order and leaf != mod:
                        assert order[leaf] < level, (
                            f"{mod} (layer {level}) imports {leaf} "
                            f"(layer {order[leaf]}): dependencies must "
                            f"flow upward only")

    def test_facade_exports(self):
        assert callable(repro.serve)
        assert callable(repro.push)
        assert "push" in repro.api.__all__ and "serve" in repro.api.__all__
