"""The sharded compression pipeline: shard artifacts, associative tree
reduction, parallel finalize, and the tracer-backend registry.

The load-bearing property: :func:`repro.core.shard.merge_shards` is
associative, so *every* reduction shape — left fold, right fold,
balanced tree, and the parallel ``jobs=N`` scheduler — must produce
byte-identical final traces.  That is what makes ``--jobs`` safe to
enable anywhere.
"""

from __future__ import annotations

import pytest

from repro.core import (NullTracer, PilgrimTracer, RankShard, RawTracer,
                        TracePipeline, TracerOptions, available_backends,
                        make_tracer, merge_shards, register_backend,
                        tree_reduce, verify_workload)
from repro.core.backends import _BACKENDS
from repro.core.errors import TraceFormatError
from repro.mpisim import SimMPI
from repro.obs import EventLog, MetricsRegistry, PhaseProfiler
from repro.scalatrace import ScalaTraceTracer
from repro.workloads import make

#: the four workload families every merge-order property is proven on
FAMILIES = [
    ("stencil2d", 8, {}),
    ("osu_latency", 4, {}),
    ("npb_mg", 8, {}),
    ("flash_sedov", 8, {"iters": 6}),
]


def _trace(name: str, nprocs: int, params: dict, *, jobs: int = 1,
           lossy: bool = False, seed: int = 1) -> PilgrimTracer:
    tracer = PilgrimTracer(jobs=jobs,
                           timing_mode="lossy" if lossy else "aggregate")
    make(name, nprocs, **params).run(seed=seed, tracer=tracer)
    return tracer


def _serialize(shard: RankShard, *, lossy: bool = False) -> bytes:
    return TracePipeline().serialize(shard).trace_bytes


def _fold_left(shards):
    acc = shards[0]
    for s in shards[1:]:
        acc = merge_shards(acc, s)
    return acc


def _fold_right(shards):
    acc = shards[-1]
    for s in reversed(shards[:-1]):
        acc = merge_shards(s, acc)
    return acc


class TestMergeAssociativity:
    """Every merge order/tree shape yields byte-identical traces."""

    @pytest.mark.parametrize("name,nprocs,params", FAMILIES)
    def test_all_tree_shapes_byte_identical(self, name, nprocs, params):
        tracer = _trace(name, nprocs, params)
        serial = tracer.result.trace_bytes
        shards = [rc.freeze() for rc in tracer.ranks]

        left = _serialize(_fold_left(shards))
        right = _serialize(_fold_right(shards))
        balanced = _serialize(tree_reduce(shards, merge_shards))
        assert left == serial
        assert right == serial
        assert balanced == serial

    @pytest.mark.parametrize("name,nprocs,params", FAMILIES)
    def test_parallel_jobs_byte_identical(self, name, nprocs, params):
        serial = _trace(name, nprocs, params).result.trace_bytes
        parallel = _trace(name, nprocs, params,
                          jobs=4).result.trace_bytes
        assert parallel == serial

    def test_lossy_timing_tree_shapes(self):
        tracer = _trace("stencil2d", 8, {}, lossy=True)
        serial = tracer.result.trace_bytes
        shards = [rc.freeze() for rc in tracer.ranks]
        assert _serialize(_fold_left(shards)) == serial
        assert _serialize(_fold_right(shards)) == serial
        assert _trace("stencil2d", 8, {}, lossy=True,
                      jobs=2).result.trace_bytes == serial

    def test_uneven_split_points(self):
        """Any split of the rank range reduces to the same trace: merge
        (0..k) with (k..P) for every k."""
        tracer = _trace("npb_mg", 8, {})
        serial = tracer.result.trace_bytes
        shards = [rc.freeze() for rc in tracer.ranks]
        for k in range(1, len(shards)):
            combined = merge_shards(_fold_left(shards[:k]),
                                    _fold_left(shards[k:]))
            assert _serialize(combined) == serial, f"split at {k}"

    def test_non_adjacent_merge_rejected(self):
        tracer = _trace("osu_latency", 4, {})
        shards = [rc.freeze() for rc in tracer.ranks]
        with pytest.raises(ValueError, match="not adjacent"):
            merge_shards(shards[0], shards[2])
        with pytest.raises(ValueError, match="not adjacent"):
            merge_shards(shards[1], shards[0])

    def test_merged_shard_accounting(self):
        tracer = _trace("stencil2d", 8, {})
        final = _fold_left([rc.freeze() for rc in tracer.ranks])
        assert final.nranks == 8
        assert final.total_calls == tracer.total_calls
        assert final.calls == tracer.result.per_rank_calls
        assert sum(final.counts) == tracer.total_calls

    def test_parallel_verify_workload(self):
        report = verify_workload("stencil2d", 8, jobs=2)
        assert report.ok, report.mismatches


class TestShardSerialization:
    def _roundtrip(self, shard: RankShard) -> RankShard:
        blob = shard.to_bytes()
        back = RankShard.from_bytes(blob)
        # the byte form is a fixed point of the reader
        assert back.to_bytes() == blob
        return back

    @pytest.mark.parametrize("lossy", [False, True])
    def test_single_rank_roundtrip(self, lossy):
        tracer = _trace("stencil2d", 4, {}, lossy=lossy)
        for rc in tracer.ranks:
            shard = rc.freeze()
            back = self._roundtrip(shard)
            assert back.sigs == shard.sigs
            assert back.counts == shard.counts
            assert back.dur_ns == shard.dur_ns
            assert back.calls == shard.calls
            assert back.cfg == shard.cfg
            assert back.timing_duration == shard.timing_duration
            assert (back.base_rank, back.nranks) == (rc.rank, 1)

    def test_merged_shard_roundtrip_preserves_trace(self):
        """A merged shard survives the wire: serializing the deserialized
        shard yields the same final trace bytes."""
        tracer = _trace("flash_sedov", 8, {"iters": 6})
        final = _fold_left([rc.freeze() for rc in tracer.ranks])
        back = self._roundtrip(final)
        assert _serialize(back) == tracer.result.trace_bytes

    def test_uncompressed_roundtrip(self):
        shard = _trace("osu_latency", 4, {}).ranks[0].freeze()
        blob = shard.to_bytes(compress=False)
        assert RankShard.from_bytes(blob).cfg == shard.cfg

    def test_corruption_raises_structured_errors(self):
        blob = _trace("osu_latency", 4, {}).ranks[0].freeze().to_bytes()
        for pos in range(len(blob)):
            for mutated in (blob[:pos], # every truncation
                            blob[:pos] + bytes([blob[pos] ^ 0x40])
                            + blob[pos + 1:]):  # and a bit flip
                try:
                    RankShard.from_bytes(mutated)
                except TraceFormatError:
                    pass  # structured rejection is the contract

    def test_bad_magic_and_version(self):
        blob = _trace("osu_latency", 4, {}).ranks[0].freeze().to_bytes()
        with pytest.raises(TraceFormatError, match="magic"):
            RankShard.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(TraceFormatError):
            RankShard.from_bytes(blob[:4] + b"\x63" + blob[5:])


class TestTreeReduce:
    """The generic scheduler, on a plain non-commutative monoid."""

    def test_matches_left_fold(self):
        items = [f"<{i}>" for i in range(11)]
        prof = PhaseProfiler()
        got = tree_reduce(items, lambda a, b: a + b, profiler=prof)
        assert got == "".join(items)
        # ceil(log2 11) = 4 levels, each timed
        assert [p for p in prof.phases() if p.startswith("merge.level.")] \
            == [f"merge.level.{k}" for k in range(4)]

    def test_single_item_and_empty(self):
        assert tree_reduce(["x"], lambda a, b: a + b) == "x"
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a + b)
        with pytest.raises(ValueError):
            tree_reduce(["x"], lambda a, b: a + b, jobs=0)

    def test_parallel_matches_serial(self):
        import operator
        items = [f"<{i}>" for i in range(13)]
        assert tree_reduce(items, operator.concat, jobs=3) \
            == "".join(items)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"pilgrim", "scalatrace", "raw", "null"} \
            <= set(available_backends())

    def test_make_tracer_types(self):
        assert isinstance(make_tracer("pilgrim"), PilgrimTracer)
        assert isinstance(make_tracer("scalatrace"), ScalaTraceTracer)
        assert isinstance(make_tracer("raw"), RawTracer)
        assert isinstance(make_tracer("null"), NullTracer)

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown tracer backend"):
            make_tracer("recorder")

    def test_options_and_overrides(self):
        opts = TracerOptions(lossy_timing=True, keep_raw=True)
        t = make_tracer("pilgrim", opts, jobs=3)
        assert (t.timing_mode, t.keep_raw, t.jobs) == ("lossy", True, 3)
        assert opts.jobs == 1  # the shared options object is untouched
        t = make_tracer("pilgrim", extra={"cfg_dedup": False})
        assert t.cfg_dedup is False

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("pilgrim", lambda opts: None)
        # replace=True is the explicit escape hatch
        original = _BACKENDS["pilgrim"]
        try:
            marker = lambda opts: NullTracer()  # noqa: E731
            register_backend("pilgrim", marker, replace=True)
            assert isinstance(make_tracer("pilgrim"), NullTracer)
        finally:
            _BACKENDS["pilgrim"] = original

    def test_null_and_raw_observe_every_call(self):
        pilgrim = _trace("stencil2d", 4, {})
        null = make_tracer("null")
        raw = make_tracer("raw")
        make("stencil2d", 4).run(seed=1, tracer=null)
        make("stencil2d", 4).run(seed=1, tracer=raw)
        assert null.result.total_calls == pilgrim.total_calls
        assert raw.result.total_calls == pilgrim.total_calls
        assert null.result.trace_bytes == b""
        assert null.result.trace_size == 0
        # raw is the uncompressed baseline: strictly larger than Pilgrim
        assert raw.result.trace_size > pilgrim.result.trace_size
        assert raw.result.per_rank_calls == pilgrim.result.per_rank_calls


class TestFinalizeIdempotence:
    def test_second_finalize_returns_cached(self):
        tracer = _trace("osu_latency", 4, {})
        first = tracer.result
        assert tracer.finalize() is first
        assert tracer.result is first

    def test_no_phase_double_counting(self):
        """A second finalize() must not re-fold the per-call accumulators
        into the profiler (the old behavior doubled every phase)."""
        tracer = PilgrimTracer(metrics=MetricsRegistry())
        make("osu_latency", 4).run(seed=1, tracer=tracer)
        phases = dict(tracer.profiler.phases())
        encode_count = tracer.profiler.count("encode")
        tracer.finalize()
        tracer.finalize()
        assert tracer.profiler.phases() == phases
        assert tracer.profiler.count("encode") == encode_count


class TestEventLogNormalization:
    def test_disabled_log_not_wired_anywhere(self):
        log = EventLog(enabled=False)
        sim = SimMPI(nprocs=2, events=log)
        assert sim.events is None
        assert sim.scheduler.events is None

    def test_enabled_log_shared(self):
        log = EventLog()
        sim = SimMPI(nprocs=2, events=log)
        assert sim.events is log
        assert sim.scheduler.events is log


class TestPipelinePhases:
    def test_merge_level_phases_recorded(self):
        tracer = PilgrimTracer(metrics=MetricsRegistry(), jobs=1)
        make("stencil2d", 8, ).run(seed=1, tracer=tracer)
        phases = tracer.result.phases
        # 8 ranks -> 3 reduction levels, plus the named stage phases
        assert {"shard", "cst_merge", "cfg_merge", "serialize"} \
            <= set(phases)
        assert [p for p in phases if p.startswith("merge.level.")] \
            == ["merge.level.0", "merge.level.1", "merge.level.2"]
        # level timings are sub-phases of the reduce stage
        level_sum = sum(t for p, t in phases.items()
                        if p.startswith("merge.level."))
        assert level_sum <= phases["cst_merge"] + 1e-6

    def test_grammar_set_merge_dedups(self):
        tracer = _trace("stencil2d", 8, {})
        final = _fold_left([rc.freeze() for rc in tracer.ranks])
        assert len(final.cfg.unique) == tracer.result.n_unique_grammars
        assert len(final.cfg.uid) == 8
        assert final.cfg.per_rank()[0] is final.cfg.unique[final.cfg.uid[0]]
