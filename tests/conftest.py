"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.core import PilgrimTracer
from repro.mpisim import SimMPI


def run_program(nprocs: int, program, *, seed: int = 1, tracer=None,
                noise: float = 0.0, **kw):
    """Run a rank program on a fresh simulator; returns (sim, result)."""
    sim = SimMPI(nprocs, seed=seed, tracer=tracer, noise=noise, **kw)
    result = sim.run(program)
    return sim, result


def trace_program(nprocs: int, program, *, seed: int = 1, noise: float = 0.0,
                  **tracer_kw):
    """Run under a Pilgrim tracer; returns the tracer (result populated)."""
    tracer = PilgrimTracer(**tracer_kw)
    SimMPI(nprocs, seed=seed, tracer=tracer, noise=noise).run(program)
    return tracer


@pytest.fixture
def two_ranks():
    """Factory fixture for 2-rank programs."""
    def runner(program, **kw):
        return run_program(2, program, **kw)
    return runner
