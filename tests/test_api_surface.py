"""API-surface snapshot: ``repro.api`` signatures are pinned.

The facade is the compatibility contract — the CLI, the experiment
runner, the chaos harness, and downstream users all call it.  This test
renders every pinned callable's ``inspect.signature`` (parameter names,
kinds, defaults) plus the public attribute sets into a canonical dict
and compares it against the checked-in snapshot, so any signature change
fails CI until the snapshot is updated *deliberately*:

    python tests/test_api_surface.py --update
"""

import inspect
import json
import sys
from pathlib import Path

import repro
import repro.api as api

SNAPSHOT = Path(__file__).parent / "data" / "api_surface.json"

#: the callables whose signatures form the contract
PINNED_FUNCTIONS = ["trace", "decode", "verify", "compare", "bench",
                    "serve", "push", "store", "replay"]

#: facade verb -> CLI subcommand, where the names differ.  ``decode``
#: is surfaced as the read-side verbs; everything else matches 1:1.
VERB_TO_CLI = {"decode": "info"}


def _describe_signature(fn) -> dict:
    out = {}
    for name, p in inspect.signature(fn).parameters.items():
        entry = {"kind": p.kind.name}
        if p.default is not inspect.Parameter.empty:
            entry["default"] = repr(p.default)
        out[name] = entry
    return out


def current_surface() -> dict:
    surface = {
        "functions": {name: _describe_signature(getattr(api, name))
                      for name in PINNED_FUNCTIONS},
        "TraceResult": sorted(
            n for n in dir(api.TraceResult) if not n.startswith("_")),
        "ReplayOptions": sorted(
            n for n in dir(api.ReplayOptions) if not n.startswith("_")),
        "ReplayResult": sorted(
            n for n in dir(api.ReplayResult) if not n.startswith("_")),
        "api.__all__": sorted(api.__all__),
        "repro.__all__": sorted(repro.__all__),
    }
    return surface


def test_api_surface_matches_snapshot():
    assert SNAPSHOT.exists(), (
        f"missing snapshot {SNAPSHOT}; generate it with "
        f"python {Path(__file__).name} --update")
    expected = json.loads(SNAPSHOT.read_text())
    got = current_surface()
    assert got == expected, (
        "repro.api's public surface changed. If this is intentional, "
        "refresh the snapshot with: python tests/test_api_surface.py "
        "--update (and call the change out in the PR)")


def test_facade_is_reexported_from_package_root():
    for name in PINNED_FUNCTIONS:
        if name in ("bench", "store"):
            # these subpackages double as their facade verbs (callable
            # modules), so the submodule import cannot shadow the API
            assert callable(getattr(repro, name))
            continue
        assert getattr(repro, name) is getattr(api, name)
    assert "TracerOptions" in repro.__all__
    assert "VerifyReport" in repro.__all__


def test_legacy_kwargs_warn_but_work():
    import warnings
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = repro.verify("stencil2d", 2, iters=2, jobs=1)
    assert report.ok
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


def test_unknown_loose_kwarg_is_rejected():
    import pytest
    with pytest.raises(TypeError):
        repro.trace("stencil2d", 2, params={"iters": 2}, bogus_option=1)


def test_every_api_verb_has_a_cli_subcommand():
    """The facade and the CLI must not drift apart: every ``repro.api``
    verb is reachable as a CLI subcommand (modulo the documented
    renames) — the structural fix for replay having shipped without a
    verb."""
    from repro.cli import build_parser
    sub_actions = [a for a in build_parser()._actions
                   if isinstance(a, __import__("argparse")
                                 ._SubParsersAction)]
    assert sub_actions, "CLI has no subcommands?"
    subcommands = set(sub_actions[0].choices)
    verbs = [n for n in api.__all__ if callable(getattr(api, n))
             and not isinstance(getattr(api, n), type)]
    missing = [v for v in verbs
               if VERB_TO_CLI.get(v, v) not in subcommands]
    assert not missing, (
        f"api verbs without a CLI subcommand: {missing} "
        f"(CLI has {sorted(subcommands)})")


def test_replay_legacy_kwargs_warn_but_work(tmp_path):
    import warnings
    blob = repro.trace("stencil2d", 2, params={"iters": 2}).trace_bytes
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        res = repro.replay(blob, seed=3)
    assert not res.diverged
    assert res.options.seed == 3
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    # path form reads the file
    path = tmp_path / "t.pilgrim"
    path.write_bytes(blob)
    assert not repro.replay(path).diverged


def test_replay_unknown_loose_kwarg_is_rejected():
    import pytest
    with pytest.raises(TypeError):
        repro.replay(b"", bogus_option=1)


if __name__ == "__main__":
    if "--update" in sys.argv:
        SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT.write_text(
            json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT}")
    else:
        print(json.dumps(current_surface(), indent=2, sort_keys=True))
