"""Workload behaviour tests: each skeleton must exhibit the trace
properties the paper's evaluation attributes to it."""

import pytest

from repro.core import PilgrimTracer
from repro.mpisim.errors import InvalidArgumentError
from repro.scalatrace import ScalaTraceTracer
from repro.workloads import REGISTRY, make


def pilgrim_run(name, nprocs, seed=1, **params):
    tracer = PilgrimTracer()
    make(name, nprocs, **params).run(seed=seed, tracer=tracer)
    return tracer.result


class TestRegistry:
    def test_all_registered(self):
        expected = {"stencil2d", "stencil3d", "npb_is", "npb_mg", "npb_cg",
                    "npb_lu", "npb_bt", "npb_sp", "flash_stirturb",
                    "flash_sedov", "flash_cellular", "milc_su3_rmd",
                    "osu_latency", "osu_bw", "osu_bibw", "osu_multi_lat",
                    "osu_allreduce", "osu_bcast", "osu_alltoall",
                    "osu_allgather", "osu_reduce", "osu_barrier"}
        assert expected <= set(REGISTRY)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make("nope", 4)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_every_workload_runs_small(self, name):
        nprocs = {"npb_bt": 4, "npb_sp": 4, "npb_cg": 4,
                  "osu_multi_lat": 4}.get(name, 4)
        wl = make(name, nprocs)
        res = wl.run(seed=0)
        assert res.app_time > 0
        assert res.nprocs == nprocs


class TestStencilClaims:
    """§4.1: pattern-class counts and constant trace size."""

    def test_2d_has_exactly_9_classes(self):
        for P in (9, 16, 36):
            assert pilgrim_run("stencil2d", P, iters=8) \
                .n_unique_grammars == 9

    def test_2d_fewer_classes_below_3x3(self):
        assert pilgrim_run("stencil2d", 4, iters=8).n_unique_grammars < 9

    def test_3d_has_exactly_27_classes(self):
        for P in (27, 64):
            assert pilgrim_run("stencil3d", P, iters=5) \
                .n_unique_grammars == 27

    def test_trace_size_constant_in_procs(self):
        sizes = [pilgrim_run("stencil2d", P, iters=8).trace_size
                 for P in (9, 25, 64)]
        assert max(sizes) - min(sizes) < 64  # rank-map varint jitter only

    def test_trace_size_constant_in_iters(self):
        # "constant space regardless of ... the number of iterations":
        # only the CST per-signature call-count varints grow (O(log iters))
        sizes = [pilgrim_run("stencil2d", 9, iters=i).trace_size
                 for i in (10, 50, 200)]
        assert max(sizes) - min(sizes) < 150


class TestNPBClaims:
    def test_bt_sp_need_square(self):
        with pytest.raises(InvalidArgumentError):
            make("npb_bt", 6)
        with pytest.raises(InvalidArgumentError):
            make("npb_sp", 8)

    def test_cg_needs_power_of_two(self):
        with pytest.raises(InvalidArgumentError):
            make("npb_cg", 6)

    def test_lu_flat_after_16(self):
        s16 = pilgrim_run("npb_lu", 16, iters=6).trace_size
        s64 = pilgrim_run("npb_lu", 64, iters=6).trace_size
        assert s64 < s16 * 1.7  # LU: flat-ish, as in Fig 5

    def test_is_signatures_linear_in_p(self):
        n8 = pilgrim_run("npb_is", 8, iters=4).n_signatures
        n32 = pilgrim_run("npb_is", 32, iters=4).n_signatures
        assert n32 > n8 * 2  # per-rank alltoallv counts

    def test_mg_classes_grow_slowly(self):
        g8 = pilgrim_run("npb_mg", 8, iters=3).n_unique_grammars
        g64 = pilgrim_run("npb_mg", 64, iters=3).n_unique_grammars
        assert g8 < g64 < 64


class TestFlashClaims:
    def test_stirturb_constant_in_iters(self):
        sizes = [pilgrim_run("flash_stirturb", 8, iters=i).trace_size
                 for i in (20, 60, 120)]
        assert max(sizes) - min(sizes) < 100  # Fig 6f: flat (varint jitter)

    def test_sedov_grows_slowly_with_iters(self):
        s1 = pilgrim_run("flash_sedov", 8, iters=30).trace_size
        s2 = pilgrim_run("flash_sedov", 8, iters=120).trace_size
        assert s1 < s2 < s1 * 3  # Fig 6d: slow growth via drifting source

    def test_cellular_grows_with_refinements(self):
        s1 = pilgrim_run("flash_cellular", 8, iters=20).trace_size
        s2 = pilgrim_run("flash_cellular", 8, iters=60).trace_size
        assert s2 > s1 * 1.5  # Fig 6e: growth with AMR refinement

    def test_stirturb_plateaus_in_procs(self):
        s27 = pilgrim_run("flash_stirturb", 27, iters=10).trace_size
        s64 = pilgrim_run("flash_stirturb", 64, iters=10).trace_size
        assert abs(s64 - s27) < 128


class TestMILCClaims:
    def test_weak_scaling_constant_grammars(self):
        g81 = pilgrim_run("milc_su3_rmd", 81, steps=2, cg_iters=4)
        g256 = pilgrim_run("milc_su3_rmd", 256, steps=2, cg_iters=4)
        assert g81.n_unique_grammars == g256.n_unique_grammars == 81
        assert abs(g256.trace_size - g81.trace_size) < 512

    def test_strong_scaling_changes_classes(self):
        dims = (32, 32, 32, 32)
        r16 = pilgrim_run("milc_su3_rmd", 16, steps=2, cg_iters=4,
                          global_dims=dims)
        r256 = pilgrim_run("milc_su3_rmd", 256, steps=2, cg_iters=4,
                           global_dims=dims)
        # local lattice (and so message sizes) change with the partition
        assert r16.n_signatures != r256.n_signatures


class TestScalaTraceComparison:
    def test_scala_linear_pilgrim_flat_stencil(self):
        """Fig 5's headline contrast on a stencil-like code."""
        ps, ss = [], []
        for P in (16, 64):
            r = pilgrim_run("stencil2d", P, iters=8)
            ps.append(r.trace_size)
            st_ = ScalaTraceTracer()
            make("stencil2d", P, iters=8).run(seed=1, tracer=st_)
            ss.append(st_.result.trace_size)
        assert ps[1] < ps[0] * 1.1          # Pilgrim flat
        assert ss[1] < ss[0] * 1.5          # baseline also folds classes
        assert ps[1] < ss[1]                # and Pilgrim is smaller
