"""End-to-end Pilgrim tracer tests: lossless round trips on real
workloads, decoder output, ablation toggles, timing mode."""

import pytest

from repro.core import (PilgrimTracer, TIMING_LOSSY, TraceDecoder,
                        verify_roundtrip)
from repro.mpisim import SimMPI, constants as C, datatypes as dt
from repro.workloads import make


def run_traced(workload, nprocs, seed=1, tracer_kw=None, **params):
    tracer = PilgrimTracer(keep_raw=True, **(tracer_kw or {}))
    make(workload, nprocs, **params).run(seed=seed, tracer=tracer)
    return tracer


WORKLOAD_MATRIX = [
    ("stencil2d", 9, {"iters": 10}),
    ("stencil3d", 8, {"iters": 6}),
    ("osu_latency", 2, {"iters": 4}),
    ("osu_bw", 2, {"iters": 3}),
    ("osu_allreduce", 4, {"iters": 3}),
    ("npb_is", 4, {"iters": 4}),
    ("npb_mg", 8, {"iters": 3}),
    ("npb_cg", 8, {"iters": 4}),
    ("npb_lu", 4, {"iters": 4}),
    ("npb_bt", 4, {"iters": 4}),
    ("npb_sp", 9, {"iters": 4}),
    ("flash_stirturb", 8, {"iters": 6}),
    ("flash_sedov", 8, {"iters": 10}),
    ("flash_cellular", 8, {"iters": 12}),
    ("milc_su3_rmd", 16, {"steps": 2, "cg_iters": 3}),
]


class TestLosslessRoundtrip:
    @pytest.mark.parametrize("workload,nprocs,params", WORKLOAD_MATRIX)
    def test_roundtrip(self, workload, nprocs, params):
        tracer = run_traced(workload, nprocs, **params)
        report = verify_roundtrip(tracer)
        assert report.ok, report.mismatches[:5]
        assert report.total_calls == tracer.result.total_calls

    def test_roundtrip_with_lossy_timing(self):
        tracer = run_traced("flash_sedov", 8, iters=8,
                            tracer_kw={"timing_mode": TIMING_LOSSY})
        assert verify_roundtrip(tracer).ok
        sizes = tracer.result.section_sizes()
        assert sizes["timing_duration"] > 0
        assert sizes["timing_interval"] > 0

    def test_roundtrip_under_nondeterminism(self):
        """Waitsome completion orders differ per seed but every run must
        round-trip exactly."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(512)
            for _ in range(10):
                reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                        for t in range(4)]
                for t in range(4):
                    yield from m.send(buf + 256, 1, dt.DOUBLE, dest=peer,
                                      tag=t)
                done = 0
                while done < 4:
                    idxs, _ = yield from m.waitsome(reqs)
                    done += len(idxs)

        for seed in range(5):
            tracer = PilgrimTracer(keep_raw=True)
            SimMPI(2, seed=seed, tracer=tracer).run(prog)
            assert verify_roundtrip(tracer).ok

    def test_verify_detects_corruption(self):
        tracer = run_traced("stencil2d", 4, iters=5)
        # tamper with the raw stream: verification must fail
        tracer.raw_terms[1][3] = (tracer.raw_terms[1][3] + 1) % \
            len(tracer.csts[1].sigs)
        report = verify_roundtrip(tracer)
        assert not report.ok


class TestDecoder:
    def test_function_histogram_matches_call_count(self):
        tracer = run_traced("stencil2d", 4, iters=7)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        hist = dec.function_histogram()
        assert sum(hist.values()) == tracer.result.total_calls
        assert hist["MPI_Waitall"] == 4 * 7
        assert hist["MPI_Init"] == 4
        assert hist["MPI_Finalize"] == 4

    def test_rank_calls_named_records(self):
        tracer = run_traced("osu_latency", 2, iters=2)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        calls = list(dec.rank_calls(0))
        assert calls[0].fname == "MPI_Init"
        assert calls[-1].fname == "MPI_Finalize"
        sends = [c for c in calls if c.fname == "MPI_Send"]
        assert sends and all("dest" in c.params for c in sends)

    def test_call_count_per_rank(self):
        tracer = run_traced("npb_lu", 4, iters=3)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        total = sum(dec.call_count(r) for r in range(4))
        assert total == dec.call_count() == tracer.result.total_calls

    def test_avg_duration_positive(self):
        tracer = run_traced("osu_allreduce", 4, iters=2)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        allreduce = [c for c in dec.rank_calls(0)
                     if c.fname == "MPI_Allreduce"]
        assert allreduce
        assert all(c.avg_duration >= 0 for c in allreduce)

    def test_materialized_relative_ranks(self):
        def prog(m):
            buf = m.malloc(8)
            me = m.comm_rank()
            n = m.comm_size()
            dest = me + 1 if me < n - 1 else C.PROC_NULL
            src = me - 1 if me > 0 else C.PROC_NULL
            yield from m.send(buf, 1, dt.DOUBLE, dest=dest, tag=1)
            _ = yield from m.recv(buf, 1, dt.DOUBLE, source=src, tag=1)

        tracer = PilgrimTracer(keep_raw=True)
        SimMPI(4, seed=0, tracer=tracer).run(prog)
        dec = TraceDecoder.from_bytes(tracer.result.trace_bytes)
        for rank in range(4):
            sends = [c for c in dec.rank_calls(rank)
                     if c.fname == "MPI_Send"]
            dest = sends[0].materialized()["dest"]
            assert dest == (rank + 1 if rank < 3 else C.PROC_NULL)


class TestAblations:
    def test_relative_ranks_shrink_trace(self):
        with_rel = run_traced("stencil2d", 16, iters=10)
        without = run_traced("stencil2d", 16, iters=10,
                             tracer_kw={"relative_ranks": False})
        assert with_rel.result.n_signatures < without.result.n_signatures
        assert with_rel.result.trace_size < without.result.trace_size
        assert verify_roundtrip(without).ok  # still lossless

    def test_relative_ranks_bound_unique_grammars(self):
        with_rel = run_traced("stencil2d", 16, iters=10)
        without = run_traced("stencil2d", 16, iters=10,
                             tracer_kw={"relative_ranks": False})
        assert with_rel.result.n_unique_grammars == 9
        assert without.result.n_unique_grammars == 16

    def test_cfg_dedup_shrinks_trace(self):
        # 16 ranks but only 9 grammar classes: dedup must pay off
        base = run_traced("stencil2d", 16, iters=10)
        nodedup = run_traced("stencil2d", 16, iters=10,
                             tracer_kw={"cfg_dedup": False})
        assert base.result.n_unique_grammars == 9
        assert nodedup.result.n_unique_grammars == 16
        assert base.result.trace_size < nodedup.result.trace_size
        assert verify_roundtrip(nodedup).ok

    def test_loop_detection_same_sizes(self):
        fast = run_traced("npb_lu", 4, iters=6)
        slow = run_traced("npb_lu", 4, iters=6,
                          tracer_kw={"loop_detection": False})
        assert verify_roundtrip(slow).ok
        # identical final grammars => identical trace bytes
        assert fast.result.trace_bytes == slow.result.trace_bytes


class TestOverheadAccounting:
    def test_timers_populated(self):
        tracer = run_traced("npb_mg", 8, iters=3)
        r = tracer.result
        assert r.time_intra > 0
        assert r.time_cst_merge > 0
        assert r.time_cfg_merge > 0
        breakdown = r.overhead_breakdown()
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9

    def test_per_rank_call_counts(self):
        tracer = run_traced("osu_barrier", 4, iters=2)
        r = tracer.result
        assert len(r.per_rank_calls) == 4
        assert sum(r.per_rank_calls) == r.total_calls
