"""ScalaTrace baseline tests: RSD compression, coverage gaps, merging."""

from hypothesis import given, settings, strategies as st

from repro.mpisim import SimMPI, constants as C, datatypes as dt
from repro.scalatrace import (RSDCompressor, SCALATRACE_RECORDED,
                              ScalaTraceTracer, UNRECORDED, expand_entries)
from repro.workloads import make


class TestRSD:
    def _roundtrip(self, sigs, window=32):
        c = RSDCompressor(max_window=window)
        for s in sigs:
            c.append(s)
        assert expand_entries(c.freeze()) == list(sigs)
        return c

    def test_simple_loop_folds(self):
        c = self._roundtrip([("a",), ("b",)] * 20)
        assert c.n_entries == 1
        assert c.entries[0][1] == 20  # loop count

    def test_single_event_run(self):
        c = self._roundtrip([("x",)] * 50)
        assert c.n_entries == 1

    def test_nested_loops(self):
        inner = [("a",), ("b",)] * 5 + [("c",)]
        c = self._roundtrip(inner * 4)
        assert c.n_entries == 1  # power-RSD nesting

    def test_irregular_tail_preserved(self):
        sigs = [("a",), ("b",)] * 8 + [("z",), ("a",)]
        self._roundtrip(sigs)

    def test_window_limits_detection(self):
        body = [(i,) for i in range(10)]
        c_small = RSDCompressor(max_window=4)
        for s in body * 6:
            c_small.append(s)
        c_big = RSDCompressor(max_window=16)
        for s in body * 6:
            c_big.append(s)
        assert c_big.n_entries < c_small.n_entries
        assert expand_entries(c_small.freeze()) == body * 6

    def test_serialize_deterministic(self):
        a = self._roundtrip([("a",), ("b",)] * 7)
        b = self._roundtrip([("a",), ("b",)] * 7)
        assert RSDCompressor.serialize(a.freeze()) == \
            RSDCompressor.serialize(b.freeze())

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3)), max_size=60))
    def test_roundtrip_property(self, sigs):
        self._roundtrip(sigs)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2)), min_size=1, max_size=6),
           st.integers(2, 12))
    def test_loop_roundtrip_property(self, body, reps):
        self._roundtrip(body * reps)


class TestCoverage:
    def test_test_family_not_recorded(self):
        assert "MPI_Testsome" in UNRECORDED
        assert "MPI_Test" in UNRECORDED
        assert "MPI_Waitall" in SCALATRACE_RECORDED

    def test_testsome_calls_missing_from_trace(self):
        """The paper's introduction scenario: the Testsome-driven
        completion order is simply absent from a ScalaTrace trace."""
        def prog(m):
            peer = 1 - m.rank
            buf = m.malloc(256)
            reqs = [m.irecv(buf, 1, dt.DOUBLE, source=peer, tag=t)
                    for t in range(4)]
            for t in range(4):
                yield from m.send(buf + 128, 1, dt.DOUBLE, dest=peer, tag=t)
            done = 0
            while done < 4:
                idxs, _ = yield from m.testsome(reqs)
                done += len(idxs)

        tracer = ScalaTraceTracer()
        SimMPI(2, seed=0, tracer=tracer).run(prog)
        r = tracer.result
        assert r.total_calls > r.recorded_calls  # something was dropped

    def test_memory_pointers_not_collected(self):
        def prog(m):
            buf = m.malloc(64)
            yield from m.send(buf, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)

        tracer = ScalaTraceTracer()
        SimMPI(1, seed=0, tracer=tracer).run(prog)
        from repro.mpisim import funcs as F
        send_spec = F.FUNCS["MPI_Send"]
        events = expand_entries(tracer.compressors[0].freeze())
        send_evt = next(e for e in events if e[0] == send_spec.fid)
        # arity = fid + all params EXCEPT the dropped buf pointer
        assert len(send_evt) == 1 + len(send_spec.params) - 1

    def test_record_waitall_switch(self):
        def prog(m):
            buf = m.malloc(8)
            reqs = [m.isend(buf, 1, dt.DOUBLE, dest=C.PROC_NULL, tag=1)]
            yield from m.waitall(reqs)

        on = ScalaTraceTracer(record_waitall=True)
        SimMPI(1, seed=0, tracer=on).run(prog)
        off = ScalaTraceTracer(record_waitall=False)
        SimMPI(1, seed=0, tracer=off).run(prog)
        assert on.result.recorded_calls == off.result.recorded_calls + 1


class TestInterProcess:
    def test_identical_traces_dedup_with_ranklist(self):
        tracer = ScalaTraceTracer()
        make("stencil2d", 16, iters=8).run(seed=1, tracer=tracer)
        # 16 ranks, 9 boundary classes -> 9 unique traces
        assert tracer.result.n_unique_traces == 9

    def test_size_grows_with_unique_traces(self):
        small = ScalaTraceTracer()
        make("npb_is", 4, iters=4).run(seed=1, tracer=small)
        big = ScalaTraceTracer()
        make("npb_is", 16, iters=4).run(seed=1, tracer=big)
        # IS traces are per-rank unique: size grows superlinearly
        assert big.result.n_unique_traces == 16
        assert big.result.trace_size > 3 * small.result.trace_size


class TestComparative:
    def test_pilgrim_smaller_on_all_workloads(self):
        from repro.core import PilgrimTracer
        for name, P, kw in [("stencil2d", 16, {"iters": 8}),
                            ("npb_lu", 8, {"iters": 6}),
                            ("npb_mg", 8, {"iters": 3}),
                            ("flash_sedov", 8, {"iters": 10})]:
            pt = PilgrimTracer()
            make(name, P, **kw).run(seed=1, tracer=pt)
            st_ = ScalaTraceTracer()
            make(name, P, **kw).run(seed=1, tracer=st_)
            assert pt.result.trace_size < st_.result.trace_size, name
