"""Tests for process groups and Cartesian topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.mpisim import constants as C
from repro.mpisim.errors import InvalidArgumentError
from repro.mpisim.group import Group
from repro.mpisim.topology import CartTopology, dims_create


class TestGroup:
    def test_basic(self):
        g = Group([4, 2, 7])
        assert g.size == 3
        assert g.world_rank(0) == 4
        assert g.rank_of(7) == 2
        assert g.rank_of(5) == C.UNDEFINED
        assert g.contains(2) and not g.contains(3)

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Group([1, 1])

    def test_out_of_range(self):
        with pytest.raises(InvalidArgumentError):
            Group([0, 1]).world_rank(2)

    def test_incl_excl(self):
        g = Group(range(6))
        assert Group(range(6)).incl([5, 0, 3]).ranks == (5, 0, 3)
        assert g.excl([0, 2]).ranks == (1, 3, 4, 5)

    def test_union_order(self):
        a, b = Group([1, 3]), Group([3, 2])
        assert a.union(b).ranks == (1, 3, 2)  # MPI ordering: a then new of b

    def test_intersection_difference(self):
        a, b = Group([1, 2, 3, 4]), Group([4, 2, 9])
        assert a.intersection(b).ranks == (2, 4)
        assert a.difference(b).ranks == (1, 3)

    def test_range_incl(self):
        g = Group(range(10))
        assert g.range_incl([(0, 6, 2)]).ranks == (0, 2, 4, 6)
        assert g.range_incl([(5, 3, -1)]).ranks == (5, 4, 3)
        with pytest.raises(InvalidArgumentError):
            g.range_incl([(0, 2, 0)])

    def test_translate_ranks(self):
        a = Group([10, 11, 12])
        b = Group([12, 10])
        assert a.translate_ranks([0, 1, 2], b) == [1, C.UNDEFINED, 0]
        assert a.translate_ranks([C.PROC_NULL], b) == [C.PROC_NULL]

    def test_compare(self):
        a = Group([1, 2])
        assert a.compare(Group([1, 2])) == C.IDENT
        assert a.compare(Group([2, 1])) == C.SIMILAR
        assert a.compare(Group([1, 3])) == C.UNEQUAL


class TestCartTopology:
    def test_coords_rank_inverse(self):
        t = CartTopology((2, 3, 4), (False, False, False))
        for r in range(t.nnodes):
            assert t.rank_of(t.coords_of(r)) == r

    def test_row_major_ordering(self):
        t = CartTopology((2, 3), (False, False))
        assert t.coords_of(0) == (0, 0)
        assert t.coords_of(1) == (0, 1)
        assert t.coords_of(3) == (1, 0)

    def test_shift_interior(self):
        t = CartTopology((4, 4), (False, False))
        src, dst = t.shift(5, 0, 1)  # rank 5 = (1,1)
        assert (src, dst) == (1, 9)

    def test_shift_nonperiodic_boundary(self):
        t = CartTopology((4,), (False,))
        src, dst = t.shift(0, 0, 1)
        assert src == C.PROC_NULL and dst == 1
        src, dst = t.shift(3, 0, 1)
        assert src == 2 and dst == C.PROC_NULL

    def test_shift_periodic_wrap(self):
        t = CartTopology((4,), (True,))
        src, dst = t.shift(0, 0, 1)
        assert (src, dst) == (3, 1)

    def test_rank_of_periodic_wrap(self):
        t = CartTopology((3, 3), (True, False))
        assert t.rank_of((-1, 0)) == t.rank_of((2, 0))
        assert t.rank_of((0, -1)) == C.PROC_NULL

    def test_invalid(self):
        t = CartTopology((2, 2), (False, False))
        with pytest.raises(InvalidArgumentError):
            t.coords_of(4)
        with pytest.raises(InvalidArgumentError):
            t.shift(0, 2, 1)


class TestDimsCreate:
    @pytest.mark.parametrize("n,nd,expect", [
        (6, 2, (3, 2)), (12, 2, (4, 3)), (8, 3, (2, 2, 2)),
        (16, 2, (4, 4)), (7, 1, (7,)), (24, 3, (4, 3, 2)),
        (1, 2, (1, 1)),
    ])
    def test_balanced(self, n, nd, expect):
        assert dims_create(n, nd) == expect

    def test_non_increasing(self):
        for n in (30, 64, 100, 210):
            d = dims_create(n, 3)
            assert tuple(sorted(d, reverse=True)) == d

    def test_product(self):
        for n in range(1, 65):
            d = dims_create(n, 3)
            p = 1
            for x in d:
                p *= x
            assert p == n

    def test_fixed_entries_preserved(self):
        assert dims_create(12, 2, [3, 0]) == (3, 4)

    def test_incompatible_fixed(self):
        with pytest.raises(InvalidArgumentError):
            dims_create(12, 2, [5, 0])
        with pytest.raises(InvalidArgumentError):
            dims_create(12, 2, [3, 5])

    @given(st.integers(1, 512), st.integers(1, 4))
    def test_product_property(self, n, nd):
        d = dims_create(n, nd)
        p = 1
        for x in d:
            p *= x
        assert p == n and len(d) == nd
