"""The batched columnar hot path is a pure accelerator.

``TracerOptions.batch_size`` and the ``record_batch`` array entry must
be invisible everywhere except the clock: byte-identical traces against
the classic per-call path across workload families, process counts,
timing modes, the parallel finalize, and mid-batch memory-watermark
spills.  Plus the bench plumbing that measures the batched path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import run_benchmark
from repro.bench.capture import CapturedRun
from repro.core.backends import TracerOptions, make_tracer
from repro.mpisim.hooks import TracerHooks
from repro.workloads import make

FAMILIES = ("stencil2d", "osu_latency", "npb_mg", "flash_sedov",
            "milc_su3_rmd")


def _trace_bytes(family: str, nprocs: int, seed: int, *,
                 batch_size: int = 1, lossy: bool = False, jobs: int = 1,
                 watermark=None) -> bytes:
    tracer = make_tracer("pilgrim", TracerOptions(
        lossy_timing=lossy, jobs=jobs, batch_size=batch_size,
        memory_watermark=watermark))
    make(family, nprocs).run(seed=seed, tracer=tracer)
    return tracer.result.trace_bytes


class TestBatchedByteIdentity:
    @settings(max_examples=8, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           nprocs=st.sampled_from([2, 4]),
           seed=st.integers(0, 2**16),
           lossy=st.booleans(),
           batch_size=st.sampled_from([3, 64, 256]))
    def test_batched_trace_is_byte_identical(self, family, nprocs, seed,
                                             lossy, batch_size):
        a = _trace_bytes(family, nprocs, seed, batch_size=batch_size,
                         lossy=lossy)
        b = _trace_bytes(family, nprocs, seed, batch_size=1, lossy=lossy)
        assert a == b

    @pytest.mark.parametrize("family", ["stencil2d", "milc_su3_rmd"])
    def test_identical_under_parallel_finalize(self, family):
        a = _trace_bytes(family, 4, 7, batch_size=256, jobs=2)
        b = _trace_bytes(family, 4, 7, batch_size=1, jobs=1)
        assert a == b

    def test_watermark_spill_mid_batch(self):
        # a watermark far below the batch size forces spills at flush
        # time while later calls are still streaming into the buffer;
        # freeze() re-splices the parts, so bytes must not change
        tracer = make_tracer("pilgrim", TracerOptions(
            batch_size=64, memory_watermark=50))
        make("stencil2d", 4).run(seed=5, tracer=tracer)
        assert any(rc.watermark_spills > 0 for rc in tracer.ranks)
        plain = _trace_bytes("stencil2d", 4, 5, batch_size=1)
        assert tracer.result.trace_bytes == plain
        # and the watermark alone (batched vs not) is also invisible
        assert _trace_bytes("stencil2d", 4, 5, batch_size=1,
                            watermark=50) == plain

    def test_batch_size_one_matches_default(self):
        assert _trace_bytes("osu_latency", 2, 1, batch_size=1) == \
            _trace_bytes("osu_latency", 2, 1)


class TestRecordBatchEntry:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_replay_batched_matches_replay(self, family):
        cap = CapturedRun.record(family, 4, seed=2)
        scalar = make_tracer("pilgrim", TracerOptions())
        cap.replay(scalar)
        batched = make_tracer("pilgrim", TracerOptions(batch_size=256))
        cap.replay_batched(batched, batch_size=256)
        assert batched.finalize().trace_bytes == \
            scalar.finalize().trace_bytes

    def test_record_batch_counts_calls(self):
        cap = CapturedRun.record("osu_latency", 2, seed=3)
        tracer = make_tracer("pilgrim", TracerOptions(batch_size=32))
        cap.replay_batched(tracer, batch_size=32)
        tracer.finalize()
        assert tracer.total_calls == cap.n_calls

    def test_partial_tail_flushed_by_finalize(self):
        # fewer calls than batch_size: everything still lands via the
        # finalize-time flush
        cap = CapturedRun.record("osu_latency", 2, seed=3)
        tracer = make_tracer("pilgrim", TracerOptions(
            batch_size=1 << 20))
        cap.replay_batched(tracer, batch_size=64)
        assert any(rc._batch_n > 0 for rc in tracer.ranks)
        plain = make_tracer("pilgrim", TracerOptions())
        cap.replay(plain)
        assert tracer.finalize().trace_bytes == \
            plain.finalize().trace_bytes

    def test_default_hook_unrolls_to_on_call(self):
        # a hooks subclass that only implements on_call gets the array
        # entry for free via the base-class unroll
        calls: list[tuple] = []

        class Recorder(TracerHooks):
            def on_call(self, rank, fname, args, t0, t1):
                calls.append((rank, fname, t0, t1))

        Recorder().record_batch(3, ["MPI_Send", "MPI_Recv"],
                                [{"a": 1}, {"b": 2}],
                                [0.5, 1.5], [1.0, 2.0])
        assert calls == [(3, "MPI_Send", 0.5, 1.0),
                         (3, "MPI_Recv", 1.5, 2.0)]

    def test_batched_ops_preserve_per_rank_order(self):
        cap = CapturedRun.record("stencil2d", 4, seed=1)
        per_rank: dict[int, list[str]] = {}
        for ev in cap.events:
            if ev[0] == 0:
                per_rank.setdefault(ev[1], []).append(ev[2])
        replayed: dict[int, list[str]] = {}
        for op in cap._batched_ops(64):
            if op[0] == "b":
                replayed.setdefault(op[1], []).extend(op[3])
        assert replayed == per_rank


class TestBenchPlumbing:
    def test_hotpath_bench_emits_batched_metrics(self):
        doc = run_benchmark("hotpath", repeats=1, warmup=0, params={
            "families": ["osu_latency"], "nprocs": 2, "batch_size": 8})
        m = doc["metrics"]
        assert "osu_latency.batched_us_per_call" in m
        assert "osu_latency.batched_over_cached" in m
        assert m["osu_latency.batched_us_per_call"] > 0
        assert doc["params"]["batch_size"] == 8
