"""Tests for id pools, object tables, and per-signature request pools."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.symbolic import IdPool, ObjectIdTable, RequestIdAllocator


class TestIdPool:
    def test_sequential_when_nothing_freed(self):
        p = IdPool()
        assert [p.acquire() for _ in range(4)] == [0, 1, 2, 3]

    def test_lowest_free_id_reused(self):
        p = IdPool()
        for _ in range(5):
            p.acquire()
        p.release(1)
        p.release(3)
        assert p.acquire() == 1  # smallest freed first
        assert p.acquire() == 3
        assert p.acquire() == 5

    def test_high_water_counts_distinct_ids(self):
        p = IdPool()
        for _ in range(3):
            i = p.acquire()
            p.release(i)
        # alloc/free loop reuses id 0: the paper's "only a small number of
        # ids are used" observation
        assert p.high_water == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), max_size=80))
    def test_never_hands_out_live_id(self, ops):
        p = IdPool()
        live = set()
        for acquire in ops:
            if acquire or not live:
                i = p.acquire()
                assert i not in live
                live.add(i)
            else:
                i = min(live)
                live.discard(i)
                p.release(i)


class TestObjectIdTable:
    def test_assign_and_lookup(self):
        t = ObjectIdTable()
        assert t.lookup("x") is None
        assert t.lookup_or_assign("x") == 0
        assert t.lookup("x") == 0
        assert t.lookup_or_assign("y") == 1

    def test_double_assign_rejected(self):
        t = ObjectIdTable()
        t.assign("x")
        with pytest.raises(KeyError):
            t.assign("x")

    def test_release_recycles(self):
        t = ObjectIdTable()
        t.lookup_or_assign("a")
        t.lookup_or_assign("b")
        assert t.release("a") == 0
        assert t.lookup_or_assign("c") == 0  # recycled
        assert t.live_count == 2
        assert t.high_water == 2

    def test_create_free_loop_stays_small(self):
        # the same-order-creation property across ranks relies on this
        t = ObjectIdTable()
        for i in range(100):
            key = f"obj{i}"
            assert t.lookup_or_assign(key) == 0
            t.release(key)
        assert t.high_water == 1


class TestRequestIdAllocator:
    def test_per_signature_pools_stable_ids(self):
        """The §3.4.3 scenario: three irecvs with distinct signatures get
        ids independent of completion order."""
        a = RequestIdAllocator()
        for it in range(5):
            r1, r2, r3 = object(), object(), object()
            s1 = a.on_create(id(r1), ("irecv", 1))
            s2 = a.on_create(id(r2), ("irecv", 2))
            s3 = a.on_create(id(r3), ("irecv", 3))
            assert (s1, s2, s3) == ((0, 0), (1, 0), (2, 0))
            # release in a different order each iteration
            order = [(r1, r2, r3), (r3, r1, r2), (r2, r3, r1),
                     (r3, r2, r1), (r1, r3, r2)][it]
            for r in order:
                a.on_release(id(r))

    def test_single_pool_unstable_by_contrast(self):
        """With ONE pool (the baseline's scheme) ids depend on completion
        order — demonstrating the defect the paper fixes."""
        a = RequestIdAllocator()
        shared = ("*",)
        r1, r2 = object(), object()
        a.on_create(id(r1), shared)
        a.on_create(id(r2), shared)
        a.on_release(id(r2))   # r2 completes first
        a.on_release(id(r1))
        r3, r4 = object(), object()
        s3 = a.on_create(id(r3), shared)
        s4 = a.on_create(id(r4), shared)
        assert (s3, s4) == ((0, 0), (0, 1))  # stable here because both freed
        # now interleave: only r3 freed before next creation
        a.on_release(id(r3))
        r5 = object()
        assert a.on_create(id(r5), shared) == (0, 0)
        # r4 still live with id (0,1): a second live request of the same
        # signature now aliases slot 0 across iterations

    def test_same_signature_concurrent_requests_distinct_slots(self):
        a = RequestIdAllocator()
        sig = ("isend", 42)
        rs = [object() for _ in range(4)]
        slots = [a.on_create(id(r), sig) for r in rs]
        assert slots == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_release_unknown_ignored(self):
        a = RequestIdAllocator()
        assert a.on_release(12345) is None

    def test_lookup(self):
        a = RequestIdAllocator()
        r = object()
        sym = a.on_create(id(r), ("x",))
        assert a.lookup(id(r)) == sym
        a.on_release(id(r))
        assert a.lookup(id(r)) is None

    def test_pool_index_by_first_appearance(self):
        a = RequestIdAllocator()
        r1, r2, r3 = object(), object(), object()
        assert a.on_create(id(r1), ("b",))[0] == 0
        assert a.on_create(id(r2), ("a",))[0] == 1
        assert a.on_create(id(r3), ("b",))[0] == 0
        assert a.n_pools == 2
