"""Command-line interface: ``python -m repro <command>``.

The workflows a downstream user actually runs:

* ``trace``    — run a workload under a tracer backend, write the trace
* ``verify``   — differential lossless round-trip check on workload(s)
* ``fuzz``     — corruption-fuzz the decoder (structured errors only)
* ``info``     — summarize a trace file (sizes, signatures, grammars)
* ``dump``     — decode a trace to flat text (or OTF-style events)
* ``replay``   — re-execute a trace on a fresh simulated world
* ``miniapp``  — generate a proxy mini-app from a trace
* ``bench``    — run registered microbenchmarks, optionally gating a
  stored baseline (``--compare ... --max-regression PCT``)
* ``compare``  — Pilgrim vs the ScalaTrace baseline on one workload
* ``stats``    — render a ``--metrics`` JSONL dump as paper-style tables
* ``workloads``— list available workloads
* ``backends`` — list registered tracer backends
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from .analysis import fmt_kb, print_table, run_experiment
from .core import (TraceDecoder, TraceFormatError, TracerOptions,
                   available_backends, make_tracer, run_fuzz,
                   verify_roundtrip, verify_workload)
from .core.export import to_text, write_otf_text
from .obs import EventLog, MetricsRegistry, write_metrics_jsonl
from .replay import generate_miniapp, replay_trace, structurally_equal
from .workloads import REGISTRY, make


def _parse_params(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --param {pair!r}; expected key=value")
        k, v = pair.split("=", 1)
        try:
            out[k] = int(v)
        except ValueError:
            out[k] = v
    return out


def cmd_trace(args) -> int:
    metrics = MetricsRegistry() if args.metrics else None
    events = EventLog() if args.events else None
    if args.verify and args.backend != "pilgrim":
        raise SystemExit(f"--verify requires the pilgrim backend, "
                         f"not {args.backend!r}")
    tracer = make_tracer(args.backend, TracerOptions(
        lossy_timing=args.lossy_timing, keep_raw=args.verify,
        jobs=args.jobs, metrics=metrics))
    wl = make(args.workload, args.procs, **_parse_params(args.param))
    wl.run(seed=args.seed, tracer=tracer, events=events)
    r = tracer.result
    with open(args.output, "wb") as fh:
        fh.write(r.trace_bytes)
    detail = "".join(
        f", {getattr(r, attr)} {label}"
        for attr, label in (("n_signatures", "signatures"),
                            ("n_unique_grammars", "unique grammars"))
        if hasattr(r, attr))
    print(f"traced {args.workload} on {args.procs} ranks with "
          f"{args.backend}: {r.total_calls} calls{detail}")
    print(f"wrote {r.trace_size} bytes to {args.output}")
    if metrics is not None:
        # one self-contained dump: metrics plus any captured events
        write_metrics_jsonl(args.metrics, metrics,
                            meta={"command": "trace",
                                  "workload": args.workload,
                                  "nprocs": args.procs,
                                  "seed": args.seed},
                            events=events.records() if events else None)
        print(f"wrote metrics to {args.metrics} (render: "
              f"repro stats {args.metrics})")
    if events is not None and args.events != args.metrics:
        events.write(args.events)
        print(f"wrote {len(events)} runtime events to {args.events}"
              + (f" ({events.dropped} dropped)" if events.dropped else ""))
    if args.verify:
        report = verify_roundtrip(tracer)
        print(report.summary())
        if not report.ok:
            for m in report.mismatches:
                print(f"  {m}")
            return 1
    return 0


def cmd_verify(args) -> int:
    """Differential round-trip verification of one or more workloads."""
    rows = []
    failed = False
    for name in args.workload:
        report = verify_workload(name, args.procs, seed=args.seed,
                                 lossy_timing=args.lossy_timing,
                                 jobs=args.jobs,
                                 **_parse_params(args.param))
        rows.append((name, report.nprocs, report.total_calls,
                     fmt_kb(report.trace_bytes),
                     "OK" if report.ok else "FAILED"))
        if not report.ok:
            failed = True
            print(f"{name}: {report.summary()}")
            for m in report.mismatches:
                print(f"  {m}")
    print_table("lossless round-trip verification",
                ["workload", "ranks", "calls", "trace", "result"], rows)
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    """Corruption-fuzz the decoder against a freshly traced workload."""
    tracer = make_tracer("pilgrim", TracerOptions(
        lossy_timing=args.lossy_timing))
    make(args.workload, args.procs, **_parse_params(args.param)).run(
        seed=args.seed, tracer=tracer)
    blob = tracer.result.trace_bytes
    report = run_fuzz(blob, seed=args.fuzz_seed, n_random=args.mutations)
    print(f"{args.workload} ({args.procs} ranks, {len(blob)} byte trace)")
    print(report.summary())
    for failure in report.failures[:20]:
        print(f"  {failure}")
    return 0 if report.ok else 1


def cmd_info(args) -> int:
    blob = open(args.trace, "rb").read()
    dec = TraceDecoder.from_bytes(blob)
    sizes = dec.trace.section_sizes()
    hist = dict(sorted(dec.function_histogram().items(),
                       key=lambda kv: -kv[1]))
    if args.json:
        print(json.dumps({
            "trace": args.trace,
            "ranks": dec.nprocs,
            "total_calls": dec.call_count(),
            "signatures": len(dec.trace.cst.sigs),
            "unique_grammars": dec.trace.cfg.n_unique,
            "section_bytes": dict(sizes),
            "total_bytes": len(blob),
            "calls_per_function": hist,
        }, indent=2, sort_keys=True))
        return 0
    print_table(f"trace {args.trace}",
                ["field", "value"],
                [("ranks", dec.nprocs),
                 ("total calls", dec.call_count()),
                 ("signatures", len(dec.trace.cst.sigs)),
                 ("unique grammars", dec.trace.cfg.n_unique),
                 *[(f"section {k}", fmt_kb(v)) for k, v in sizes.items()]])
    print_table("calls per function", ["function", "count"],
                list(hist.items()))
    return 0


def cmd_dump(args) -> int:
    blob = open(args.trace, "rb").read()
    ranks = [int(r) for r in args.rank] if args.rank else None
    if args.otf:
        sys.stdout.write(write_otf_text(blob, ranks))
    else:
        sys.stdout.write(to_text(blob, ranks=ranks,
                                 max_calls_per_rank=args.limit))
    return 0


def cmd_replay(args) -> int:
    blob = open(args.trace, "rb").read()
    tracer = make_tracer("pilgrim") if args.check else None
    result = replay_trace(blob, seed=args.seed, tracer=tracer)
    print(f"replayed {result.nprocs} ranks, virtual makespan "
          f"{result.app_time * 1e3:.3f} ms")
    if args.check:
        ok = structurally_equal(blob, tracer.result.trace_bytes)
        print(f"structural fixed point: {'OK' if ok else 'FAILED'}")
        return 0 if ok else 1
    return 0


def cmd_miniapp(args) -> int:
    blob = open(args.trace, "rb").read()
    source = generate_miniapp(blob)
    with open(args.output, "w") as fh:
        fh.write(source)
    print(f"wrote {len(source.splitlines())}-line mini-app to {args.output}")
    print(f"run it with: python {args.output}")
    return 0


def cmd_bench(args) -> int:
    """Run microbenchmarks from the ``repro.bench`` registry."""
    from . import bench
    if args.list:
        for name in bench.available_benchmarks():
            print(f"{name:10s} {bench.REGISTRY[name].description}")
        return 0
    names = args.benchmark or ["hotpath"]
    unknown = [n for n in names if n not in bench.REGISTRY]
    if unknown:
        raise SystemExit(f"repro bench: unknown benchmark(s) {unknown}; "
                         f"known: {bench.available_benchmarks()}")
    baseline = None
    if args.compare:
        with open(args.compare) as fh:
            try:
                baseline = json.load(fh)
            except ValueError as e:
                raise SystemExit(f"repro bench: {args.compare} is not a "
                                 f"benchmark JSON document ({e})")
    params: dict = {"nprocs": args.procs, "seed": args.seed}
    if args.families:
        params["families"] = args.families
    if args.jobs != 1:
        params["jobs"] = args.jobs
    failed = False
    for name in names:
        doc = bench.run_benchmark(name, repeats=args.repeats,
                                  warmup=args.warmup, params=dict(params))
        paths = bench.write_results(doc, args.output_dir)
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print_table(
                f"benchmark {name} ({args.repeats} repeats, "
                f"{args.warmup} warmup)",
                ["metric", "median", "iqr"],
                [(m, f"{s['median']:.4g}", f"{s['iqr']:.3g}")
                 for m, s in doc["stats"].items()])
        print("wrote " + ", ".join(str(p) for p in paths))
        if baseline is not None:
            if baseline.get("benchmark") not in (None, name):
                print(f"note: baseline {args.compare} is for benchmark "
                      f"{baseline['benchmark']!r}")
            regressions, missing = bench.compare_results(
                doc, baseline, args.max_regression)
            for r in regressions:
                print(f"REGRESSION {r}")
            for m in missing:
                print(f"MISSING baseline metric {m} absent from this run")
            if regressions or missing:
                failed = True
            else:
                print(f"{name}: within {args.max_regression:g}% of "
                      f"{args.compare}")
    return 1 if failed else 0


def cmd_compare(args) -> int:
    metrics = MetricsRegistry() if args.metrics else None
    rows = [run_experiment(args.workload, P, seed=args.seed, baseline=False,
                           metrics=metrics, jobs=args.jobs,
                           **_parse_params(args.param))
            for P in args.procs]
    if metrics is not None:
        write_metrics_jsonl(args.metrics, metrics,
                            meta={"command": "compare",
                                  "workload": args.workload,
                                  "procs": args.procs,
                                  "seed": args.seed})
    if args.json:
        print(json.dumps([dataclasses.asdict(r) for r in rows],
                         indent=2, sort_keys=True))
        return 0
    print_table(
        f"{args.workload}: Pilgrim vs ScalaTrace baseline",
        ["procs", "MPI calls", "ScalaTrace", "Pilgrim", "ratio"],
        [(r.nprocs, r.mpi_calls, fmt_kb(r.scalatrace_size),
          fmt_kb(r.pilgrim_size),
          f"{r.scalatrace_size / max(r.pilgrim_size, 1):.1f}x")
         for r in rows])
    if metrics is not None:
        print(f"wrote metrics to {args.metrics} (render: "
              f"repro stats {args.metrics})")
    return 0


def cmd_stats(args) -> int:
    from .analysis import render_stats, summarize_metrics
    from .obs import read_metrics_jsonl
    records = []
    for path in args.file:
        try:
            records.extend(read_metrics_jsonl(path))
        except OSError as e:
            raise SystemExit(f"repro stats: cannot read {path}: "
                             f"{e.strerror or e}")
        except ValueError as e:
            raise SystemExit(f"repro stats: {path} is not metrics JSONL "
                             f"({e})")
    if not records:
        print("no metric or event records found")
        return 0
    summary = summarize_metrics(records)
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
        return 0
    render_stats(summary, source=", ".join(args.file),
                 top_events=args.events)
    return 0


def cmd_analyze(args) -> int:
    from .analysis.insights import (call_time_share, comm_matrix,
                                    load_balance, message_size_histogram)
    blob = open(args.trace, "rb").read()
    mat = comm_matrix(blob)
    print_table("p2p traffic", ["metric", "value"],
                [("total messages", mat.total_messages),
                 ("total bytes", fmt_kb(mat.total_bytes))])
    if mat.total_messages:
        print_table("hottest pairs", ["src", "dst", "bytes"],
                    [(s_, d, fmt_kb(b))
                     for s_, d, b in mat.hottest_pairs(args.top)])
        print_table("message sizes (log2 buckets)", ["2^k bytes", "messages"],
                    list(message_size_histogram(blob).items()))
    print_table("call time share", ["function", "share"],
                [(f, f"{100 * v:.1f}%")
                 for f, v in list(call_time_share(blob).items())[:10]])
    lb = load_balance(blob)
    print_table("load balance", ["metric", "value"],
                [("imbalance (max/mean calls)", f"{lb.imbalance:.3f}"),
                 ("max rank calls", max(lb.per_rank_calls)),
                 ("min rank calls", min(lb.per_rank_calls))])
    return 0


def cmd_workloads(args) -> int:
    for name in sorted(REGISTRY):
        print(name)
    return 0


def cmd_backends(args) -> int:
    for name in available_backends():
        print(name)
    return 0


def _add_jobs_flag(p) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the finalize tree "
                        "reduction (byte-identical to serial; default 1)")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace",
                       help="run a workload under a tracer backend")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, default=16)
    p.add_argument("-o", "--output", default="trace.pilgrim")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    p.add_argument("--backend", default="pilgrim",
                   choices=available_backends(),
                   help="tracer backend from the repro.core.backends "
                        "registry (default: pilgrim)")
    _add_jobs_flag(p)
    p.add_argument("--verify", action="store_true",
                   help="run the lossless round-trip check")
    p.add_argument("--metrics", metavar="FILE",
                   help="enable self-instrumentation; dump the metrics "
                        "registry (and events, if captured) as JSONL")
    p.add_argument("--events", metavar="FILE",
                   help="enable the runtime event log; dump it as JSONL")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("verify",
                       help="differentially verify lossless round-trips")
    p.add_argument("workload", nargs="+",
                   help="workload name(s) to trace and verify")
    p.add_argument("-n", "--procs", type=int, default=16)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    _add_jobs_flag(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("fuzz",
                       help="corruption-fuzz the decoder (structured "
                            "errors only, never crashes)")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fuzz-seed", type=int, default=0)
    p.add_argument("--mutations", type=int, default=400,
                   help="random mutations on top of the boundary set")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("info", help="summarize a trace file")
    p.add_argument("trace")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of tables")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("dump", help="decode a trace to text")
    p.add_argument("trace")
    p.add_argument("--rank", action="append", default=[])
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--otf", action="store_true",
                   help="OTF-style ENTER/LEAVE events instead of calls")
    p.set_defaults(fn=cmd_dump)

    p = sub.add_parser("replay", help="re-execute a trace")
    p.add_argument("trace")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--check", action="store_true",
                   help="re-trace the replay and verify the fixed point")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("miniapp", help="generate a proxy mini-app")
    p.add_argument("trace")
    p.add_argument("-o", "--output", default="miniapp.py")
    p.set_defaults(fn=cmd_miniapp)

    p = sub.add_parser("bench",
                       help="run microbenchmarks, optionally gating "
                            "against a stored baseline")
    p.add_argument("benchmark", nargs="*",
                   help="benchmark name(s); default: hotpath")
    p.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    p.add_argument("--repeats", type=int, default=5,
                   help="timed repetitions per benchmark (default 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup repetitions (default 1)")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--families", nargs="+", metavar="NAME",
                   help="workload families (default: the 5-family "
                        "representative set)")
    _add_jobs_flag(p)
    p.add_argument("--output-dir", default="benchmarks/results",
                   help="where <name>.json lands (default "
                        "benchmarks/results); BENCH_<name>.json is "
                        "always written to the current directory")
    p.add_argument("--compare", metavar="BASELINE.json",
                   help="gate each benchmark's metrics against this "
                        "stored result document")
    p.add_argument("--max-regression", type=float, default=25.0,
                   metavar="PCT",
                   help="allowed slowdown over the baseline before "
                        "exiting nonzero (default 25)")
    p.add_argument("--json", action="store_true",
                   help="print the full result document instead of a "
                        "table")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("compare", help="Pilgrim vs the baseline")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, nargs="+",
                   default=[8, 16, 32])
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--metrics", metavar="FILE",
                   help="profile both tracers; dump the shared registry "
                        "as JSONL")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON rows instead of a table")
    _add_jobs_flag(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("stats",
                       help="render a metrics/events JSONL dump")
    p.add_argument("file", nargs="+",
                   help="JSONL file(s) from --metrics/--events; several "
                        "files are aggregated")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="also show the last N buffered runtime events")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON aggregate instead of tables")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("analyze", help="post-mortem trace analysis")
    p.add_argument("trace")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("workloads", help="list available workloads")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("backends", help="list registered tracer backends")
    p.set_defaults(fn=cmd_backends)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TraceFormatError as e:
        # corrupt/truncated/foreign trace file: a structured one-line
        # diagnosis, not a traceback
        print(f"repro: {type(e).__name__}: {e}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # output piped into head/less that exited early; not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except OSError as e:
        if getattr(e, "filename", None):
            print(f"repro: cannot open {e.filename}: "
                  f"{e.strerror or e}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
