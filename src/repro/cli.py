"""Command-line interface: ``python -m repro <command>``.

The workflows a downstream user actually runs:

* ``trace``    — run a workload under a tracer backend, write the trace
* ``store``    — the content-addressed cross-run trace store
  (``put``/``get``/``ls``/``diff``/``drift``/``pin``/``gc``/``stats``)
* ``verify``   — differential lossless round-trip check on workload(s)
* ``faults``   — describe fault plans / run the chaos recovery matrix
* ``fuzz``     — corruption-fuzz the decoder (structured errors only)
* ``info``     — summarize a trace file (sizes, signatures, grammars)
* ``dump``     — decode a trace to flat text (or OTF-style events)
* ``replay``   — re-execute a trace, as recorded or under what-if
  conditions (``--net``/``--fault-plan``/``--extrapolate-ranks``) with
  a first-divergence report; exit 0 = matched, 1 = diverged, 2 = error
* ``miniapp``  — generate a proxy mini-app from a trace
* ``bench``    — run registered microbenchmarks, optionally gating a
  stored baseline (``--compare ... --max-regression PCT``)
* ``compare``  — Pilgrim vs the ScalaTrace baseline on one workload
* ``stats``    — render a ``--metrics`` JSONL dump as paper-style tables
  (``--spans`` adds the span tree with per-span total/self time)
* ``timeline`` — validate a Chrome trace-event file, or convert a span
  JSONL dump into one
* ``workloads``— list available workloads
* ``backends`` — list registered tracer backends
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from . import api
from .analysis import fmt_kb, print_table, run_experiment
from .core import (TraceFormatError, TracerOptions, available_backends,
                   make_tracer, run_fuzz, verify_roundtrip)
from .core.export import to_text, write_otf_text
from .obs import EventLog, MetricsRegistry, write_metrics_jsonl
from .replay import generate_miniapp, replay_trace, structurally_equal
from .resilience import FaultPlan
from .workloads import REGISTRY, make


def _parse_params(pairs: list[str]) -> dict:
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --param {pair!r}; expected key=value")
        k, v = pair.split("=", 1)
        try:
            out[k] = int(v)
        except ValueError:
            out[k] = v
    return out


def _fault_plan_arg(args):
    """The --fault-plan/--fault-seed pair as a parsed FaultPlan (None
    when injection was not requested)."""
    if not getattr(args, "fault_plan", None):
        return None
    return FaultPlan.parse(args.fault_plan,
                           seed=getattr(args, "fault_seed", 0))


def cmd_trace(args) -> int:
    # span telemetry rides the metrics registry, so --timeline/--spans
    # imply an enabled registry even without a --metrics dump path
    want_telemetry = bool(args.metrics or args.timeline or args.spans)
    metrics = MetricsRegistry() if want_telemetry else None
    events = EventLog() if args.events else None
    if args.verify and args.backend != "pilgrim":
        raise SystemExit(f"--verify requires the pilgrim backend, "
                         f"not {args.backend!r}")
    result = api.trace(
        args.workload, args.procs, backend=args.backend, seed=args.seed,
        params=_parse_params(args.param), events=events,
        fault_plan=_fault_plan_arg(args),
        options=TracerOptions(
            lossy_timing=args.lossy_timing, keep_raw=args.verify,
            jobs=args.jobs, metrics=metrics,
            memory_watermark=args.watermark))
    r = result.result
    result.write(args.output)
    manifest_path = f"{args.output}.manifest.json"
    detail = "".join(
        f", {getattr(r, attr)} {label}"
        for attr, label in (("n_signatures", "signatures"),
                            ("n_unique_grammars", "unique grammars"))
        if hasattr(r, attr))
    print(f"traced {args.workload} on {args.procs} ranks with "
          f"{args.backend}: {r.total_calls} calls{detail}")
    print(f"wrote {r.trace_size} bytes to {args.output} "
          f"(manifest: {manifest_path})")
    if result.fired_faults:
        print(f"injected {len(result.fired_faults)} fault(s): "
              + ", ".join(result.fired_faults))
    if result.degraded:
        print(f"DEGRADED: {result.salvage.summary()}")
        if not args.allow_degraded:
            print("(pass --allow-degraded to accept a partial trace)")
            return 1
    if args.metrics:
        # one self-contained dump: metrics plus any captured events and
        # the run's span tree
        write_metrics_jsonl(args.metrics, metrics,
                            meta={"command": "trace",
                                  "workload": args.workload,
                                  "nprocs": args.procs,
                                  "seed": args.seed},
                            events=events.records() if events else None,
                            spans=result.spans or None)
        print(f"wrote metrics to {args.metrics} (render: "
              f"repro stats {args.metrics})")
    if args.timeline:
        n = result.write_timeline(args.timeline)
        print(f"wrote {n} timeline events to {args.timeline} "
              f"(open in Perfetto / chrome://tracing)")
    if args.spans:
        n = result.write_spans(args.spans)
        print(f"wrote {n} span lines to {args.spans} (render: "
              f"repro stats --spans {args.spans})")
    if events is not None and args.events != args.metrics:
        events.write(args.events)
        print(f"wrote {len(events)} runtime events to {args.events}"
              + (f" ({events.dropped} dropped)" if events.dropped else ""))
    if args.verify:
        report = verify_roundtrip(result.tracer,
                                  allow_degraded=args.allow_degraded)
        print(report.summary())
        if not report.ok:
            for m in report.mismatches:
                print(f"  {m}")
            return 1
    return 0


def cmd_verify(args) -> int:
    """Differential round-trip verification of one or more workloads."""
    rows = []
    failed = False
    for name in args.workload:
        report = api.verify(name, args.procs, seed=args.seed,
                            options=TracerOptions(
                                lossy_timing=args.lossy_timing,
                                jobs=args.jobs),
                            fault_plan=_fault_plan_arg(args),
                            allow_degraded=args.allow_degraded,
                            **_parse_params(args.param))
        status = "OK" if report.ok else "FAILED"
        if report.ok and "salvage_accounting" in report.checks:
            status = "OK (degraded)"
        rows.append((name, report.nprocs, report.total_calls,
                     fmt_kb(report.trace_bytes), status))
        if not report.ok:
            failed = True
            print(f"{name}: {report.summary()}")
            for m in report.mismatches:
                print(f"  {m}")
    print_table("lossless round-trip verification",
                ["workload", "ranks", "calls", "trace", "result"], rows)
    return 1 if failed else 0


def cmd_faults(args) -> int:
    """Describe fault plans and run the chaos recovery matrix."""
    from .resilience.chaos import run_fault_matrix
    plans = None
    if args.plan:
        plans = [FaultPlan.parse(p, seed=args.fault_seed)
                 for p in args.plan]
    elif args.plans:
        plans = [FaultPlan.random(args.plan_seed + i, nprocs=args.procs)
                 for i in range(args.plans)]
    if not args.chaos:
        # describe-only mode: print what each plan would inject
        if plans is None:
            raise SystemExit("repro faults: give PLAN strings, --plans N "
                             "to sample random plans, or --chaos to run "
                             "the recovery matrix")
        for plan in plans:
            print(plan.describe())
        return 0
    cases = run_fault_matrix(args.chaos, nprocs=args.procs,
                             n_plans=args.plans or 8, seed=args.seed,
                             base_plan_seed=args.plan_seed, plans=plans)
    for case in cases:
        print(case.describe())
    bad = [c for c in cases if not c.ok]
    recovered = sum(c.outcome == "recovered" for c in cases)
    degraded = sum(c.outcome == "degraded" for c in cases)
    print(f"chaos matrix: {len(cases)} cases, {recovered} recovered "
          f"byte-identical, {degraded} degraded with conserving salvage, "
          f"{len(bad)} FAILED")
    return 1 if bad else 0


def cmd_fuzz(args) -> int:
    """Corruption-fuzz the decoder against a freshly traced workload
    (or, with ``--frames``, the ingest frame protocol against a
    recorded client session stream)."""
    if args.frames:
        from .ingest.fuzz import build_frame_corpus, run_frame_fuzz
        blob = build_frame_corpus(args.workload, args.procs,
                                  seed=args.seed,
                                  lossy_timing=args.lossy_timing)
        report = run_frame_fuzz(blob, seed=args.fuzz_seed,
                                n_random=args.mutations)
        print(f"{args.workload} ({args.procs} ranks, {len(blob)} byte "
              f"ingest stream)")
        print(report.summary())
        for failure in report.failures[:20]:
            print(f"  {failure}")
        return 0 if report.ok else 1
    if args.store:
        import shutil
        import tempfile

        from .store import TraceStore
        from .store.fuzz import run_store_fuzz
        blob = api.trace(
            args.workload, args.procs, seed=args.seed,
            params=_parse_params(args.param),
            options=TracerOptions(
                lossy_timing=args.lossy_timing)).trace_bytes
        root = tempfile.mkdtemp(prefix="repro-store-fuzz-")
        try:
            st = TraceStore(root)
            put = st.put(blob, args.workload)
            report = run_store_fuzz(st, put.run_id, seed=args.fuzz_seed,
                                    n_random=args.mutations)
        finally:
            shutil.rmtree(root, ignore_errors=True)
        print(f"{args.workload} ({args.procs} ranks, "
              f"{len(put.record.to_bytes())} byte run manifest)")
        print(report.summary())
        for failure in report.failures[:20]:
            print(f"  {failure}")
        return 0 if report.ok else 1
    blob = api.trace(
        args.workload, args.procs, seed=args.seed,
        params=_parse_params(args.param),
        options=TracerOptions(lossy_timing=args.lossy_timing)).trace_bytes
    if args.replay:
        from .replay import run_replay_fuzz
        report = run_replay_fuzz(blob, seed=args.fuzz_seed,
                                 n_random=args.mutations)
        print(f"{args.workload} ({args.procs} ranks, {len(blob)} byte "
              f"trace, replay mode)")
        print(report.summary())
        for failure in report.failures[:20]:
            print(f"  {failure}")
        return 0 if report.ok else 1
    report = run_fuzz(blob, seed=args.fuzz_seed, n_random=args.mutations,
                      salvage=args.salvage)
    print(f"{args.workload} ({args.procs} ranks, {len(blob)} byte trace"
          + (", salvage mode" if args.salvage else "") + ")")
    print(report.summary())
    for failure in report.failures[:20]:
        print(f"  {failure}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the streaming trace-ingest service in the foreground."""
    import asyncio

    from .ingest.server import IngestServer

    store = api.store(args.store) if args.store else None
    server = IngestServer(args.host, args.port,
                          checkpoint_dir=args.checkpoint_dir,
                          checkpoint_every=args.checkpoint_every,
                          store=store)

    async def _run() -> None:
        await server.start()
        # flushed immediately so scripts (and the CI smoke job) can
        # scrape the bound port from the first line of output
        print(f"repro ingest listening on {server.host}:{server.port}",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro ingest: shutting down")
    return 0


def cmd_push(args) -> int:
    """Trace a workload locally, streaming partial shards to a server."""
    res = api.push(args.workload, args.procs,
                   host=args.host, port=args.port, tenant=args.tenant,
                   seed=args.seed,
                   options=TracerOptions(
                       lossy_timing=args.lossy_timing,
                       memory_watermark=args.watermark),
                   chunk_calls=args.chunk_calls,
                   params=_parse_params(args.param))
    print(f"{args.workload} ({args.procs} ranks, tenant {args.tenant!r}): "
          f"{res.total_calls} calls in {res.chunks_sent} chunks -> "
          f"{res.trace_size} byte trace"
          + (f", {res.reconnects} reconnects" if res.reconnects else ""))
    if args.check:
        ref = api.trace(args.workload, args.procs, seed=args.seed,
                        params=_parse_params(args.param),
                        options=TracerOptions(
                            lossy_timing=args.lossy_timing,
                            memory_watermark=args.watermark)).trace_bytes
        ok = ref == res.trace_bytes
        print("byte-identity vs in-process run: "
              + ("OK" if ok else "FAILED"))
        if not ok:
            return 1
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(res.trace_bytes)
        print(f"wrote {args.output}")
    return 0


def cmd_store(args) -> int:
    """The content-addressed cross-run trace store."""
    st = api.store(args.root)
    verb = args.store_verb
    if verb == "put":
        with open(args.trace, "rb") as fh:
            blob = fh.read()
        put = st.put(blob, args.workload, tenant=args.tenant)
        if args.json:
            print(json.dumps({
                "run_id": put.run_id,
                "workload": put.record.workload,
                "sections": len(put.record.sections),
                "total_bytes": put.record.total_bytes,
                "new_bytes": put.record.new_bytes,
                "reused_bytes": put.record.reused_bytes,
                "reused_fraction": round(put.record.reused_fraction, 4),
            }, indent=2, sort_keys=True))
        else:
            print(put.summary())
        return 0
    if verb == "get":
        blob = st.get(args.ref, verify=not args.no_verify)
        if args.output:
            with open(args.output, "wb") as fh:
                fh.write(blob)
            print(f"wrote {len(blob)} bytes to {args.output}")
        else:
            sys.stdout.buffer.write(blob)
        return 0
    if verb == "ls":
        records = st.ls(args.workload)
        if args.json:
            print(json.dumps([
                {"run_id": r.run_id, "workload": r.workload,
                 "tenant": r.tenant, "nprocs": r.nprocs,
                 "parent": r.parent or None,
                 "golden": st.index.golden(r.workload) == r.run_id,
                 "total_bytes": r.total_bytes,
                 "reused_fraction": round(r.reused_fraction, 4)}
                for r in records], indent=2, sort_keys=True))
        elif records:
            print_table(
                f"trace store {st.root}",
                ["run", "workload", "ranks", "bytes", "dedup", "golden"],
                [(r.run_id, r.workload, r.nprocs, fmt_kb(r.total_bytes),
                  f"{100 * r.reused_fraction:.0f}%",
                  "*" if st.index.golden(r.workload) == r.run_id else "")
                 for r in records])
        else:
            print(f"trace store {st.root}: no runs")
        return 0
    if verb == "diff":
        # exit status follows GNU diff: 0 identical, 1 drifted
        diff = st.diff(args.ref_a, args.ref_b)
        if args.json:
            print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
        else:
            print(diff.summary())
            for e in diff.drifted:
                print(f"  {e.kind:8s} {e.name} "
                      f"({e.a_size} -> {e.b_size} bytes)")
        return 0 if diff.identical else 1
    if verb == "drift":
        pairs = st.drifted(args.workload)
        if args.json:
            print(json.dumps([d.as_dict() for _, d in pairs],
                             indent=2, sort_keys=True))
        else:
            for _, diff in pairs:
                print(diff.summary())
            if not pairs:
                print(f"{args.workload}: no runs besides the golden")
        return 1 if any(not d.identical for _, d in pairs) else 0
    if verb == "pin":
        workload = st.pin_golden(args.run_id)
        print(f"pinned {args.run_id} as golden for {workload!r}")
        return 0
    if verb == "gc":
        from .store import apply_retention, gc
        if args.keep_last:
            report = apply_retention(st, args.keep_last,
                                     workload=args.workload)
            doc = report.as_dict()
            gc_report = report.gc
        else:
            gc_report = gc(st, repair=args.repair)
            doc = gc_report.as_dict()
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            if args.keep_last:
                print(f"retention: kept {report.kept_runs} runs, "
                      f"deleted {len(report.deleted_runs)}")
            print(gc_report.summary())
        return 0 if gc_report.conserved else 1
    if verb == "stats":
        stats = st.dedup_stats(args.workload)
        objs = st.objects.stats()
        if args.json:
            doc = stats.as_dict()
            doc["objects"] = {"count": objs.objects, "bytes": objs.bytes,
                              "refs": objs.refs}
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print_table(
                f"trace store {st.root}"
                + (f" (workload {args.workload})" if args.workload else ""),
                ["metric", "value"],
                [("runs", stats.runs),
                 ("logical bytes", fmt_kb(stats.logical_bytes)),
                 ("stored bytes", fmt_kb(stats.stored_bytes)),
                 ("dedup ratio", f"{stats.ratio:.2f}x"),
                 ("objects", objs.objects),
                 ("object refs", objs.refs)])
        return 0
    raise SystemExit(f"repro store: unknown verb {verb!r}")


def cmd_info(args) -> int:
    blob = open(args.trace, "rb").read()
    dec = api.decode(blob, salvage=args.salvage)
    if dec.salvage is not None:
        print(f"note: {dec.salvage.summary()}")
    sizes = dec.trace.section_sizes()
    hist = dict(sorted(dec.function_histogram().items(),
                       key=lambda kv: -kv[1]))
    if args.json:
        print(json.dumps({
            "trace": args.trace,
            "ranks": dec.nprocs,
            "total_calls": dec.call_count(),
            "signatures": len(dec.trace.cst.sigs),
            "unique_grammars": dec.trace.cfg.n_unique,
            "section_bytes": dict(sizes),
            "total_bytes": len(blob),
            "calls_per_function": hist,
        }, indent=2, sort_keys=True))
        return 0
    print_table(f"trace {args.trace}",
                ["field", "value"],
                [("ranks", dec.nprocs),
                 ("total calls", dec.call_count()),
                 ("signatures", len(dec.trace.cst.sigs)),
                 ("unique grammars", dec.trace.cfg.n_unique),
                 *[(f"section {k}", fmt_kb(v)) for k, v in sizes.items()]])
    print_table("calls per function", ["function", "count"],
                list(hist.items()))
    return 0


def cmd_dump(args) -> int:
    blob = open(args.trace, "rb").read()
    ranks = [int(r) for r in args.rank] if args.rank else None
    if args.otf:
        sys.stdout.write(write_otf_text(blob, ranks))
    else:
        sys.stdout.write(to_text(blob, ranks=ranks,
                                 max_calls_per_rank=args.limit))
    return 0


def cmd_replay(args) -> int:
    """Re-execute a trace, optionally under what-if conditions.

    Exit status follows the GNU diff convention: 0 = replay matched the
    record (no divergence), 1 = diverged, 2 = error (unreadable trace,
    bad option spec, unreplayable stream).
    """
    from .replay import ReplayOptions, run_divergence
    try:
        blob = open(args.trace, "rb").read()
    except OSError as e:
        print(f"repro replay: cannot open {args.trace}: "
              f"{e.strerror or e}", file=sys.stderr)
        return 2
    try:
        if args.check:
            # legacy fixed-point mode: re-trace the replay, compare blobs
            tracer = make_tracer("pilgrim")
            result = replay_trace(blob, seed=args.seed, tracer=tracer)
            print(f"replayed {result.nprocs} ranks, virtual makespan "
                  f"{result.app_time * 1e3:.3f} ms")
            ok = structurally_equal(blob, tracer.result.trace_bytes)
            print(f"structural fixed point: {'OK' if ok else 'FAILED'}")
            return 0 if ok else 1
        opts = ReplayOptions(
            seed=args.seed, noise=args.noise, net=args.net,
            fault_plan=args.fault_plan or None,
            fault_seed=args.fault_seed,
            extrapolate_ranks=args.extrapolate_ranks,
            spans=bool(args.spans))
        res = run_divergence(blob, opts)
    except (TraceFormatError, ValueError) as e:
        print(f"repro replay: {type(e).__name__}: {e}", file=sys.stderr)
        return 2
    if args.report:
        res.write_report(args.report)
    if args.spans:
        res.write_spans(args.spans)
    if args.json:
        print(json.dumps(res.report_dict(), indent=2, sort_keys=True))
    else:
        mode = "what-if" if opts.what_if else "directed"
        print(f"replayed {res.nprocs} ranks ({mode}), virtual makespan "
              f"{res.run.app_time * 1e3:.3f} ms")
        for fired in res.fired_faults:
            print(f"  fault fired: {fired}")
        print(res.summary())
        for pt in res.report.points:
            print(f"  {pt.describe()}")
    return 1 if res.diverged else 0


def cmd_miniapp(args) -> int:
    blob = open(args.trace, "rb").read()
    source = generate_miniapp(blob)
    with open(args.output, "w") as fh:
        fh.write(source)
    print(f"wrote {len(source.splitlines())}-line mini-app to {args.output}")
    print(f"run it with: python {args.output}")
    return 0


def cmd_bench(args) -> int:
    """Run microbenchmarks from the ``repro.bench`` registry."""
    from . import bench
    if args.list:
        for name in bench.available_benchmarks():
            print(f"{name:10s} {bench.REGISTRY[name].description}")
        return 0
    names = args.benchmark or ["hotpath"]
    unknown = [n for n in names if n not in bench.REGISTRY]
    if unknown:
        raise SystemExit(f"repro bench: unknown benchmark(s) {unknown}; "
                         f"known: {bench.available_benchmarks()}")
    baseline = None
    if args.compare:
        with open(args.compare) as fh:
            try:
                baseline = json.load(fh)
            except ValueError as e:
                raise SystemExit(f"repro bench: {args.compare} is not a "
                                 f"benchmark JSON document ({e})")
    params: dict = {"nprocs": args.procs, "seed": args.seed}
    if args.families:
        params["families"] = args.families
    if args.jobs != 1:
        params["jobs"] = args.jobs
    failed = False
    for name in names:
        doc = bench.run_benchmark(name, repeats=args.repeats,
                                  warmup=args.warmup, params=dict(params))
        paths = bench.write_results(doc, args.output_dir)
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print_table(
                f"benchmark {name} ({args.repeats} repeats, "
                f"{args.warmup} warmup)",
                ["metric", "median", "iqr"],
                [(m, f"{s['median']:.4g}", f"{s['iqr']:.3g}")
                 for m, s in doc["stats"].items()])
        print("wrote " + ", ".join(str(p) for p in paths))
        if baseline is not None:
            if baseline.get("benchmark") not in (None, name):
                print(f"note: baseline {args.compare} is for benchmark "
                      f"{baseline['benchmark']!r}")
            regressions, missing = bench.compare_results(
                doc, baseline, args.max_regression)
            for r in regressions:
                print(f"REGRESSION {r}")
            for m in missing:
                print(f"MISSING baseline metric {m} absent from this run")
            if regressions or missing:
                failed = True
            else:
                print(f"{name}: within {args.max_regression:g}% of "
                      f"{args.compare}")
    return 1 if failed else 0


def cmd_compare(args) -> int:
    metrics = MetricsRegistry() if args.metrics else None
    rows = [run_experiment(args.workload, P, seed=args.seed, baseline=False,
                           options=TracerOptions(metrics=metrics,
                                                 jobs=args.jobs),
                           **_parse_params(args.param))
            for P in args.procs]
    if metrics is not None:
        write_metrics_jsonl(args.metrics, metrics,
                            meta={"command": "compare",
                                  "workload": args.workload,
                                  "procs": args.procs,
                                  "seed": args.seed})
    if args.json:
        print(json.dumps([dataclasses.asdict(r) for r in rows],
                         indent=2, sort_keys=True))
        return 0
    print_table(
        f"{args.workload}: Pilgrim vs ScalaTrace baseline",
        ["procs", "MPI calls", "ScalaTrace", "Pilgrim", "ratio"],
        [(r.nprocs, r.mpi_calls, fmt_kb(r.scalatrace_size),
          fmt_kb(r.pilgrim_size),
          f"{r.scalatrace_size / max(r.pilgrim_size, 1):.1f}x")
         for r in rows])
    if metrics is not None:
        print(f"wrote metrics to {args.metrics} (render: "
              f"repro stats {args.metrics})")
    return 0


def cmd_timeline(args) -> int:
    """Validate a Chrome trace-event file, or convert a span JSONL dump
    into one."""
    from .obs import CHROME_TRACE_SCHEMA, validate_json, write_chrome_trace
    doc = None
    try:
        with open(args.file) as fh:
            doc = json.load(fh)
    except ValueError:
        doc = None  # not one JSON document; try span JSONL below
    if isinstance(doc, dict) and "traceEvents" in doc:
        try:
            validate_json(doc, CHROME_TRACE_SCHEMA)
        except ValueError as e:
            print(f"repro timeline: {args.file} INVALID: {e}",
                  file=sys.stderr)
            return 1
        events = doc["traceEvents"]
        n_spans = sum(1 for e in events if e.get("ph") == "X")
        tracks = sorted({e.get("pid", 0) for e in events})
        print(f"{args.file}: valid Chrome trace-event JSON "
              f"({n_spans} spans on {len(tracks)} process track(s))")
        return 0
    from .obs import read_spans_jsonl
    spans = read_spans_jsonl(args.file)
    if not spans:
        print(f"repro timeline: no span records in {args.file} "
              f"(expected a --spans/--metrics JSONL dump or a Chrome "
              f"trace-event file)", file=sys.stderr)
        return 1
    out = args.output or f"{args.file}.trace.json"
    n = write_chrome_trace(out, spans)
    print(f"wrote {n} timeline events from {len(spans)} spans to {out} "
          f"(open in Perfetto / chrome://tracing)")
    return 0


def cmd_stats(args) -> int:
    from .analysis import render_spans, render_stats, summarize_metrics
    from .obs import read_metrics_jsonl
    records = []
    for path in args.file:
        try:
            records.extend(read_metrics_jsonl(path))
        except OSError as e:
            raise SystemExit(f"repro stats: cannot read {path}: "
                             f"{e.strerror or e}")
        except ValueError as e:
            raise SystemExit(f"repro stats: {path} is not metrics JSONL "
                             f"({e})")
    if not records:
        print("no metric or event records found")
        return 0
    summary = summarize_metrics(records)
    if args.json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
        return 0
    render_stats(summary, source=", ".join(args.file),
                 top_events=args.events)
    if args.spans:
        render_spans(summary.spans)
    return 0


def cmd_analyze(args) -> int:
    from .analysis.insights import (call_time_share, comm_matrix,
                                    load_balance, message_size_histogram)
    blob = open(args.trace, "rb").read()
    mat = comm_matrix(blob)
    print_table("p2p traffic", ["metric", "value"],
                [("total messages", mat.total_messages),
                 ("total bytes", fmt_kb(mat.total_bytes))])
    if mat.total_messages:
        print_table("hottest pairs", ["src", "dst", "bytes"],
                    [(s_, d, fmt_kb(b))
                     for s_, d, b in mat.hottest_pairs(args.top)])
        print_table("message sizes (log2 buckets)", ["2^k bytes", "messages"],
                    list(message_size_histogram(blob).items()))
    print_table("call time share", ["function", "share"],
                [(f, f"{100 * v:.1f}%")
                 for f, v in list(call_time_share(blob).items())[:10]])
    lb = load_balance(blob)
    print_table("load balance", ["metric", "value"],
                [("imbalance (max/mean calls)", f"{lb.imbalance:.3f}"),
                 ("max rank calls", max(lb.per_rank_calls)),
                 ("min rank calls", min(lb.per_rank_calls))])
    return 0


def cmd_workloads(args) -> int:
    for name in sorted(REGISTRY):
        print(name)
    return 0


def cmd_backends(args) -> int:
    for name in available_backends():
        print(name)
    return 0


def _add_jobs_flag(p) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the finalize tree "
                        "reduction (byte-identical to serial; default 1)")


def _add_fault_flags(p) -> None:
    p.add_argument("--fault-plan", metavar="PLAN",
                   help="inject faults: 'kind@site[*times][:key=val];...' "
                        "e.g. 'kill@merge*2;corrupt@shard.freeze:rank=1' "
                        "(see repro faults)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for fault probability/byte-damage draws "
                        "(default 0)")
    p.add_argument("--allow-degraded", action="store_true",
                   help="accept a partial trace when recovery is "
                        "impossible (salvage report printed)")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace",
                       help="run a workload under a tracer backend")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, default=16)
    p.add_argument("-o", "--output", default="trace.pilgrim")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    p.add_argument("--backend", default="pilgrim",
                   choices=available_backends(),
                   help="tracer backend from the repro.core.backends "
                        "registry (default: pilgrim)")
    _add_jobs_flag(p)
    _add_fault_flags(p)
    p.add_argument("--watermark", type=int, default=None, metavar="CALLS",
                   help="soft per-rank memory watermark: spill the live "
                        "grammar after this many calls (degraded-mode "
                        "tracing; traces stay byte-identical)")
    p.add_argument("--verify", action="store_true",
                   help="run the lossless round-trip check")
    p.add_argument("--metrics", metavar="FILE",
                   help="enable self-instrumentation; dump the metrics "
                        "registry (and events, if captured) as JSONL")
    p.add_argument("--events", metavar="FILE",
                   help="enable the runtime event log; dump it as JSONL")
    p.add_argument("--timeline", metavar="FILE",
                   help="export the run's span tree as Chrome "
                        "trace-event JSON (Perfetto / chrome://tracing); "
                        "implies span telemetry")
    p.add_argument("--spans", metavar="FILE",
                   help="dump the run's spans as JSONL (render: repro "
                        "stats --spans FILE); implies span telemetry")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("verify",
                       help="differentially verify lossless round-trips")
    p.add_argument("workload", nargs="+",
                   help="workload name(s) to trace and verify")
    p.add_argument("-n", "--procs", type=int, default=16)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    _add_jobs_flag(p)
    _add_fault_flags(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("faults",
                       help="describe fault plans / run the chaos "
                            "recovery matrix")
    p.add_argument("plan", nargs="*",
                   help="fault plan string(s) to describe (or to use "
                        "for --chaos instead of random plans)")
    p.add_argument("--chaos", nargs="+", metavar="WORKLOAD",
                   help="run the recovery matrix on these workloads: "
                        "every plan must recover byte-identically or "
                        "degrade with a conserving salvage report")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1,
                   help="workload seed for --chaos (default 1)")
    p.add_argument("--plans", type=int, default=0, metavar="N",
                   help="number of random plans to sample (default 8 "
                        "for --chaos)")
    p.add_argument("--plan-seed", type=int, default=100,
                   help="base seed for random plan sampling (default 100)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for explicit PLAN strings (default 0)")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("fuzz",
                       help="corruption-fuzz the decoder (structured "
                            "errors only, never crashes)")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fuzz-seed", type=int, default=0)
    p.add_argument("--mutations", type=int, default=400,
                   help="random mutations on top of the boundary set")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    p.add_argument("--salvage", action="store_true",
                   help="fuzz the best-effort salvage parser instead: "
                        "every mutation must be recovered or rejected "
                        "with a structured error, never crash")
    p.add_argument("--frames", action="store_true",
                   help="fuzz the ingest frame protocol instead: attack "
                        "a recorded client session stream; the reader "
                        "must raise structured errors, never crash")
    p.add_argument("--store", action="store_true",
                   help="fuzz the trace-store run manifests instead: "
                        "corrupt hash refs and manifest fields against "
                        "a live store; every failure must be a "
                        "structured StoreFormatError, never a bare "
                        "KeyError or FileNotFoundError")
    p.add_argument("--replay", action="store_true",
                   help="fuzz the replay engine instead: every mutated "
                        "trace must either raise a structured "
                        "TraceFormatError or replay cleanly, never "
                        "crash the replayer")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("serve",
                       help="run the streaming trace-ingest service "
                            "(clients stream partial shards with "
                            "'repro push')")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick a free one; the bound port "
                        "is printed on the first line)")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="persist per-tenant fold checkpoints here and "
                        "restore them on startup")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="CHUNKS",
                   help="checkpoint a tenant's fold every N absorbed "
                        "chunks (0 = never; needs --checkpoint-dir)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="archive every completed fold into the trace "
                        "store at DIR (workload == tenant, so repeated "
                        "pushes dedup against each other)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("push",
                       help="trace a workload while streaming partial "
                            "shards to an ingest server")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="the ingest server's port (printed by "
                        "'repro serve')")
    p.add_argument("--tenant", default="default",
                   help="tenant id isolating this stream's fold")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--chunk-calls", type=int, default=256,
                   metavar="CALLS",
                   help="flush a partial shard every N traced calls "
                        "(1 streams per call)")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--lossy-timing", action="store_true")
    p.add_argument("--watermark", type=int, default=None, metavar="CALLS",
                   help="soft per-rank memory watermark (see 'repro "
                        "trace --watermark')")
    p.add_argument("--check", action="store_true",
                   help="also run the same trace in-process and assert "
                        "the server fold is byte-identical")
    p.add_argument("-o", "--output", default=None,
                   help="write the folded trace here")
    p.set_defaults(fn=cmd_push)

    p = sub.add_parser("store",
                       help="the content-addressed cross-run trace "
                            "store (structural dedup, drift queries)")
    store_sub = p.add_subparsers(dest="store_verb", required=True)

    def _store_verb(name: str, help_: str, *, json_flag: bool = True):
        sp = store_sub.add_parser(name, help=help_)
        sp.add_argument("--root", metavar="DIR", default=None,
                        help="store root (default: $REPRO_STORE or "
                             ".repro-store)")
        if json_flag:
            sp.add_argument("--json", action="store_true",
                            help="machine-readable JSON output")
        sp.set_defaults(fn=cmd_store)
        return sp

    sp = _store_verb("put", "store a trace file as a run of a workload")
    sp.add_argument("trace", help="serialized trace file to store")
    sp.add_argument("-w", "--workload", required=True,
                    help="workload key the run belongs to (runs of the "
                         "same workload dedup against each other)")
    sp.add_argument("--tenant", default="default")

    sp = _store_verb("get", "reassemble a stored run's trace blob",
                     json_flag=False)
    sp.add_argument("ref", help="run id, WORKLOAD@latest, or "
                                "WORKLOAD@golden")
    sp.add_argument("-o", "--output", default=None,
                    help="write here (default: stdout)")
    sp.add_argument("--no-verify", action="store_true",
                    help="skip per-section integrity re-verification")

    sp = _store_verb("ls", "list stored runs")
    sp.add_argument("workload", nargs="?", default=None)

    sp = _store_verb("diff", "section-level diff of two runs "
                             "(exit 0 identical, 1 drifted)")
    sp.add_argument("ref_a")
    sp.add_argument("ref_b")

    sp = _store_verb("drift", "diff every run of a workload against "
                              "its golden run")
    sp.add_argument("workload")

    sp = _store_verb("pin", "pin a run as its workload's golden run",
                     json_flag=False)
    sp.add_argument("run_id")

    sp = _store_verb("gc", "sweep unreferenced blobs; audit refcount "
                           "conservation (exit 1 on mismatch)")
    sp.add_argument("--repair", action="store_true",
                    help="rewrite mismatched refcount sidecars to the "
                         "counts computed from the manifests")
    sp.add_argument("--keep-last", type=int, default=0, metavar="N",
                    help="first apply retention: keep each workload's "
                         "newest N runs (golden always kept)")
    sp.add_argument("--workload", default=None,
                    help="restrict --keep-last to one workload")

    sp = _store_verb("stats", "dedup ratio and object-store totals")
    sp.add_argument("workload", nargs="?", default=None)

    p = sub.add_parser("info", help="summarize a trace file")
    p.add_argument("trace")
    p.add_argument("--salvage", action="store_true",
                   help="best-effort parse of a damaged trace; prints "
                        "the salvage report")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of tables")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("dump", help="decode a trace to text")
    p.add_argument("trace")
    p.add_argument("--rank", action="append", default=[])
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--otf", action="store_true",
                   help="OTF-style ENTER/LEAVE events instead of calls")
    p.set_defaults(fn=cmd_dump)

    p = sub.add_parser("replay",
                       help="re-execute a trace, as recorded or under "
                            "what-if conditions (exit 0 = matched, "
                            "1 = diverged, 2 = error)")
    p.add_argument("trace")
    p.add_argument("--seed", type=int, default=0,
                   help="replay simulator seed (completion-order RNG)")
    p.add_argument("--noise", type=float, default=0.0,
                   help="compute-time noise std-dev during the replay")
    p.add_argument("--net", metavar="SPEC", default=None,
                   help="what-if network override, e.g. "
                        "alpha=1.5e-6,beta=3e-10[,overhead=..]")
    p.add_argument("--fault-plan", metavar="PLAN", default=None,
                   help="what-if fault injection, e.g. "
                        "'delay@sched*4:rank=2' (see 'repro faults')")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault plan (default 0)")
    p.add_argument("--extrapolate-ranks", type=int, default=None,
                   metavar="N",
                   help="replay on N ranks instead of the recorded "
                        "count (single-pattern SPMD traces only)")
    p.add_argument("--json", action="store_true",
                   help="print the divergence report as canonical JSON")
    p.add_argument("--report", metavar="FILE",
                   help="also write the JSON divergence report to FILE")
    p.add_argument("--spans", metavar="FILE",
                   help="record replay phase spans and write them as "
                        "JSONL to FILE (render with 'repro stats "
                        "--spans')")
    p.add_argument("--check", action="store_true",
                   help="legacy fixed-point mode: re-trace the replay "
                        "and compare trace bytes")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("miniapp", help="generate a proxy mini-app")
    p.add_argument("trace")
    p.add_argument("-o", "--output", default="miniapp.py")
    p.set_defaults(fn=cmd_miniapp)

    p = sub.add_parser("bench",
                       help="run microbenchmarks, optionally gating "
                            "against a stored baseline")
    p.add_argument("benchmark", nargs="*",
                   help="benchmark name(s); default: hotpath")
    p.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    p.add_argument("--repeats", type=int, default=5,
                   help="timed repetitions per benchmark (default 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup repetitions (default 1)")
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--families", nargs="+", metavar="NAME",
                   help="workload families (default: the 5-family "
                        "representative set)")
    _add_jobs_flag(p)
    p.add_argument("--output-dir", default="benchmarks/results",
                   help="where <name>.json lands (default "
                        "benchmarks/results); BENCH_<name>.json is "
                        "always written to the current directory")
    p.add_argument("--compare", metavar="BASELINE.json",
                   help="gate each benchmark's metrics against this "
                        "stored result document")
    p.add_argument("--max-regression", type=float, default=25.0,
                   metavar="PCT",
                   help="allowed slowdown over the baseline before "
                        "exiting nonzero (default 25)")
    p.add_argument("--json", action="store_true",
                   help="print the full result document instead of a "
                        "table")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("compare", help="Pilgrim vs the baseline")
    p.add_argument("workload")
    p.add_argument("-n", "--procs", type=int, nargs="+",
                   default=[8, 16, 32])
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE")
    p.add_argument("--metrics", metavar="FILE",
                   help="profile both tracers; dump the shared registry "
                        "as JSONL")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON rows instead of a table")
    _add_jobs_flag(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("stats",
                       help="render a metrics/events JSONL dump")
    p.add_argument("file", nargs="+",
                   help="JSONL file(s) from --metrics/--events; several "
                        "files are aggregated")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="also show the last N buffered runtime events")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON aggregate instead of tables")
    p.add_argument("--spans", action="store_true",
                   help="also render the span tree (total/self wall time "
                        "per span, worker spans tagged by pid)")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("timeline",
                       help="validate a Chrome trace-event file or "
                            "convert a span JSONL dump into one")
    p.add_argument("file",
                   help="a --timeline Chrome trace JSON (validated) or "
                        "a --spans/--metrics JSONL dump (converted)")
    p.add_argument("-o", "--output", default=None,
                   help="output path for the converted Chrome trace "
                        "(default: FILE.trace.json)")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("analyze", help="post-mortem trace analysis")
    p.add_argument("trace")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("workloads", help="list available workloads")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("backends", help="list registered tracer backends")
    p.set_defaults(fn=cmd_backends)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TraceFormatError as e:
        # corrupt/truncated/foreign trace file: a structured one-line
        # diagnosis, not a traceback
        print(f"repro: {type(e).__name__}: {e}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # output piped into head/less that exited early; not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except OSError as e:
        if getattr(e, "filename", None):
            print(f"repro: cannot open {e.filename}: "
                  f"{e.strerror or e}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
