"""Post-mortem trace analysis — the uses the paper's introduction lists
("performance analysis and communication visualization ... identifying
errors ... performance prediction skeletons").

Every function here consumes a decoded Pilgrim trace (bytes or a
:class:`~repro.core.decoder.TraceDecoder`) — demonstrating that the
compressed traces retain enough to drive real analyses:

* :func:`comm_matrix` — point-to-point traffic heat map (messages and
  bytes per (source, destination) pair);
* :func:`message_size_histogram` — power-of-two size buckets per
  function;
* :func:`call_time_share` — per-function share of recorded call time
  (from the CST's per-signature mean durations);
* :func:`collective_participation` — collective call counts per
  communicator;
* :func:`load_balance` — per-rank call/byte totals and imbalance factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.decoder import TraceDecoder

TraceLike = Union[bytes, TraceDecoder]

#: p2p senders: (function, dest param, count param, datatype param)
_SENDS = {
    "MPI_Send": ("dest", "count", "datatype"),
    "MPI_Ssend": ("dest", "count", "datatype"),
    "MPI_Bsend": ("dest", "count", "datatype"),
    "MPI_Rsend": ("dest", "count", "datatype"),
    "MPI_Isend": ("dest", "count", "datatype"),
    "MPI_Issend": ("dest", "count", "datatype"),
    "MPI_Send_init": ("dest", "count", "datatype"),
}

_BUILTIN_SIZES = {-1: 1, -2: 1, -3: 4, -4: 8, -5: 4, -6: 8, -7: 4, -8: 8,
                  -9: 2, -10: 8, -11: 8, -12: 8, -13: 16, -14: 1}


def _decoder(trace: TraceLike) -> TraceDecoder:
    if isinstance(trace, TraceDecoder):
        return trace
    return TraceDecoder.from_bytes(trace)


def _dtype_size(handle) -> int:
    """Best-effort element size (derived types need recipe replay; use 8
    as the conservative default the histograms tolerate)."""
    if isinstance(handle, int) and handle < 0:
        return _BUILTIN_SIZES.get(handle, 8)
    return 8


@dataclass
class CommMatrix:
    """Point-to-point traffic between rank pairs."""

    nprocs: int
    messages: np.ndarray   # [src, dst] message counts
    bytes: np.ndarray      # [src, dst] payload bytes

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    def hottest_pairs(self, k: int = 5) -> list[tuple[int, int, int]]:
        """Top-k (src, dst, bytes) pairs by traffic."""
        flat = self.bytes.flatten()
        order = np.argsort(flat)[::-1][:k]
        out = []
        for idx in order:
            if flat[idx] <= 0:
                break
            src, dst = divmod(int(idx), self.nprocs)
            out.append((src, dst, int(flat[idx])))
        return out


def comm_matrix(trace: TraceLike) -> CommMatrix:
    """Build the p2p traffic matrix from send-side records.

    Relative destination encodings are materialized per sending rank;
    sub-communicator ranks are mapped through... the world comm for
    world-comm traffic (sub-comm sends are attributed by their comm-rank
    offsets, the best a trace-only view can do without replaying
    communicator construction)."""
    dec = _decoder(trace)
    n = dec.nprocs
    msgs = np.zeros((n, n), dtype=np.int64)
    byts = np.zeros((n, n), dtype=np.int64)
    for rank in range(n):
        for call in dec.rank_calls(rank):
            spec = _SENDS.get(call.fname)
            if spec is None and call.fname != "MPI_Sendrecv":
                continue
            mat = call.materialized()
            if call.fname == "MPI_Sendrecv":
                dest = mat["dest"]
                count = mat["sendcount"]
                dt_h = call.params["sendtype"]
            else:
                dest_key, count_key, dt_key = spec
                dest = mat[dest_key]
                count = mat[count_key]
                dt_h = call.params[dt_key]
            if not isinstance(dest, int) or dest < 0 or dest >= n:
                continue  # PROC_NULL or sub-comm rank outside world range
            msgs[rank, dest] += 1
            byts[rank, dest] += count * _dtype_size(dt_h)
    return CommMatrix(nprocs=n, messages=msgs, bytes=byts)


def message_size_histogram(trace: TraceLike) -> dict[int, int]:
    """Messages per power-of-two size bucket (bucket = floor(log2 bytes))."""
    dec = _decoder(trace)
    hist: dict[int, int] = {}
    for rank in range(dec.nprocs):
        for call in dec.rank_calls(rank):
            spec = _SENDS.get(call.fname)
            if spec is None:
                continue
            count = call.params[spec[1]]
            nbytes = count * _dtype_size(call.params[spec[2]])
            bucket = int(math.log2(nbytes)) if nbytes > 0 else 0
            hist[bucket] = hist.get(bucket, 0) + 1
    return dict(sorted(hist.items()))


def call_time_share(trace: TraceLike) -> dict[str, float]:
    """Fraction of total recorded call time per MPI function (uses the
    CST's per-signature duration sums — Pilgrim's default timing)."""
    dec = _decoder(trace)
    cst = dec.trace.cst
    per_fn: dict[str, float] = {}
    for term, sig in enumerate(cst.sigs):
        fname, _ = dec._decode_sig(term)
        per_fn[fname] = per_fn.get(fname, 0.0) + cst.dur_sums[term]
    total = sum(per_fn.values()) or 1.0
    return {k: v / total
            for k, v in sorted(per_fn.items(), key=lambda kv: -kv[1])}


def collective_participation(trace: TraceLike) -> dict[tuple[str, int], int]:
    """(collective function, symbolic comm id) -> total call count."""
    dec = _decoder(trace)
    out: dict[tuple[str, int], int] = {}
    for term, sig in enumerate(dec.trace.cst.sigs):
        fname, params = dec._decode_sig(term)
        if "comm" not in params or fname.startswith(("MPI_Comm", "MPI_Cart",
                                                     "MPI_Intercomm")):
            continue
        if any(fname.startswith(p) for p in
               ("MPI_Barrier", "MPI_Bcast", "MPI_Reduce", "MPI_Allreduce",
                "MPI_Gather", "MPI_Scatter", "MPI_Allgather", "MPI_Alltoall",
                "MPI_Scan", "MPI_Exscan", "MPI_Ibarrier", "MPI_Ibcast",
                "MPI_Iallreduce", "MPI_Iallgather", "MPI_Ialltoall")):
            key = (fname, params["comm"])
            out[key] = out.get(key, 0) + dec.trace.cst.counts[term]
    return out


@dataclass
class LoadBalance:
    per_rank_calls: list[int]
    per_rank_send_bytes: list[int]

    @property
    def imbalance(self) -> float:
        """max/mean of per-rank call counts (1.0 = perfectly balanced)."""
        calls = self.per_rank_calls
        mean = sum(calls) / len(calls) if calls else 0
        return max(calls) / mean if mean else 0.0


def load_balance(trace: TraceLike) -> LoadBalance:
    dec = _decoder(trace)
    mat = comm_matrix(dec)
    calls = [dec.call_count(r) for r in range(dec.nprocs)]
    send_bytes = [int(mat.bytes[r].sum()) for r in range(dec.nprocs)]
    return LoadBalance(per_rank_calls=calls, per_rank_send_bytes=send_bytes)
