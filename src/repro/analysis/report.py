"""Paper-style table and series printers for the benchmark harness.

Every table/figure reproduction prints its rows through these helpers so
the output reads like the paper's figures: one row per configuration,
sizes in KB, growth factors annotated.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def fmt_kb(nbytes: int) -> str:
    """Format a byte count the way the paper's axes do (KB), except that
    sub-1KB sizes read as plain bytes (``512B``, not ``0.5KB``)."""
    if nbytes < 1024:
        return f"{nbytes}B"
    kb = nbytes / 1024
    if kb >= 1000:
        return f"{kb / 1024:.1f}MB"
    if kb >= 10:
        return f"{kb:.0f}KB"
    return f"{kb:.1f}KB"


def fmt_count(n: int) -> str:
    """Human-scale call/event counts: ``950``, ``8.5K``, ``1.2M``, ``3.0B``."""
    if n < 1000:
        return str(n)
    for div, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if n >= div:
            v = n / div
            return f"{v:.0f}{suffix}" if v >= 100 else f"{v:.1f}{suffix}"
    return str(n)  # pragma: no cover - unreachable


def fmt_time(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.1f}s"
    return f"{seconds * 1e3:.1f}ms"


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]], note: str = "") -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    print()
    print(f"== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(f"  note: {note}")


def growth_factor(values: Sequence[float]) -> float:
    """Last/first ratio of a series (0 if degenerate)."""
    vals = [v for v in values if v]
    if len(vals) < 2 or not vals[0]:
        return 0.0
    return vals[-1] / vals[0]


def classify_growth(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Rough growth classification of y(x): 'flat', 'sublinear',
    'linear', or 'superlinear' — the property the figures argue about."""
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return "flat"
    x0, y0 = pairs[0]
    x1, y1 = pairs[-1]
    if y1 <= y0 * 1.3:
        return "flat"
    import math
    slope = math.log(y1 / y0) / math.log(x1 / x0)
    if slope < 0.15:
        return "flat"
    if slope < 0.85:
        return "sublinear"
    if slope <= 1.15:
        return "linear"
    return "superlinear"
