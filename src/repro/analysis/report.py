"""Paper-style table and series printers for the benchmark harness.

Every table/figure reproduction prints its rows through these helpers so
the output reads like the paper's figures: one row per configuration,
sizes in KB, growth factors annotated.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def fmt_kb(nbytes: int) -> str:
    """Format a byte count the way the paper's axes do (KB), except that
    sub-1KB sizes read as plain bytes (``512B``, not ``0.5KB``).  The
    unit ladder continues through MB/GB/TB, and negative inputs (size
    deltas) keep a single leading sign — never ``-0.0KB``-style output,
    because the magnitude is formatted and the sign prepended."""
    sign = "-" if nbytes < 0 else ""
    n = abs(nbytes)
    if n < 1024:
        return f"{sign}{n}B"
    kb = n / 1024
    if kb < 10:
        return f"{sign}{kb:.1f}KB"
    if kb < 1000:
        return f"{sign}{kb:.0f}KB"
    mb = kb / 1024
    if mb < 1000:
        return f"{sign}{mb:.1f}MB"
    gb = mb / 1024
    if gb < 1000:
        return f"{sign}{gb:.1f}GB"
    return f"{sign}{gb / 1024:.1f}TB"


def fmt_count(n: int) -> str:
    """Human-scale call/event counts: ``950``, ``8.5K``, ``1.2M``,
    ``3.0B``, ``2.5T``; negative inputs (count deltas) keep a single
    leading sign."""
    sign = "-" if n < 0 else ""
    n = abs(n)
    if n < 1000:
        return f"{sign}{n}"
    for div, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if n >= div:
            v = n / div
            return (f"{sign}{v:.0f}{suffix}" if v >= 100
                    else f"{sign}{v:.1f}{suffix}")
    return f"{sign}{n}"  # pragma: no cover - unreachable


def fmt_time(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.1f}s"
    return f"{seconds * 1e3:.1f}ms"


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]], note: str = "") -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    print()
    print(f"== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print(line)
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(f"  note: {note}")


def growth_factor(values: Sequence[float]) -> float:
    """Last/first ratio of a series (0 if degenerate)."""
    vals = [v for v in values if v]
    if len(vals) < 2 or not vals[0]:
        return 0.0
    return vals[-1] / vals[0]


def classify_growth(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Rough growth classification of y(x): 'flat', 'sublinear',
    'linear', or 'superlinear' — the property the figures argue about."""
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return "flat"
    x0, y0 = pairs[0]
    x1, y1 = pairs[-1]
    if y1 <= y0 * 1.3:
        return "flat"
    import math
    slope = math.log(y1 / y0) / math.log(x1 / x0)
    if slope < 0.15:
        return "flat"
    if slope < 0.85:
        return "sublinear"
    if slope <= 1.15:
        return "linear"
    return "superlinear"
