"""``repro.analysis`` — experiment running, reporting, and post-mortem
trace analysis."""

from .insights import (CommMatrix, LoadBalance, call_time_share,
                       collective_participation, comm_matrix, load_balance,
                       message_size_histogram)
from .report import (classify_growth, fmt_kb, fmt_time, growth_factor,
                     print_table)
from .runner import ExperimentRow, run_experiment

__all__ = ["CommMatrix", "ExperimentRow", "LoadBalance",
           "call_time_share", "classify_growth",
           "collective_participation", "comm_matrix", "fmt_kb", "fmt_time",
           "growth_factor", "load_balance", "message_size_histogram",
           "print_table", "run_experiment"]
