"""``repro.analysis`` — experiment running, reporting, and post-mortem
trace analysis."""

from .insights import (CommMatrix, LoadBalance, call_time_share,
                       collective_participation, comm_matrix, load_balance,
                       message_size_histogram)
from .report import (classify_growth, fmt_count, fmt_kb, fmt_time,
                     growth_factor, print_table)
from .runner import ExperimentRow, run_experiment
from .stats import (MetricsSummary, load_stats, render_spans, render_stats,
                    summarize_metrics)

__all__ = ["CommMatrix", "ExperimentRow", "LoadBalance", "MetricsSummary",
           "call_time_share", "classify_growth",
           "collective_participation", "comm_matrix", "fmt_count", "fmt_kb",
           "fmt_time", "growth_factor", "load_balance", "load_stats",
           "message_size_histogram", "print_table", "render_spans",
           "render_stats", "run_experiment", "summarize_metrics"]
