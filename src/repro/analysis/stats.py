"""Aggregation and rendering of ``repro.obs`` metrics/event JSONL dumps.

``repro trace --metrics out.jsonl`` writes one instrument or event record
per line (see :mod:`repro.obs.registry`); this module turns such a file
back into tables — most importantly the Fig 8-style *overhead
decomposition*: for each tracer scope found (``pilgrim``,
``scalatrace``), the per-phase wall seconds and their share of the
tracer's measured total overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .report import fmt_count, fmt_time, print_table


@dataclass
class MetricsSummary:
    """Structured view of one metrics/events JSONL file."""

    meta: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: name -> {"clock", "count", "seconds"}
    timers: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: name -> {"base", "count", "sum", "bins"}
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    #: raw span records (``type: span``), in file order — render with
    #: :func:`render_spans`
    spans: list[dict[str, Any]] = field(default_factory=list)

    @property
    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            k = e.get("kind", "?")
            counts[k] = counts.get(k, 0) + 1
        return counts

    def scopes(self) -> list[str]:
        """Tracer scopes that published a phase decomposition."""
        found = set()
        for name in self.timers:
            head, _, rest = name.partition(".")
            if rest.startswith("phase."):
                found.add(head)
        return sorted(found)

    def phase_table(self, scope: str) -> list[tuple[str, float, int, float]]:
        """``(phase, wall seconds, count, share-of-total)`` rows for one
        tracer scope, largest first.  The share denominator is the
        scope's ``total`` timer when present, else the phase sum."""
        prefix = f"{scope}.phase."
        rows = []
        for name, t in self.timers.items():
            if not name.startswith(prefix) or name.endswith(".cpu"):
                continue
            rows.append((name[len(prefix):], t["seconds"], t["count"]))
        total_t = self.timers.get(f"{scope}.total")
        denom = total_t["seconds"] if total_t else \
            sum(r[1] for r in rows)
        denom = denom or 1.0
        rows.sort(key=lambda r: -r[1])
        return [(name, secs, count, secs / denom)
                for name, secs, count in rows]

    def as_dict(self) -> dict[str, Any]:
        """JSON-able aggregate (the ``repro stats --json`` payload)."""
        return {
            "meta": self.meta,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": dict(sorted(self.timers.items())),
            "histograms": dict(sorted(self.histograms.items())),
            "event_counts": dict(sorted(self.event_counts.items())),
            "n_events": len(self.events),
            "n_spans": len(self.spans),
            "decomposition": {
                scope: [{"phase": p, "seconds": s, "count": c, "share": sh}
                        for p, s, c, sh in self.phase_table(scope)]
                for scope in self.scopes()},
        }


def summarize_metrics(records: list[dict[str, Any]]) -> MetricsSummary:
    """Fold raw JSONL records (dicts with a ``type`` field) into a
    :class:`MetricsSummary`.  Repeated metric names accumulate, so
    snapshots from several runs can be concatenated into one file."""
    s = MetricsSummary()
    for rec in records:
        kind = rec.get("type")
        if kind == "meta":
            meta = {k: v for k, v in rec.items() if k != "type"}
            s.meta.update(meta)
        elif kind == "counter":
            s.counters[rec["name"]] = \
                s.counters.get(rec["name"], 0) + rec["value"]
        elif kind == "gauge":
            s.gauges[rec["name"]] = rec["value"]
        elif kind == "timer":
            t = s.timers.setdefault(
                rec["name"], {"clock": rec.get("clock", "wall"),
                              "count": 0, "seconds": 0.0})
            t["count"] += rec["count"]
            t["seconds"] += rec["seconds"]
        elif kind == "histogram":
            h = s.histograms.setdefault(
                rec["name"], {"base": rec.get("base", 2.0),
                              "count": 0, "sum": 0.0, "bins": {}})
            h["count"] += rec["count"]
            h["sum"] += rec["sum"]
            for b, n in rec.get("bins", {}).items():
                h["bins"][b] = h["bins"].get(b, 0) + n
        elif kind == "event":
            s.events.append({k: v for k, v in rec.items() if k != "type"})
        elif kind == "span":
            s.spans.append(rec)
        # unknown types are ignored: forward compatibility
    return s


def render_spans(spans: list[dict[str, Any]]) -> None:
    """Render span records as an indented tree with total and *self*
    wall time per span (the ``repro stats --spans`` view).  Spans
    recorded by pooled workers are tagged with their pid."""
    from ..obs import build_span_tree, span_self_ns
    if not spans:
        print("no span records found (trace with --metrics, or pass a "
              "--spans JSONL dump)")
        return
    roots = build_span_tree(spans)
    parent_pid = roots[0]["span"].get("pid", 0) if roots else 0
    rows: list[tuple[str, str, str, str, str]] = []

    def walk(node: dict[str, Any], depth: int) -> None:
        rec = node["span"]
        dur_s = max(0, rec.get("end_ns", 0) - rec.get("start_ns", 0)) / 1e9
        attrs = rec.get("attrs", {})
        tags = []
        if rec.get("pid") != parent_pid:
            tags.append(f"pid {rec.get('pid')}")
        if attrs.get("synthetic"):
            tags.append("synthetic")
        rows.append(("  " * depth + rec.get("name", "?"),
                     fmt_time(dur_s), fmt_time(span_self_ns(node) / 1e9),
                     fmt_count(len(node["children"])), ", ".join(tags)))
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    print_table(f"span tree ({len(spans)} spans)",
                ["span", "total", "self", "children", "notes"], rows)


def load_stats(path: str) -> MetricsSummary:
    from ..obs import read_metrics_jsonl
    return summarize_metrics(read_metrics_jsonl(path))


def render_stats(s: MetricsSummary, source: str = "",
                 top_events: int = 0) -> None:
    """Print the paper-style tables for one summary."""
    title_sfx = f" ({source})" if source else ""

    if s.counters or s.gauges:
        rows = [(k, fmt_count(v) if isinstance(v, int) else v)
                for k, v in sorted(s.counters.items())]
        rows += [(k, v) for k, v in sorted(s.gauges.items())]
        print_table(f"counters & gauges{title_sfx}", ["metric", "value"],
                    rows)

    for scope in s.scopes():
        table = s.phase_table(scope)
        total_t = s.timers.get(f"{scope}.total")
        # per-level reduction timings (merge.level.<k>) are sub-phases of
        # cst_merge: render them indented, exclude them from coverage
        covered = sum(r[3] for r in table if ".level." not in r[0])
        print_table(
            f"{scope}: overhead decomposition (Fig 8 style)",
            ["phase", "wall", "calls", "share"],
            [(("  " + p if ".level." in p else p), fmt_time(secs),
              fmt_count(c), f"{100 * share:.1f}%")
             for p, secs, c, share in table],
            note=(f"total overhead {fmt_time(total_t['seconds'])}, "
                  f"phases cover {100 * covered:.1f}%") if total_t else "")

    other = {n: t for n, t in s.timers.items()
             if ".phase." not in n and not n.endswith(".total")}
    if other:
        print_table(f"timers{title_sfx}",
                    ["timer", "clock", "count", "total", "mean"],
                    [(n, t["clock"], fmt_count(t["count"]),
                      fmt_time(t["seconds"]),
                      fmt_time(t["seconds"] / t["count"])
                      if t["count"] else "-")
                     for n, t in sorted(other.items())])

    for name, h in sorted(s.histograms.items()):
        print_table(f"histogram {name} (log base {h['base']:g})",
                    ["bin <=", "count"],
                    [(h["base"] ** int(b), n)
                     for b, n in sorted(h["bins"].items(),
                                        key=lambda kv: int(kv[0]))])

    if s.events:
        print_table(f"runtime events{title_sfx}", ["kind", "count"],
                    sorted(s.event_counts.items()))
        if top_events:
            tail = s.events[-top_events:]
            print_table(f"last {len(tail)} events", ["seq", "kind", "detail"],
                        [(e.get("seq", "-"), e.get("kind", "?"),
                          ", ".join(f"{k}={v}" for k, v in e.items()
                                    if k not in ("seq", "kind")))
                         for e in tail])
