"""One-stop experiment runner used by benchmarks and examples.

Runs a workload three ways — untracted, under Pilgrim, and under the
ScalaTrace baseline — and collects the numbers the paper's figures plot:
trace sizes, call counts, unique-grammar counts, wall-clock overheads,
and Pilgrim's overhead decomposition.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.backends import TracerOptions, resolve_metrics
from ..workloads import make


@dataclass
class ExperimentRow:
    """One (workload, nprocs) measurement."""

    workload: str
    nprocs: int
    mpi_calls: int = 0
    app_seconds: float = 0.0          # wall time, no tracing
    pilgrim_seconds: float = 0.0      # wall time with Pilgrim attached
    scalatrace_seconds: float = 0.0   # wall time with the baseline
    pilgrim_size: int = 0
    scalatrace_size: int = 0
    n_signatures: int = 0
    n_unique_grammars: int = 0
    n_unique_scalatrace: int = 0
    time_intra: float = 0.0
    time_cst_merge: float = 0.0
    time_cfg_merge: float = 0.0
    #: fine-grained phase -> wall seconds (filled when profile=True)
    phases: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)

    @property
    def pilgrim_overhead(self) -> float:
        """Fractional slowdown of the run with Pilgrim attached."""
        if self.app_seconds <= 0:
            return 0.0
        return (self.pilgrim_seconds - self.app_seconds) / self.app_seconds

    @property
    def scalatrace_overhead(self) -> float:
        if self.app_seconds <= 0:
            return 0.0
        return (self.scalatrace_seconds - self.app_seconds) / self.app_seconds


#: run_experiment keywords that moved onto TracerOptions; honored for
#: one release with a DeprecationWarning
_LEGACY_KEYS = ("profile", "jobs", "metrics")


def run_experiment(workload: str, nprocs: int, *, seed: int = 1,
                   pilgrim: bool = True, scalatrace: bool = True,
                   baseline: bool = True,
                   options: Optional[TracerOptions] = None,
                   pilgrim_kwargs: Optional[dict] = None,
                   scalatrace_kwargs: Optional[dict] = None,
                   **params) -> ExperimentRow:
    """Run one configuration under all requested tracers, each built and
    driven through :func:`repro.api.trace`.

    Tracer configuration travels in *options* (one
    :class:`TracerOptions` shared by both tracers):
    ``options.profile`` attaches an enabled metrics registry to both so
    the fine-grained phase decomposition (Fig 8) lands in
    ``row.phases``; ``options.metrics`` accumulates across rows;
    ``options.jobs > 1`` parallelizes Pilgrim's finalize tree
    reduction.  The historical loose keywords (``profile=``, ``jobs=``,
    ``metrics=``) still work for one release with a
    DeprecationWarning."""
    from .. import api  # late import: repro.api sits above repro.analysis
    legacy = {k: params.pop(k) for k in _LEGACY_KEYS if k in params}
    opts = options if options is not None else TracerOptions()
    if legacy:
        warnings.warn(
            f"passing {sorted(legacy)} to run_experiment() as loose "
            f"keywords is deprecated; set them on TracerOptions(...) and "
            f"pass options=", DeprecationWarning, stacklevel=2)
        opts = replace(opts, **legacy)
    # one registry shared by both tracers (profile=True on the options
    # would otherwise mint a fresh registry per tracer)
    opts = replace(opts, metrics=resolve_metrics(opts), profile=False)
    row = ExperimentRow(workload=workload, nprocs=nprocs, params=params)

    if baseline:
        t0 = time.perf_counter()
        make(workload, nprocs, **params).run(seed=seed)
        row.app_seconds = time.perf_counter() - t0

    if pilgrim:
        t0 = time.perf_counter()
        tr = api.trace(workload, nprocs, backend="pilgrim", seed=seed,
                       params=params,
                       options=replace(opts,
                                       extra=dict(pilgrim_kwargs or {})))
        row.pilgrim_seconds = time.perf_counter() - t0
        r = tr.result
        row.mpi_calls = r.total_calls
        row.pilgrim_size = r.trace_size
        row.n_signatures = r.n_signatures
        row.n_unique_grammars = r.n_unique_grammars
        row.time_intra = r.time_intra
        row.time_cst_merge = r.time_cst_merge
        row.time_cfg_merge = r.time_cfg_merge
        row.phases = dict(r.phases)

    if scalatrace:
        t0 = time.perf_counter()
        tr = api.trace(workload, nprocs, backend="scalatrace", seed=seed,
                       params=params,
                       options=replace(opts,
                                       extra=dict(scalatrace_kwargs or {})))
        row.scalatrace_seconds = time.perf_counter() - t0
        row.scalatrace_size = tr.result.trace_size
        row.n_unique_scalatrace = tr.result.n_unique_traces
        if not row.mpi_calls:
            row.mpi_calls = tr.result.total_calls

    return row
