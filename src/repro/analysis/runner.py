"""One-stop experiment runner used by benchmarks and examples.

Runs a workload three ways — untracted, under Pilgrim, and under the
ScalaTrace baseline — and collects the numbers the paper's figures plot:
trace sizes, call counts, unique-grammar counts, wall-clock overheads,
and Pilgrim's overhead decomposition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.backends import TracerOptions, make_tracer
from ..obs import MetricsRegistry
from ..workloads import make


@dataclass
class ExperimentRow:
    """One (workload, nprocs) measurement."""

    workload: str
    nprocs: int
    mpi_calls: int = 0
    app_seconds: float = 0.0          # wall time, no tracing
    pilgrim_seconds: float = 0.0      # wall time with Pilgrim attached
    scalatrace_seconds: float = 0.0   # wall time with the baseline
    pilgrim_size: int = 0
    scalatrace_size: int = 0
    n_signatures: int = 0
    n_unique_grammars: int = 0
    n_unique_scalatrace: int = 0
    time_intra: float = 0.0
    time_cst_merge: float = 0.0
    time_cfg_merge: float = 0.0
    #: fine-grained phase -> wall seconds (filled when profile=True)
    phases: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)

    @property
    def pilgrim_overhead(self) -> float:
        """Fractional slowdown of the run with Pilgrim attached."""
        if self.app_seconds <= 0:
            return 0.0
        return (self.pilgrim_seconds - self.app_seconds) / self.app_seconds

    @property
    def scalatrace_overhead(self) -> float:
        if self.app_seconds <= 0:
            return 0.0
        return (self.scalatrace_seconds - self.app_seconds) / self.app_seconds


def run_experiment(workload: str, nprocs: int, *, seed: int = 1,
                   pilgrim: bool = True, scalatrace: bool = True,
                   baseline: bool = True,
                   pilgrim_kwargs: Optional[dict] = None,
                   scalatrace_kwargs: Optional[dict] = None,
                   profile: bool = False, jobs: int = 1,
                   metrics: Optional[MetricsRegistry] = None,
                   **params) -> ExperimentRow:
    """Run one configuration under all requested tracers (constructed
    through the :mod:`repro.core.backends` registry).

    ``profile=True`` attaches an enabled metrics registry to both tracers
    so the fine-grained phase decomposition (Fig 8) lands in
    ``row.phases`` — slightly slower, so off by default.  Pass an
    explicit ``metrics`` registry to accumulate across several rows.
    ``jobs > 1`` parallelizes Pilgrim's finalize tree reduction."""
    row = ExperimentRow(workload=workload, nprocs=nprocs, params=params)
    if profile and metrics is None:
        metrics = MetricsRegistry()

    if baseline:
        t0 = time.perf_counter()
        make(workload, nprocs, **params).run(seed=seed)
        row.app_seconds = time.perf_counter() - t0

    if pilgrim:
        tracer = make_tracer("pilgrim", TracerOptions(
            metrics=metrics, jobs=jobs, extra=dict(pilgrim_kwargs or {})))
        t0 = time.perf_counter()
        res = make(workload, nprocs, **params).run(seed=seed, tracer=tracer)
        row.pilgrim_seconds = time.perf_counter() - t0
        r = tracer.result
        row.mpi_calls = r.total_calls
        row.pilgrim_size = r.trace_size
        row.n_signatures = r.n_signatures
        row.n_unique_grammars = r.n_unique_grammars
        row.time_intra = r.time_intra
        row.time_cst_merge = r.time_cst_merge
        row.time_cfg_merge = r.time_cfg_merge
        row.phases = dict(r.phases)

    if scalatrace:
        tracer = make_tracer("scalatrace", TracerOptions(
            metrics=metrics, extra=dict(scalatrace_kwargs or {})))
        t0 = time.perf_counter()
        make(workload, nprocs, **params).run(seed=seed, tracer=tracer)
        row.scalatrace_seconds = time.perf_counter() - t0
        row.scalatrace_size = tracer.result.trace_size
        row.n_unique_scalatrace = tracer.result.n_unique_traces
        if not row.mpi_calls:
            row.mpi_calls = tracer.result.total_calls

    return row
