"""Cartesian topology calls.

``MPI_Cart_create`` is a creation collective (it may drop ranks when the
grid is smaller than the communicator); the ``coords``/``rank``/``shift``
queries are local.  These are the calls the stencil workloads (§4.1) and
the BT/SP skeletons are built on — relative-rank encoding (§3.4.2) gets
its leverage from the shift results recorded here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .api_base import ApiBase
from .comm import Comm
from .errors import InvalidArgumentError
from .group import Group
from .topology import CartTopology, dims_create


def _cart(comm: Comm) -> CartTopology:
    if comm.topo is None:
        raise InvalidArgumentError(
            f"{comm.name} has no Cartesian topology attached")
    return comm.topo


class ApiTopo(ApiBase):
    """Topology mixin."""

    def dims_create(self, nnodes: int, ndims: int,
                    dims: Optional[Sequence[int]] = None) -> tuple[int, ...]:
        t0 = self._tick()
        out = dims_create(nnodes, ndims, dims)
        self._rec("MPI_Dims_create", t0, {
            "nnodes": nnodes, "ndims": ndims, "dims": out})
        return out

    def cart_create(self, comm: Optional[Comm], dims: Sequence[int],
                    periods: Sequence[bool], reorder: bool = False):
        comm = comm or self.world
        dims = tuple(int(d) for d in dims)
        periods = tuple(bool(p) for p in periods)
        if len(dims) != len(periods):
            raise InvalidArgumentError("dims/periods length mismatch")
        nnodes = 1
        for d in dims:
            nnodes *= d
        if nnodes > comm.group.size:
            raise InvalidArgumentError(
                f"cart grid {dims} larger than communicator "
                f"({comm.group.size})")
        rt = self.rt

        def compute(g, c):
            members = c.group.ranks[:nnodes]
            newc = rt.make_comm(Group(members))
            newc.topo = CartTopology(dims, periods)
            return {w: (newc if w in members else None) for w in g.arrived}

        t0 = self._tick()
        newcomm = yield from self._coll(
            "comm_create", comm, None, 0, compute,
            ("cart_create", dims, periods))
        self._rec("MPI_Cart_create", t0, {
            "comm_old": comm, "ndims": len(dims), "dims": dims,
            "periods": tuple(int(p) for p in periods),
            "reorder": int(reorder), "comm_cart": newcomm})
        return newcomm

    def cart_coords(self, comm: Comm, rank: int) -> tuple[int, ...]:
        comm.check_usable()
        topo = _cart(comm)
        t0 = self._tick()
        coords = topo.coords_of(rank)
        self._rec("MPI_Cart_coords", t0, {
            "comm": comm, "rank": rank, "maxdims": topo.ndims,
            "coords": coords})
        return coords

    def cart_rank(self, comm: Comm, coords: Sequence[int]) -> int:
        comm.check_usable()
        topo = _cart(comm)
        t0 = self._tick()
        rank = topo.rank_of(coords)
        self._rec("MPI_Cart_rank", t0, {
            "comm": comm, "coords": tuple(coords), "rank": rank})
        return rank

    def cart_shift(self, comm: Comm, direction: int,
                   disp: int) -> tuple[int, int]:
        comm.check_usable()
        topo = _cart(comm)
        t0 = self._tick()
        me = self._comm_rank(comm)
        src, dest = topo.shift(me, direction, disp)
        self._rec("MPI_Cart_shift", t0, {
            "comm": comm, "direction": direction, "disp": disp,
            "rank_source": src, "rank_dest": dest})
        return src, dest

    def cart_sub(self, comm: Comm, remain_dims: Sequence[bool]):
        comm.check_usable()
        topo = _cart(comm)
        remain = tuple(bool(r) for r in remain_dims)
        if len(remain) != topo.ndims:
            raise InvalidArgumentError("remain_dims length mismatch")
        rt = self.rt

        def compute(g, c):
            sub_dims = tuple(d for d, r in zip(topo.dims, remain) if r)
            sub_periods = tuple(p for p, r in zip(topo.periods, remain) if r)
            buckets: dict[tuple, list[tuple[tuple, int]]] = {}
            for crank, w in enumerate(c.group.ranks):
                coords = topo.coords_of(crank)
                key = tuple(x for x, r in zip(coords, remain) if not r)
                sub_coords = tuple(x for x, r in zip(coords, remain) if r)
                buckets.setdefault(key, []).append((sub_coords, w))
            out = {}
            for key in sorted(buckets):
                members = sorted(buckets[key])
                newc = rt.make_comm(Group([w for _, w in members]))
                newc.topo = CartTopology(sub_dims, sub_periods)
                for _, w in members:
                    out[w] = newc
            return out

        t0 = self._tick()
        newcomm = yield from self._coll("comm_split", comm, None, 0, compute,
                                        ("cart_sub", remain))
        self._rec("MPI_Cart_sub", t0, {
            "comm": comm, "remain_dims": tuple(int(r) for r in remain),
            "newcomm": newcomm})
        return newcomm
