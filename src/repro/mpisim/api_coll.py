"""Collective operations.

Each collective is a rendezvous on the communicator (see
:meth:`repro.mpisim.comm.Comm.join_collective`): the *n*-th collective call
of every member joins gathering *n*, the last arrival computes the results
and completion time (max arrival + LogP-style cost), and everyone resumes.
Blocking and non-blocking variants share the same rendezvous, which gives
``MPI_Ibarrier``/``MPI_Iallreduce`` correct ordering semantics for free.

Data semantics operate on Python payloads (numbers / sequences / None);
reductions are ordered by communicator rank as the standard requires for
deterministic results.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from . import datatypes as dt
from .api_base import ApiBase
from .comm import Comm
from .errors import InvalidArgumentError
from .future import Future
from .ops import Op, reduce_payloads
from .request import Request
from .status import Status


class ApiColl(ApiBase):
    """Collectives mixin."""

    # -- rendezvous scaffolding ------------------------------------------------

    def _finalize_fn(self, op_name: str, nbytes: int, compute):
        rt = self.rt

        def fin(g, comm: Comm) -> None:
            tmax = g.max_arrival()
            nprocs = comm.group.size + (comm.remote_group.size
                                        if comm.remote_group else 0)
            tdone = tmax + rt.net.coll_time(op_name, nprocs, nbytes)
            results = compute(g, comm) if compute is not None else None
            if rt.events is not None:
                rt.events.emit("coll.complete", op=op_name,
                               comm=comm.cid, nprocs=nprocs,
                               bytes=nbytes, vtime=tdone)
            for wr, fut in g.futures.items():
                val = results.get(wr) if results is not None else None
                if isinstance(fut, Request):
                    rt.scheduler_complete(fut, Status.empty(), tdone,
                                          value=val)
                else:
                    rt.scheduler.resolve(fut, (val, tdone))

        return fin

    def _coll(self, op_name: str, comm: Comm, payload: Any, nbytes: int,
              compute, check_args: Any = None):
        """Blocking collective: generator returning this rank's result."""
        comm.check_usable()
        self._mark(f"MPI_{op_name.capitalize()}")
        fut = Future(f"{op_name}@{comm.name} rank={self.rank}")
        comm.join_collective(self.rank, op_name,
                             self._finalize_fn(op_name, nbytes, compute),
                             payload, self.clock.now, fut, check_args)
        val, tdone = yield fut
        self.clock.sync_to(tdone)
        return val

    def _coll_nb(self, op_name: str, comm: Comm, payload: Any, nbytes: int,
                 compute, check_args: Any = None) -> Request:
        """Non-blocking collective: returns a request whose ``value`` will
        hold this rank's result on completion."""
        comm.check_usable()
        req = self._new_request("icoll:" + op_name, comm_cid=comm.cid,
                                nbytes=nbytes)
        req.post_time = self.clock.now
        comm.join_collective(self.rank, op_name,
                             self._finalize_fn(op_name, nbytes, compute),
                             payload, self.clock.now, req, check_args)
        return req

    @staticmethod
    def _require_intra(comm: Comm, op_name: str) -> None:
        if comm.remote_group is not None:
            raise InvalidArgumentError(
                f"{op_name} on an inter-communicator is not supported by "
                f"the simulator (merge it first, as Pilgrim itself does)")

    def _root_world(self, comm: Comm, root: int) -> int:
        if not 0 <= root < comm.group.size:
            raise InvalidArgumentError(
                f"root {root} out of range for {comm.name}")
        return comm.group.world_rank(root)

    # -- result computations ------------------------------------------------------

    @staticmethod
    def _ordered(g, comm: Comm) -> list:
        return [g.arrived[w][0] for w in comm.group.ranks]

    def _c_bcast(self, root: int):
        def compute(g, comm):
            rootw = comm.group.world_rank(root)
            val = g.arrived[rootw][0]
            return {w: val for w in g.arrived}
        return compute

    def _c_reduce(self, op: Op, root: int):
        def compute(g, comm):
            res = reduce_payloads(op, self._ordered(g, comm))
            return {comm.group.world_rank(root): res}
        return compute

    def _c_allreduce(self, op: Op):
        def compute(g, comm):
            res = reduce_payloads(op, self._ordered(g, comm))
            return {w: res for w in g.arrived}
        return compute

    def _c_gather(self, root: int):
        def compute(g, comm):
            return {comm.group.world_rank(root): self._ordered(g, comm)}
        return compute

    def _c_allgather(self):
        def compute(g, comm):
            vals = self._ordered(g, comm)
            return {w: vals for w in g.arrived}
        return compute

    def _c_scatter(self, root: int):
        def compute(g, comm):
            rootw = comm.group.world_rank(root)
            vals = g.arrived[rootw][0]
            out = {}
            for i, w in enumerate(comm.group.ranks):
                out[w] = None if vals is None else vals[i]
            return out
        return compute

    def _c_alltoall(self):
        def compute(g, comm):
            ranks = comm.group.ranks
            rows = [g.arrived[w][0] for w in ranks]
            out = {}
            for i, w in enumerate(ranks):
                if all(r is None for r in rows):
                    out[w] = None
                else:
                    out[w] = [None if r is None else r[i] for r in rows]
            return out
        return compute

    def _c_scan(self, op: Op, *, exclusive: bool):
        def compute(g, comm):
            vals = self._ordered(g, comm)
            out = {}
            for i, w in enumerate(comm.group.ranks):
                upto = vals[:i] if exclusive else vals[:i + 1]
                out[w] = reduce_payloads(op, upto) if upto else None
            return out
        return compute

    def _c_reduce_scatter_block(self, op: Op):
        def compute(g, comm):
            vals = self._ordered(g, comm)
            folded = reduce_payloads(op, vals)
            out = {}
            for i, w in enumerate(comm.group.ranks):
                out[w] = None if folded is None else folded[i]
            return out
        return compute

    def _c_reduce_scatter(self, op: Op, recvcounts: Sequence[int]):
        def compute(g, comm):
            vals = self._ordered(g, comm)
            folded = reduce_payloads(op, vals)
            out = {}
            off = 0
            for i, w in enumerate(comm.group.ranks):
                n = recvcounts[i]
                out[w] = None if folded is None else list(folded[off:off + n])
                off += n
            return out
        return compute

    # -- blocking collectives -------------------------------------------------------

    def barrier(self, comm: Optional[Comm] = None):
        comm = comm or self.world
        t0 = self._tick()
        yield from self._coll("barrier", comm, None, 0, None)
        self._rec("MPI_Barrier", t0, {"comm": comm})

    def bcast(self, buffer: int, count: int, datatype: dt.Datatype,
              root: int, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Bcast")
        self._root_world(comm, root)
        datatype.check_usable()
        t0 = self._tick()
        val = yield from self._coll("bcast", comm, data,
                                    count * datatype.size,
                                    self._c_bcast(root), ("bcast", root))
        self._rec("MPI_Bcast", t0, {
            "buffer": buffer, "count": count, "datatype": datatype,
            "root": root, "comm": comm})
        return val

    def reduce(self, sendbuf: int, recvbuf: int, count: int,
               datatype: dt.Datatype, op: Op, root: int,
               comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Reduce")
        self._root_world(comm, root)
        datatype.check_usable()
        t0 = self._tick()
        val = yield from self._coll("reduce", comm, data,
                                    count * datatype.size,
                                    self._c_reduce(op, root),
                                    ("reduce", root, op.name))
        self._rec("MPI_Reduce", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "count": count,
            "datatype": datatype, "op": op, "root": root, "comm": comm})
        return val

    def allreduce(self, sendbuf: int, recvbuf: int, count: int,
                  datatype: dt.Datatype, op: Op,
                  comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Allreduce")
        datatype.check_usable()
        t0 = self._tick()
        val = yield from self._coll("allreduce", comm, data,
                                    count * datatype.size,
                                    self._c_allreduce(op),
                                    ("allreduce", op.name))
        self._rec("MPI_Allreduce", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "count": count,
            "datatype": datatype, "op": op, "comm": comm})
        return val

    def gather(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
               recvbuf: int, recvcount: int, recvtype: dt.Datatype,
               root: int, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Gather")
        t0 = self._tick()
        val = yield from self._coll("gather", comm, data,
                                    sendcount * sendtype.size,
                                    self._c_gather(root), ("gather", root))
        self._rec("MPI_Gather", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "root": root, "comm": comm})
        return val

    def gatherv(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                recvbuf: int, recvcounts: Optional[Sequence[int]],
                displs: Optional[Sequence[int]], recvtype: dt.Datatype,
                root: int, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Gatherv")
        t0 = self._tick()
        val = yield from self._coll("gather", comm, data,
                                    sendcount * sendtype.size,
                                    self._c_gather(root), ("gatherv", root))
        self._rec("MPI_Gatherv", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf,
            "recvcounts": tuple(recvcounts) if recvcounts else None,
            "displs": tuple(displs) if displs else None,
            "recvtype": recvtype, "root": root, "comm": comm})
        return val

    def scatter(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                root: int, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Scatter")
        t0 = self._tick()
        val = yield from self._coll("scatter", comm, data,
                                    recvcount * recvtype.size,
                                    self._c_scatter(root), ("scatter", root))
        self._rec("MPI_Scatter", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "root": root, "comm": comm})
        return val

    def scatterv(self, sendbuf: int, sendcounts: Optional[Sequence[int]],
                 displs: Optional[Sequence[int]], sendtype: dt.Datatype,
                 recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                 root: int, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Scatterv")
        t0 = self._tick()
        val = yield from self._coll("scatter", comm, data,
                                    recvcount * recvtype.size,
                                    self._c_scatter(root), ("scatterv", root))
        self._rec("MPI_Scatterv", t0, {
            "sendbuf": sendbuf,
            "sendcounts": tuple(sendcounts) if sendcounts else None,
            "displs": tuple(displs) if displs else None,
            "sendtype": sendtype, "recvbuf": recvbuf,
            "recvcount": recvcount, "recvtype": recvtype, "root": root,
            "comm": comm})
        return val

    def allgather(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                  recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                  comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Allgather")
        t0 = self._tick()
        val = yield from self._coll("allgather", comm, data,
                                    sendcount * sendtype.size,
                                    self._c_allgather(), ("allgather",))
        self._rec("MPI_Allgather", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "comm": comm})
        return val

    def allgatherv(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                   recvbuf: int, recvcounts: Optional[Sequence[int]],
                   displs: Optional[Sequence[int]], recvtype: dt.Datatype,
                   comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Allgatherv")
        t0 = self._tick()
        val = yield from self._coll("allgather", comm, data,
                                    sendcount * sendtype.size,
                                    self._c_allgather(), ("allgatherv",))
        self._rec("MPI_Allgatherv", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf,
            "recvcounts": tuple(recvcounts) if recvcounts else None,
            "displs": tuple(displs) if displs else None,
            "recvtype": recvtype, "comm": comm})
        return val

    def alltoall(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                 recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                 comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Alltoall")
        t0 = self._tick()
        val = yield from self._coll("alltoall", comm, data,
                                    sendcount * sendtype.size * comm.size,
                                    self._c_alltoall(), ("alltoall",))
        self._rec("MPI_Alltoall", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "comm": comm})
        return val

    def alltoallv(self, sendbuf: int, sendcounts: Sequence[int],
                  sdispls: Sequence[int], sendtype: dt.Datatype,
                  recvbuf: int, recvcounts: Sequence[int],
                  rdispls: Sequence[int], recvtype: dt.Datatype,
                  comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Alltoallv")
        t0 = self._tick()
        nbytes = sum(sendcounts) * sendtype.size
        val = yield from self._coll("alltoallv", comm, data, nbytes,
                                    self._c_alltoall(), ("alltoallv",))
        self._rec("MPI_Alltoallv", t0, {
            "sendbuf": sendbuf, "sendcounts": tuple(sendcounts),
            "sdispls": tuple(sdispls), "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcounts": tuple(recvcounts),
            "rdispls": tuple(rdispls), "recvtype": recvtype, "comm": comm})
        return val

    def reduce_scatter(self, sendbuf: int, recvbuf: int,
                       recvcounts: Sequence[int], datatype: dt.Datatype,
                       op: Op, comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Reduce_scatter")
        if len(recvcounts) != comm.size:
            raise InvalidArgumentError("recvcounts length != comm size")
        t0 = self._tick()
        nbytes = sum(recvcounts) * datatype.size
        val = yield from self._coll("reduce_scatter", comm, data, nbytes,
                                    self._c_reduce_scatter(op, recvcounts),
                                    ("reduce_scatter", op.name))
        self._rec("MPI_Reduce_scatter", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf,
            "recvcounts": tuple(recvcounts), "datatype": datatype,
            "op": op, "comm": comm})
        return val

    def reduce_scatter_block(self, sendbuf: int, recvbuf: int,
                             recvcount: int, datatype: dt.Datatype, op: Op,
                             comm: Optional[Comm] = None, data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Reduce_scatter_block")
        t0 = self._tick()
        nbytes = recvcount * datatype.size * comm.size
        val = yield from self._coll("reduce_scatter", comm, data, nbytes,
                                    self._c_reduce_scatter_block(op),
                                    ("reduce_scatter_block", op.name))
        self._rec("MPI_Reduce_scatter_block", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "recvcount": recvcount,
            "datatype": datatype, "op": op, "comm": comm})
        return val

    def scan(self, sendbuf: int, recvbuf: int, count: int,
             datatype: dt.Datatype, op: Op, comm: Optional[Comm] = None,
             data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Scan")
        t0 = self._tick()
        val = yield from self._coll("scan", comm, data,
                                    count * datatype.size,
                                    self._c_scan(op, exclusive=False),
                                    ("scan", op.name))
        self._rec("MPI_Scan", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "count": count,
            "datatype": datatype, "op": op, "comm": comm})
        return val

    def exscan(self, sendbuf: int, recvbuf: int, count: int,
               datatype: dt.Datatype, op: Op, comm: Optional[Comm] = None,
               data: Any = None):
        comm = comm or self.world
        self._require_intra(comm, "MPI_Exscan")
        t0 = self._tick()
        val = yield from self._coll("scan", comm, data,
                                    count * datatype.size,
                                    self._c_scan(op, exclusive=True),
                                    ("exscan", op.name))
        self._rec("MPI_Exscan", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "count": count,
            "datatype": datatype, "op": op, "comm": comm})
        return val

    # -- non-blocking collectives -------------------------------------------------------

    def ibarrier(self, comm: Optional[Comm] = None) -> Request:
        comm = comm or self.world
        t0 = self._tick()
        req = self._coll_nb("barrier", comm, None, 0, None)
        self._rec("MPI_Ibarrier", t0, {"comm": comm, "request": req})
        return req

    def ibcast(self, buffer: int, count: int, datatype: dt.Datatype,
               root: int, comm: Optional[Comm] = None,
               data: Any = None) -> Request:
        comm = comm or self.world
        self._require_intra(comm, "MPI_Ibcast")
        t0 = self._tick()
        req = self._coll_nb("bcast", comm, data, count * datatype.size,
                            self._c_bcast(root), ("bcast", root))
        self._rec("MPI_Ibcast", t0, {
            "buffer": buffer, "count": count, "datatype": datatype,
            "root": root, "comm": comm, "request": req})
        return req

    def iallreduce(self, sendbuf: int, recvbuf: int, count: int,
                   datatype: dt.Datatype, op: Op,
                   comm: Optional[Comm] = None, data: Any = None) -> Request:
        comm = comm or self.world
        self._require_intra(comm, "MPI_Iallreduce")
        t0 = self._tick()
        req = self._coll_nb("allreduce", comm, data, count * datatype.size,
                            self._c_allreduce(op), ("allreduce", op.name))
        self._rec("MPI_Iallreduce", t0, {
            "sendbuf": sendbuf, "recvbuf": recvbuf, "count": count,
            "datatype": datatype, "op": op, "comm": comm, "request": req})
        return req

    def iallgather(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                   recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                   comm: Optional[Comm] = None, data: Any = None) -> Request:
        comm = comm or self.world
        self._require_intra(comm, "MPI_Iallgather")
        t0 = self._tick()
        req = self._coll_nb("allgather", comm, data,
                            sendcount * sendtype.size,
                            self._c_allgather(), ("allgather",))
        self._rec("MPI_Iallgather", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "comm": comm, "request": req})
        return req

    def ialltoall(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                  recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                  comm: Optional[Comm] = None, data: Any = None) -> Request:
        comm = comm or self.world
        self._require_intra(comm, "MPI_Ialltoall")
        t0 = self._tick()
        req = self._coll_nb("alltoall", comm, data,
                            sendcount * sendtype.size * comm.size,
                            self._c_alltoall(), ("alltoall",))
        self._rec("MPI_Ialltoall", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "comm": comm, "request": req})
        return req
