"""Shared plumbing for the rank-facing MPI API.

The API is split across mixin modules (p2p, completion, collectives,
communicator management, datatypes/topology/local) that all build on the
helpers here.  Conventions:

* **Blocking** operations are generator functions — rank programs invoke
  them as ``result = yield from m.recv(...)``.
* **Non-blocking / local** operations are plain methods.
* Every operation reports itself to the attached tracer through
  :meth:`_rec`, passing a dict of *all* parameters (inputs and outputs,
  direction information lives in :mod:`repro.mpisim.funcs`) plus the
  virtual entry/exit timestamps — exactly the information a PMPI
  prologue/epilogue pair observes (§3.1).
"""

from __future__ import annotations

from typing import Optional

from . import constants as C
from . import datatypes as dt
from .comm import Comm
from .errors import InvalidArgumentError
from .request import Request

#: virtual cost of a purely local MPI call (comm_rank, type_size, ...)
LOCAL_OP_COST = 5.0e-8


class ApiBase:
    """State and helpers common to all API mixins."""

    def __init__(self, rt, rank: int):
        self.rt = rt
        self.rank = rank                    # world rank
        self.clock = rt.clocks[rank]
        self.heap = rt.heaps[rank]
        self.types = rt.type_tables[rank]
        self.world: Comm = rt.world
        self._next_req_handle = 1
        hook = rt.tracer.on_call if rt.tracer is not None else None
        self._hook = hook
        self._mem_hook = rt.tracer.on_mem if rt.tracer is not None else None
        #: this rank's scheduler context (wired by SimMPI.run); _rec keeps
        #: its last_call current so deadlock/livelock diagnostics can name
        #: the MPI call each rank is parked in
        self._ctx = None

    # -- tracer plumbing -----------------------------------------------------

    def _rec(self, fname: str, t0: float, args: dict) -> None:
        if self._ctx is not None:
            self._ctx.last_call = fname
        if self._hook is not None:
            self._hook(self.rank, fname, args, t0, self.clock.now)

    def _mark(self, fname: str) -> None:
        """Note the MPI call being *entered*.  Blocking primitives call
        this before parking so that, if the rank never progresses, the
        deadlock/livelock diagnostics name the call it is stuck in
        (``_rec`` only fires on completion, which never comes)."""
        if self._ctx is not None:
            self._ctx.last_call = fname

    # -- request plumbing -----------------------------------------------------

    def _new_request(self, kind: str, **kw) -> Request:
        req = Request(kind, self.rank, self._next_req_handle, **kw)
        self._next_req_handle += 1
        return req

    @staticmethod
    def _live(req: Optional[Request]) -> bool:
        """Is this array entry a request that still needs completion?"""
        return req is not None and not req.freed

    # -- argument validation ----------------------------------------------------

    def _check_p2p_args(self, comm: Comm, peer: int, count: int,
                        datatype: dt.Datatype, tag: int, *,
                        is_recv: bool) -> None:
        comm.check_usable()
        datatype.check_usable()
        if count < 0:
            raise InvalidArgumentError(f"negative count {count}")
        if is_recv:
            if tag != C.ANY_TAG and not 0 <= tag <= C.TAG_UB:
                raise InvalidArgumentError(f"invalid recv tag {tag}")
        else:
            if not 0 <= tag <= C.TAG_UB:
                raise InvalidArgumentError(f"invalid send tag {tag}")
        self._check_peer(comm, peer, wildcard_ok=is_recv)

    def _check_peer(self, comm: Comm, peer: int, *,
                    wildcard_ok: bool = False) -> None:
        if peer == C.PROC_NULL:
            return
        if wildcard_ok and peer == C.ANY_SOURCE:
            return
        size = self._peer_group(comm).size
        if not 0 <= peer < size:
            raise InvalidArgumentError(
                f"peer rank {peer} out of range for {comm.name} (size {size})")

    # -- group resolution (intra vs inter) -----------------------------------------

    def _local_group(self, comm: Comm):
        if comm.remote_group is None:
            return comm.group
        if comm.group.contains(self.rank):
            return comm.group
        return comm.remote_group

    def _peer_group(self, comm: Comm):
        if comm.remote_group is None:
            return comm.group
        if comm.group.contains(self.rank):
            return comm.remote_group
        return comm.group

    def _comm_rank(self, comm: Comm) -> int:
        return self._local_group(comm).rank_of(self.rank)

    # -- misc ------------------------------------------------------------------

    def _tick(self) -> float:
        """Charge the fixed software cost of an MPI call; returns entry time."""
        t0 = self.clock.now
        self.clock.advance_exact(self.rt.net.overhead)
        return t0

    def compute(self, seconds: float) -> float:
        """Model a local computation phase (noise applied). Not an MPI call —
        never traced."""
        return self.clock.advance(seconds)

    def yield_to_scheduler(self):
        """Cooperatively let other ranks run (used by spin loops around
        Test/Iprobe). Usage: ``yield from m.yield_to_scheduler()``."""
        yield None

    # -- simulated heap interception ----------------------------------------------

    def malloc(self, size: int) -> int:
        addr = self.heap.malloc(size)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "malloc", {"size": size}, addr,
                           self.clock.now)
        return addr

    def calloc(self, nmemb: int, size: int) -> int:
        addr = self.heap.calloc(nmemb, size)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "calloc",
                           {"nmemb": nmemb, "size": size}, addr,
                           self.clock.now)
        return addr

    def realloc(self, addr: int, size: int) -> int:
        new_addr = self.heap.realloc(addr, size)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "realloc",
                           {"ptr": addr, "size": size}, new_addr,
                           self.clock.now)
        return new_addr

    def free(self, addr: int) -> None:
        self.heap.free(addr)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "free", {"ptr": addr}, None,
                           self.clock.now)

    def cuda_malloc(self, size: int, device: int = 0) -> int:
        addr = self.heap.cuda_malloc(size, device)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "cudaMalloc",
                           {"size": size, "device": device}, addr,
                           self.clock.now)
        return addr

    def cuda_free(self, addr: int) -> None:
        self.heap.cuda_free(addr)
        if self._mem_hook is not None:
            self._mem_hook(self.rank, "cudaFree", {"ptr": addr}, None,
                           self.clock.now)
