"""Request objects for non-blocking operations.

A :class:`Request` is a :class:`~repro.mpisim.future.Future` enriched with
MPI metadata.  Requests carry rank-local integer handles; handle allocation
order is what Pilgrim's per-signature id pools (§3.4.3) are designed to
stabilise, so the runtime must hand handles out in creation order and the
tracer sees the raw objects.
"""

from __future__ import annotations

from typing import Optional

from .errors import InvalidHandleError
from .future import Future
from .status import Status


class Request(Future):
    """A non-blocking operation in flight (or completed, or inactive)."""

    __slots__ = ("kind", "owner", "comm_cid", "peer", "tag", "nbytes",
                 "datatype_handle", "buf_addr", "handle", "status",
                 "complete_time", "freed", "cancelled", "persistent",
                 "active", "post_time", "consumed", "_persistent_start",
                 "current")

    def __init__(self, kind: str, owner: int, handle: int, *,
                 comm_cid: int = -1, peer: int = -1, tag: int = -1,
                 nbytes: int = 0, datatype_handle: int = 0,
                 buf_addr: int = 0):
        super().__init__(desc=f"{kind} req#{handle} rank={owner}")
        self.kind = kind              # "isend" | "irecv" | "icoll" | "comm_idup" | ...
        self.owner = owner            # world rank that created the request
        self.handle = handle          # rank-local handle integer
        self.comm_cid = comm_cid
        self.peer = peer              # destination (isend) / source (irecv)
        self.tag = tag
        self.nbytes = nbytes
        self.datatype_handle = datatype_handle
        self.buf_addr = buf_addr
        self.status: Optional[Status] = None
        self.complete_time: float = 0.0
        self.post_time: float = 0.0
        self.freed = False
        self.cancelled = False
        self.persistent = False
        self.active = True
        #: set once a completion call (wait/test) has consumed this request;
        #: mirrors MPI setting the user's handle to MPI_REQUEST_NULL
        self.consumed = False
        self._persistent_start = None  # callable restarting a persistent op
        #: for persistent requests: the in-flight operation of this round
        self.current: Optional["Request"] = None

    def wait_target(self) -> "Request":
        """The future a completion call must wait on (persistent requests
        delegate to the in-flight operation of the current round)."""
        if self.persistent:
            return self.current if self.current is not None else self
        return self

    def check_usable(self) -> None:
        if self.freed:
            raise InvalidHandleError(f"request {self.desc} was freed")

    def complete(self, status: Optional[Status], when: float, value=None) -> list:
        """Mark complete at virtual time *when*; returns rank contexts to wake."""
        self.status = status
        self.complete_time = when
        self.active = False
        return self.resolve(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = "done" if self.done else "pending"
        return f"<Request {self.kind}#{self.handle} rank={self.owner} {st}>"


REQUEST_NULL = None  # completed-and-freed requests become None in user arrays
