"""The synchronisation primitive connecting rank coroutines to the scheduler.

A rank program is a Python generator.  Whenever it must block it yields a
:class:`Future`; the scheduler parks the rank until the future resolves and
then resumes the generator with the future's value.  Everything blocking in
the simulator — receives, waits, collectives — bottoms out in a future.
"""

from __future__ import annotations

from typing import Any, Callable

_UNSET = object()


class Future:
    """A one-shot resolvable value with waiters and callbacks."""

    __slots__ = ("_value", "waiters", "callbacks", "desc")

    def __init__(self, desc: str = "?"):
        self._value: Any = _UNSET
        #: rank contexts parked on this future (managed by the scheduler)
        self.waiters: list = []
        #: callbacks fired on resolution, e.g. wait-any aggregation
        self.callbacks: list[Callable[["Future"], None]] = []
        #: human-readable description, surfaced in deadlock reports
        self.desc = desc

    @property
    def done(self) -> bool:
        return self._value is not _UNSET

    @property
    def value(self) -> Any:
        assert self._value is not _UNSET, "future read before resolution"
        return self._value

    def resolve(self, value: Any = None) -> list:
        """Resolve and return the rank contexts to wake (scheduler enqueues)."""
        assert self._value is _UNSET, f"double resolve of future {self.desc}"
        self._value = value
        woken = self.waiters
        self.waiters = []
        for cb in self.callbacks:
            cb(self)
        self.callbacks = []
        return woken

    def add_callback(self, cb: Callable[["Future"], None]) -> None:
        if self.done:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"pending({len(self.waiters)} waiters)"
        return f"<Future {self.desc} {state}>"
