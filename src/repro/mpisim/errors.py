"""Exception hierarchy for the simulated MPI runtime.

The simulator is strict: misuse that a real MPI library would flag as an
error (or silently corrupt) raises a Python exception carrying enough
context to debug the offending rank program.
"""

from __future__ import annotations


class MpiSimError(Exception):
    """Base class for all simulator errors."""


class InvalidHandleError(MpiSimError):
    """A freed, foreign, or otherwise invalid handle was used in a call."""


class InvalidArgumentError(MpiSimError):
    """An argument is out of range (negative count, bad rank, bad tag, ...)."""


class TruncationError(MpiSimError):
    """A received message is longer than the posted receive buffer."""


class CommMismatchError(MpiSimError):
    """An operation mixed handles belonging to different communicators."""


class CollectiveMismatchError(MpiSimError):
    """Ranks of a communicator disagree on the collective being performed.

    MPI requires every member of a communicator to invoke the same sequence
    of collective operations on it.  The simulator checks the operation name
    and (where the standard requires it) the signature-relevant arguments at
    the rendezvous point and raises this error on divergence.
    """


class DeadlockError(MpiSimError):
    """No rank is runnable but at least one has not finished.

    The message lists each blocked rank together with a human-readable
    description of the operation it is waiting on, which is usually enough
    to spot mismatched sends/receives or a collective that only part of the
    communicator entered.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        lines = [f"deadlock: {len(blocked)} rank(s) blocked with no runnable work"]
        for rank in sorted(blocked):
            lines.append(f"  rank {rank}: waiting on {blocked[rank]}")
        super().__init__("\n".join(lines))


class RankProgramError(MpiSimError):
    """A rank program raised; wraps the original exception with rank context."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
