"""Tracer hook protocol.

A tracer attached to the simulator plays the role PMPI interposition plays
for the real Pilgrim: it observes every MPI call (with all inputs and
outputs and virtual entry/exit timestamps) and every memory-management
call.  Hooks are synchronous — time the tracer spends inside a hook is
exactly the "intra-process compression" overhead of Fig 7/8, and the
harness measures it with real CPU timers.
"""

from __future__ import annotations

from typing import Any


class TracerHooks:
    """No-op base class; tracers override what they need."""

    def on_run_start(self, sim) -> None:
        """Called once before any rank executes (MPI_Init time)."""

    def on_call(self, rank: int, fname: str, args: dict[str, Any],
                t0: float, t1: float) -> None:
        """One MPI call on one rank: *args* holds every parameter (inputs
        and outputs; direction metadata lives in ``repro.mpisim.funcs``)."""

    def record_batch(self, rank: int, fnames, argses, t0s, t1s) -> None:
        """Many completed MPI calls on one rank, as parallel columns
        (``fnames[i]``, ``argses[i]``, ``t0s[i]``, ``t1s[i]`` describe
        call *i*).  Batching feeders use this to amortize hook dispatch;
        the default unrolls to :meth:`on_call`, so tracers without a
        native batch path keep working unchanged."""
        on_call = self.on_call
        for i in range(len(fnames)):
            on_call(rank, fnames[i], argses[i], t0s[i], t1s[i])

    def on_mem(self, rank: int, fname: str, args: dict[str, Any],
               result: Any, t: float) -> None:
        """A memory-management interception (malloc/free/cudaMalloc/...)."""

    def on_run_end(self, sim) -> None:
        """Called after every rank finished (MPI_Finalize time); tracers
        perform their inter-process compression here."""
