"""The simulator entry point: :class:`SimMPI` and :class:`RankAPI`.

Usage::

    from repro.mpisim import SimMPI, datatypes as dt

    def program(m):                  # a generator function, one per rank
        me = m.comm_rank()
        buf = m.malloc(1024)
        if me == 0:
            yield from m.send(buf, 1024, dt.BYTE, dest=1, tag=7)
        elif me == 1:
            data, st = yield from m.recv(buf, 1024, dt.BYTE, source=0, tag=7)
        yield from m.barrier()

    sim = SimMPI(nprocs=2, seed=1)
    result = sim.run(program)

Attach a tracer (e.g. ``repro.core.PilgrimTracer``) via the ``tracer=``
argument; it observes every call through :mod:`repro.mpisim.hooks`.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass
from typing import Callable, Optional

from .api_coll import ApiColl
from .api_comm import ApiComm
from .api_completion import ApiCompletion
from .api_p2p import ApiP2P
from .api_rma import ApiRMA
from .api_topo import ApiTopo
from .api_type import ApiType
from ..obs import EventLog
from .clock import RankClock
from .comm import Comm
from .datatypes import DatatypeTable
from .errors import InvalidArgumentError, MpiSimError
from .future import Future
from .group import Group
from .hooks import TracerHooks
from .memory import RankHeap
from .netmodel import NetworkModel
from .request import Request
from .scheduler import RankContext, Scheduler
from .status import Status


class RankAPI(ApiP2P, ApiCompletion, ApiColl, ApiComm, ApiType,
              ApiTopo, ApiRMA):
    """The full rank-facing MPI surface (see the mixin modules)."""

    def finalized(self) -> bool:
        return self.rt.finished


@dataclass
class RunResult:
    """Summary of one simulated execution."""

    nprocs: int
    #: per-rank virtual completion times (seconds)
    rank_times: list[float]
    #: total scheduler resume steps
    steps: int
    #: total number of traced MPI calls (0 when no tracer is attached)
    mpi_calls: int = 0

    @property
    def app_time(self) -> float:
        """Virtual makespan of the run."""
        return max(self.rank_times) if self.rank_times else 0.0


class SimMPI:
    """A simulated MPI world of ``nprocs`` ranks.

    Args:
        nprocs: number of simulated processes.
        seed: master seed; drives compute-noise and completion-order RNGs.
            Two runs with the same seed and program are bit-identical.
        tracer: optional :class:`~repro.mpisim.hooks.TracerHooks`.
        net: network cost model (defaults to :class:`NetworkModel`).
        noise: relative std-dev of compute-time noise.
        node_size: ranks per simulated node (comm_split_type, hostnames).
        events: optional :class:`repro.obs.EventLog`; when attached the
            runtime records scheduler progress, message matches, wildcard
            resolutions, collective completions, and deadlock diagnostics.
    """

    def __init__(self, nprocs: int, *, seed: int = 0,
                 tracer: Optional[TracerHooks] = None,
                 net: Optional[NetworkModel] = None,
                 noise: float = 0.05,
                 node_size: int = 16,
                 spin_limit: int = 2_000_000,
                 events: Optional[EventLog] = None,
                 faults=None):
        if nprocs <= 0:
            raise InvalidArgumentError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.seed = seed
        self.tracer = tracer
        self.net = net or NetworkModel()
        self.node_size = node_size
        self.world = Comm(cid=0, group=Group(range(nprocs)),
                          name="MPI_COMM_WORLD")
        self._comms: dict[int, Comm] = {0: self.world}
        self._next_cid = 1
        self.clocks = [RankClock(seed * 1_000_003 + r, noise)
                       for r in range(nprocs)]
        self.heaps = [RankHeap() for _ in range(nprocs)]
        self.type_tables = [DatatypeTable() for _ in range(nprocs)]
        #: completion-order RNG (Waitany/Waitsome/Testany picks)
        self.rng = random.Random(seed ^ 0x9E3779B9)
        #: runtime event log; None unless observability was requested.
        #: Normalized once, and the *normalized* value is what the
        #: scheduler gets — a disabled log must never be consulted on the
        #: scheduler hot path.
        self.events = events if events is not None and events.enabled \
            else None
        #: optional fault injection (resilience testing): a FaultPlan or
        #: pre-armed FaultInjector; only handed to the scheduler when the
        #: plan actually targets scheduler sites, so fault-free runs (and
        #: pipeline-only plans) keep the scheduler loop untouched
        from ..resilience.faults import arm as _arm_faults
        self.faults = _arm_faults(faults)
        self.scheduler = Scheduler(
            spin_limit=spin_limit, events=self.events,
            faults=self.faults
            if self.faults is not None and self.faults.wants_sched
            else None)
        self._seq = 0
        self._next_wid = 0
        self._bridges: dict = {}
        self._ran = False
        self.finished = False
        self.apis: list[RankAPI] = []

    # -- registry ----------------------------------------------------------------

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def next_win_id(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        return wid

    def make_comm(self, group: Group,
                  remote_group: Optional[Group] = None,
                  name: str = "") -> Comm:
        comm = Comm(self._next_cid, group, remote_group, name)
        self._comms[comm.cid] = comm
        self._next_cid += 1
        return comm

    def comm_by_cid(self, cid: int) -> Comm:
        return self._comms[cid]

    def scheduler_complete(self, req: Request, status: Optional[Status],
                           when: float, value=None) -> None:
        self.scheduler.complete_request(req, status, when, value)

    # -- inter-communicator creation rendezvous ----------------------------------------

    def join_intercomm_create(self, key, local_comm: Comm, world_rank: int,
                              now: float) -> Future:
        fut = Future(f"intercomm_create{key} rank={world_rank}")
        st = self._bridges.setdefault(key, {})
        side = st.setdefault(local_comm.cid, {"comm": local_comm,
                                              "arrived": {}})
        side["arrived"][world_rank] = (fut, now)
        sides = list(st.values())
        if len(sides) == 2 and all(
                len(s["arrived"]) == s["comm"].group.size for s in sides):
            del self._bridges[key]
            sides.sort(key=lambda s: s["comm"].cid)
            ga, gb = sides[0]["comm"].group, sides[1]["comm"].group
            overlap = set(ga.ranks) & set(gb.ranks)
            if overlap:
                raise InvalidArgumentError(
                    f"intercomm_create: local groups overlap on {overlap}")
            newc = self.make_comm(Group(ga.ranks), Group(gb.ranks))
            total = ga.size + gb.size
            tmax = max(t for s in sides for _, t in s["arrived"].values())
            tdone = tmax + self.net.coll_time("comm_agree", total, 0)
            for s in sides:
                for _, (f, _t) in s["arrived"].items():
                    self.scheduler.resolve(f, (newc, tdone))
        return fut

    # -- execution --------------------------------------------------------------------

    def _rank_main(self, api: RankAPI,
                   program: Callable[[RankAPI], object]):
        t0 = api.clock.now
        api.clock.advance_exact(self.net.overhead)
        api._rec("MPI_Init", t0, {})
        gen = program(api)
        if inspect.isgenerator(gen):
            yield from gen
        elif gen is not None:
            raise MpiSimError(
                "rank programs must be generator functions (use "
                "'yield from m.<blocking-op>(...)' at least once, or "
                "return None)")
        # MPI_Finalize synchronises in practice; model it as a barrier.
        t0 = api.clock.now
        yield from api._coll("barrier", self.world, None, 0, None)
        api._rec("MPI_Finalize", t0, {})

    def run(self, program: Callable[[RankAPI], object]) -> RunResult:
        """Execute *program* on every rank to completion."""
        if self._ran:
            raise MpiSimError("SimMPI.run() may only be called once; "
                              "create a fresh SimMPI per run")
        self._ran = True
        if self.tracer is not None:
            self.tracer.on_run_start(self)
        self.apis = [RankAPI(self, r) for r in range(self.nprocs)]
        for r in range(self.nprocs):
            ctx = RankContext(r, self._rank_main(self.apis[r], program),
                              self.clocks[r])
            # let the API update the rank's call trail for diagnostics
            self.apis[r]._ctx = ctx
            self.scheduler.add_rank(ctx)
        self.scheduler.run()
        self.finished = True
        if self.tracer is not None:
            self.tracer.on_run_end(self)
        calls = getattr(self.tracer, "total_calls", 0) if self.tracer else 0
        return RunResult(
            nprocs=self.nprocs,
            rank_times=[c.now for c in self.clocks],
            steps=self.scheduler.steps,
            mpi_calls=calls,
        )
