"""One-sided (RMA) operations mixin.

Covers the window lifecycle and the core RMA surface: ``Win_create``,
``Win_allocate``, ``Win_free``, ``Win_fence``, ``Put``, ``Get``,
``Accumulate``, ``Win_lock``/``Win_unlock``, ``Win_set_name``.
"""

from __future__ import annotations

from typing import Any, Optional

from . import constants as C
from . import datatypes as dt
from .api_base import ApiBase
from .comm import Comm
from .errors import InvalidArgumentError
from .future import Future
from .ops import Op
from .win import LOCK_EXCLUSIVE, LOCK_SHARED, Win


class ApiRMA(ApiBase):
    """RMA mixin."""

    # -- lifecycle ----------------------------------------------------------------

    def win_create(self, base: int, size: int, disp_unit: int = 1,
                   comm: Optional[Comm] = None):
        """Collective window creation over *comm*."""
        comm = comm or self.world
        if size < 0 or disp_unit <= 0:
            raise InvalidArgumentError("bad win size/disp_unit")
        rt = self.rt

        def compute(g, c):
            bases, sizes, units = {}, {}, {}
            for i, w in enumerate(c.group.ranks):
                b, s, d = g.arrived[w][0]
                bases[i], sizes[i], units[i] = b, s, d
            win = Win(rt.next_win_id(), c, bases, sizes, units)
            win.sync_comm = rt.make_comm(type(c.group)(c.group.ranks),
                                         name=f"{win.name}-sync")
            return {w: win for w in g.arrived}

        t0 = self._tick()
        win = yield from self._coll("win_create", comm,
                                    (base, size, disp_unit), 0, compute)
        self._rec("MPI_Win_create", t0, {
            "base": base, "size": size, "disp_unit": disp_unit,
            "comm": comm, "win": win})
        return win

    def win_allocate(self, size: int, disp_unit: int = 1,
                     comm: Optional[Comm] = None):
        """Collective allocate-and-expose: the simulator mallocs the
        backing buffer (intercepted) and creates the window."""
        comm = comm or self.world
        base = self.malloc(max(size, 1))
        rt = self.rt

        def compute(g, c):
            bases, sizes, units = {}, {}, {}
            for i, w in enumerate(c.group.ranks):
                b, s, d = g.arrived[w][0]
                bases[i], sizes[i], units[i] = b, s, d
            win = Win(rt.next_win_id(), c, bases, sizes, units)
            win.sync_comm = rt.make_comm(type(c.group)(c.group.ranks),
                                         name=f"{win.name}-sync")
            return {w: win for w in g.arrived}

        t0 = self._tick()
        win = yield from self._coll("win_create", comm,
                                    (base, size, disp_unit), 0, compute)
        self._rec("MPI_Win_allocate", t0, {
            "size": size, "disp_unit": disp_unit, "comm": comm,
            "baseptr": base, "win": win})
        return base, win

    def win_free(self, win: Win):
        """Collective window destruction (synchronising, per standard)."""
        win.check_usable()

        def compute(g, c):
            return None

        t0 = self._tick()
        yield from self._coll("win_free", win.sync_comm, None, 0, compute)
        win.freed = True
        self._rec("MPI_Win_free", t0, {"win": win})

    def win_set_name(self, win: Win, name: str) -> None:
        win.check_usable()
        t0 = self._tick()
        win.name = name[:C.MAX_OBJECT_NAME]
        self._rec("MPI_Win_set_name", t0, {"win": win, "win_name": name})

    # -- active target synchronisation -----------------------------------------------

    def win_fence(self, win: Win, assert_: int = 0):
        """Collective fence: closes the current epoch (queued RMA effects
        land in window memory) and opens the next."""
        win.check_usable()

        def compute(g, c):
            win.apply_effects()
            win.fence_count += 1
            return None

        t0 = self._tick()
        yield from self._coll("win_fence", win.sync_comm, None, 0, compute,
                              ("win_fence", win.wid))
        self._rec("MPI_Win_fence", t0, {"assert": assert_, "win": win})

    # -- RMA operations ---------------------------------------------------------------

    def _rma_common(self, win: Win, target_rank: int, target_count: int,
                    target_datatype: dt.Datatype) -> int:
        win.check_usable()
        win.check_target(target_rank)
        target_datatype.check_usable()
        nbytes = target_count * target_datatype.size
        return nbytes

    def put(self, origin_addr: int, origin_count: int,
            origin_datatype: dt.Datatype, target_rank: int,
            target_disp: int, target_count: int,
            target_datatype: dt.Datatype, win: Win,
            data: Any = None) -> None:
        nbytes = self._rma_common(win, target_rank, target_count,
                                  target_datatype)
        t0 = self._tick()
        self.clock.advance_exact(self.rt.net.send_overhead(nbytes))
        win.queue_effect(target_rank,
                         (self._comm_rank(win.comm), "put", target_disp,
                          data))
        self._rec("MPI_Put", t0, {
            "origin_addr": origin_addr, "origin_count": origin_count,
            "origin_datatype": origin_datatype, "target_rank": target_rank,
            "target_disp": target_disp, "target_count": target_count,
            "target_datatype": target_datatype, "win": win})

    def get(self, origin_addr: int, origin_count: int,
            origin_datatype: dt.Datatype, target_rank: int,
            target_disp: int, target_count: int,
            target_datatype: dt.Datatype, win: Win) -> Any:
        """Returns the target's value at that displacement as of the last
        closed epoch (None for metadata-only windows)."""
        nbytes = self._rma_common(win, target_rank, target_count,
                                  target_datatype)
        t0 = self._tick()
        self.clock.advance_exact(self.rt.net.p2p_time(nbytes))
        value = win.memory[target_rank].get(target_disp)
        self._rec("MPI_Get", t0, {
            "origin_addr": origin_addr, "origin_count": origin_count,
            "origin_datatype": origin_datatype, "target_rank": target_rank,
            "target_disp": target_disp, "target_count": target_count,
            "target_datatype": target_datatype, "win": win})
        return value

    def accumulate(self, origin_addr: int, origin_count: int,
                   origin_datatype: dt.Datatype, target_rank: int,
                   target_disp: int, target_count: int,
                   target_datatype: dt.Datatype, op: Op, win: Win,
                   data: Any = None) -> None:
        nbytes = self._rma_common(win, target_rank, target_count,
                                  target_datatype)
        t0 = self._tick()
        self.clock.advance_exact(self.rt.net.send_overhead(nbytes))
        win.queue_effect(target_rank,
                         (self._comm_rank(win.comm), "acc", target_disp,
                          data))
        self._rec("MPI_Accumulate", t0, {
            "origin_addr": origin_addr, "origin_count": origin_count,
            "origin_datatype": origin_datatype, "target_rank": target_rank,
            "target_disp": target_disp, "target_count": target_count,
            "target_datatype": target_datatype, "op": op, "win": win})

    # -- passive target synchronisation ------------------------------------------------

    def win_lock(self, lock_type: int, target_rank: int, win: Win,
                 assert_: int = 0):
        """Acquire a shared/exclusive lock on *target_rank*'s window
        portion; blocks while an incompatible holder exists."""
        win.check_usable()
        win.check_target(target_rank)
        if lock_type not in (LOCK_EXCLUSIVE, LOCK_SHARED):
            raise InvalidArgumentError(f"bad lock type {lock_type}")
        t0 = self._tick()
        st = win.lock_state(target_rank)
        me = self.rank
        while True:
            holders, mode = st["holders"], st["mode"]
            compatible = (not holders) or (
                mode == LOCK_SHARED and lock_type == LOCK_SHARED)
            if compatible:
                st["holders"].add(me)
                st["mode"] = lock_type
                break
            fut = Future(f"win_lock({win.name},target={target_rank}) "
                         f"rank={me}")
            st["waiters"].append(fut)
            yield fut
        self._rec("MPI_Win_lock", t0, {
            "lock_type": lock_type, "rank": target_rank,
            "assert": assert_, "win": win})

    def win_unlock(self, target_rank: int, win: Win) -> None:
        """Release the lock; queued effects on that target land now."""
        win.check_usable()
        t0 = self._tick()
        st = win.lock_state(target_rank)
        if self.rank not in st["holders"]:
            raise InvalidArgumentError(
                f"rank {self.rank} does not hold the lock on "
                f"{win.name}[{target_rank}]")
        win.apply_effects(target_rank)
        st["holders"].discard(self.rank)
        if not st["holders"]:
            st["mode"] = 0
            while st["waiters"]:
                self.rt.scheduler.resolve(st["waiters"].popleft(), None)
        self._rec("MPI_Win_unlock", t0, {"rank": target_rank, "win": win})
