"""Completion operations: the MPI_Wait* and MPI_Test* families.

These are the calls the paper singles out in its introduction: a tracer
that drops ``MPI_Testsome`` (as ScalaTrace and Cypress do) cannot recover
the true completion order of non-blocking communication.  The simulator
therefore implements the full family with faithful semantics:

* null / already-consumed / inactive-persistent entries behave like
  ``MPI_REQUEST_NULL`` (empty status, never block);
* ``Waitany``/``Waitsome``/``Testany`` pick among *currently completed*
  requests using the runtime RNG, modelling network completion-order
  non-determinism (this is what exercises Pilgrim's per-signature request
  id pools, §3.4.3);
* ``Testall`` with an incomplete set consumes nothing, per the standard;
* every ``Test*`` call cooperatively yields to the scheduler so that spin
  loops make global progress, standing in for MPI's progress engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from . import constants as C
from .api_base import ApiBase
from .future import Future
from .request import Request
from .status import Status


class ApiCompletion(ApiBase):
    """Wait/Test mixin."""

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _is_null(req: Optional[Request]) -> bool:
        """Entries that complete immediately with an empty status."""
        if req is None or req.consumed or req.freed:
            return True
        if req.persistent and (req.current is None):
            return True  # inactive persistent request
        return False

    @staticmethod
    def _target(req: Request) -> Request:
        return req.wait_target()

    def _consume(self, req: Request) -> Status:
        """Extract the status of a completed request and deactivate it."""
        target = req.wait_target()
        st = target.status if target.status is not None else Status.empty()
        if req.persistent:
            req.current = None
            req.active = False
        else:
            req.consumed = True
        self.clock.sync_to(target.complete_time)
        return st

    def _wait_any_future(self, pending: list[Request]) -> Future:
        """A future resolved as soon as any of *pending* completes."""
        agg = Future(f"wait-any({len(pending)} reqs) rank={self.rank}")
        sched = self.rt.scheduler

        def on_done(_fut, agg=agg, sched=sched):
            if not agg.done:
                sched.resolve(agg, None)

        for req in pending:
            req.wait_target().add_callback(on_done)
        return agg

    # -- wait family --------------------------------------------------------------

    def wait(self, request: Optional[Request], status=True):
        t0 = self._tick()
        self._mark("MPI_Wait")
        if self._is_null(request):
            st = Status.empty()
        else:
            target = request.wait_target()
            if not target.done:
                yield target
            st = self._consume(request)
        out_st = st if status is not None else None
        self._rec("MPI_Wait", t0, {"request": request, "status": out_st})
        return out_st

    def waitall(self, requests: Sequence[Optional[Request]], statuses=True):
        t0 = self._tick()
        self._mark("MPI_Waitall")
        reqs = list(requests)
        for req in reqs:
            if self._is_null(req):
                continue
            target = req.wait_target()
            if not target.done:
                yield target
        sts = []
        for req in reqs:
            if self._is_null(req):
                sts.append(Status.empty())
            else:
                sts.append(self._consume(req))
        out = sts if statuses is not None else None
        self._rec("MPI_Waitall", t0, {
            "count": len(reqs), "array_of_requests": reqs,
            "array_of_statuses": out})
        return out

    def waitany(self, requests: Sequence[Optional[Request]], status=True,
                *, directed_index: Optional[int] = None):
        """Returns ``(index, status)``; index is UNDEFINED if all null.

        ``directed_index`` (replay support): complete exactly that entry —
        a legal Waitany outcome — instead of an RNG pick."""
        t0 = self._tick()
        self._mark("MPI_Waitany")
        reqs = list(requests)
        if directed_index is not None and directed_index >= 0:
            req = reqs[directed_index]
            if not self._is_null(req):
                target = req.wait_target()
                if not target.done:
                    yield target
                st = self._consume(req)
                out_st = st if status is not None else None
                self._rec("MPI_Waitany", t0, {
                    "count": len(reqs), "array_of_requests": reqs,
                    "index": directed_index, "status": out_st})
                return directed_index, out_st
        while True:
            live = [i for i, r in enumerate(reqs) if not self._is_null(r)]
            if not live:
                st = Status.empty() if status is not None else None
                self._rec("MPI_Waitany", t0, {
                    "count": len(reqs), "array_of_requests": reqs,
                    "index": C.UNDEFINED, "status": st})
                return C.UNDEFINED, st
            done = [i for i in live if reqs[i].wait_target().done]
            if done:
                idx = done[self.rt.rng.randrange(len(done))] \
                    if len(done) > 1 else done[0]
                st = self._consume(reqs[idx])
                out_st = st if status is not None else None
                self._rec("MPI_Waitany", t0, {
                    "count": len(reqs), "array_of_requests": reqs,
                    "index": idx, "status": out_st})
                return idx, out_st
            yield self._wait_any_future([reqs[i] for i in live])

    def waitsome(self, requests: Sequence[Optional[Request]], statuses=True,
                 *, directed_indices: Optional[Sequence[int]] = None):
        """Returns ``(indices, statuses)``; indices is None if all null
        (MPI returns outcount=MPI_UNDEFINED in that case).

        ``directed_indices`` (replay support): complete exactly those
        entries, in that order."""
        t0 = self._tick()
        self._mark("MPI_Waitsome")
        reqs = list(requests)
        if directed_indices is not None:
            sts = []
            for idx in directed_indices:
                req = reqs[idx]
                target = req.wait_target()
                if not target.done:
                    yield target
                sts.append(self._consume(req))
            out = sts if statuses is not None else None
            self._rec("MPI_Waitsome", t0, {
                "incount": len(reqs), "array_of_requests": reqs,
                "outcount": len(directed_indices),
                "array_of_indices": list(directed_indices),
                "array_of_statuses": out})
            return list(directed_indices), out
        while True:
            live = [i for i, r in enumerate(reqs) if not self._is_null(r)]
            if not live:
                self._rec("MPI_Waitsome", t0, {
                    "incount": len(reqs), "array_of_requests": reqs,
                    "outcount": C.UNDEFINED, "array_of_indices": None,
                    "array_of_statuses": None})
                return None, None
            done = [i for i in live if reqs[i].wait_target().done]
            if done:
                # Completion order is non-deterministic: report completed
                # entries in a seeded-random order, as a real NIC would.
                self.rt.rng.shuffle(done)
                sts = [self._consume(reqs[i]) for i in done]
                out = sts if statuses is not None else None
                self._rec("MPI_Waitsome", t0, {
                    "incount": len(reqs), "array_of_requests": reqs,
                    "outcount": len(done), "array_of_indices": list(done),
                    "array_of_statuses": out})
                return list(done), out
            yield self._wait_any_future([reqs[i] for i in live])

    # -- test family -----------------------------------------------------------------

    def test(self, request: Optional[Request], status=True, *,
             directed_flag: Optional[bool] = None):
        t0 = self._tick()
        yield None  # cooperative progress
        if directed_flag is False:
            self._rec("MPI_Test", t0, {
                "request": request, "flag": False, "status": None})
            return False, None
        if directed_flag is True and not self._is_null(request):
            target = request.wait_target()
            if not target.done:
                yield target
        if self._is_null(request):
            flag, st = True, Status.empty()
        elif request.wait_target().done:
            flag, st = True, self._consume(request)
        else:
            flag, st = False, None
        out_st = st if status is not None else None
        self._rec("MPI_Test", t0, {
            "request": request, "flag": flag, "status": out_st})
        return flag, out_st

    def testall(self, requests: Sequence[Optional[Request]], statuses=True,
                *, directed_flag: Optional[bool] = None):
        t0 = self._tick()
        yield None
        reqs = list(requests)
        if directed_flag is False:
            self._rec("MPI_Testall", t0, {
                "count": len(reqs), "array_of_requests": reqs,
                "flag": False, "array_of_statuses": None})
            return False, None
        if directed_flag is True:
            for r in reqs:
                if not self._is_null(r):
                    target = r.wait_target()
                    if not target.done:
                        yield target
        all_done = all(self._is_null(r) or r.wait_target().done for r in reqs)
        if all_done:
            sts = [Status.empty() if self._is_null(r) else self._consume(r)
                   for r in reqs]
            out = sts if statuses is not None else None
            self._rec("MPI_Testall", t0, {
                "count": len(reqs), "array_of_requests": reqs, "flag": True,
                "array_of_statuses": out})
            return True, out
        self._rec("MPI_Testall", t0, {
            "count": len(reqs), "array_of_requests": reqs, "flag": False,
            "array_of_statuses": None})
        return False, None

    def testany(self, requests: Sequence[Optional[Request]], status=True,
                *, directed_index: Optional[int] = None,
                directed_flag: Optional[bool] = None):
        t0 = self._tick()
        yield None
        reqs = list(requests)
        if directed_flag is False:
            self._rec("MPI_Testany", t0, {
                "count": len(reqs), "array_of_requests": reqs,
                "index": C.UNDEFINED, "flag": False, "status": None})
            return False, C.UNDEFINED, None
        if directed_index is not None and directed_index >= 0 \
                and not self._is_null(reqs[directed_index]):
            req = reqs[directed_index]
            target = req.wait_target()
            if not target.done:
                yield target
            st = self._consume(req)
            out_st = st if status is not None else None
            self._rec("MPI_Testany", t0, {
                "count": len(reqs), "array_of_requests": reqs,
                "index": directed_index, "flag": True, "status": out_st})
            return True, directed_index, out_st
        live = [i for i, r in enumerate(reqs) if not self._is_null(r)]
        if not live:
            st = Status.empty() if status is not None else None
            self._rec("MPI_Testany", t0, {
                "count": len(reqs), "array_of_requests": reqs,
                "index": C.UNDEFINED, "flag": True, "status": st})
            return True, C.UNDEFINED, st
        done = [i for i in live if reqs[i].wait_target().done]
        if done:
            idx = done[self.rt.rng.randrange(len(done))] \
                if len(done) > 1 else done[0]
            st = self._consume(reqs[idx])
            out_st = st if status is not None else None
            self._rec("MPI_Testany", t0, {
                "count": len(reqs), "array_of_requests": reqs, "index": idx,
                "flag": True, "status": out_st})
            return True, idx, out_st
        self._rec("MPI_Testany", t0, {
            "count": len(reqs), "array_of_requests": reqs,
            "index": C.UNDEFINED, "flag": False, "status": None})
        return False, C.UNDEFINED, None

    def testsome(self, requests: Sequence[Optional[Request]], statuses=True,
                 *, directed_indices: Optional[Sequence[int]] = None):
        t0 = self._tick()
        yield None
        reqs = list(requests)
        if directed_indices is not None:
            sts = []
            for idx in directed_indices:
                req = reqs[idx]
                target = req.wait_target()
                if not target.done:
                    yield target
                sts.append(self._consume(req))
            out = sts if statuses is not None else None
            self._rec("MPI_Testsome", t0, {
                "incount": len(reqs), "array_of_requests": reqs,
                "outcount": len(directed_indices),
                "array_of_indices": list(directed_indices),
                "array_of_statuses": out})
            return list(directed_indices), out
        live = [i for i, r in enumerate(reqs) if not self._is_null(r)]
        if not live:
            self._rec("MPI_Testsome", t0, {
                "incount": len(reqs), "array_of_requests": reqs,
                "outcount": C.UNDEFINED, "array_of_indices": None,
                "array_of_statuses": None})
            return None, None
        done = [i for i in live if reqs[i].wait_target().done]
        self.rt.rng.shuffle(done)
        sts = [self._consume(reqs[i]) for i in done]
        out = sts if statuses is not None else None
        self._rec("MPI_Testsome", t0, {
            "incount": len(reqs), "array_of_requests": reqs,
            "outcount": len(done), "array_of_indices": list(done),
            "array_of_statuses": out})
        return list(done), out
