"""Cooperative rank scheduler.

Every simulated rank is a Python generator.  The scheduler drives runnable
ranks round-robin; a rank that must block yields a
:class:`~repro.mpisim.future.Future` and is parked until some other rank's
progress resolves it.  All blocking therefore reduces to explicit dataflow,
which gives us exact deadlock detection for free: if the ready queue drains
while ranks remain unfinished, the program is deadlocked and we can report
precisely which operation each rank is stuck in.

The design scales to tens of thousands of ranks (a generator is ~200 bytes)
— this is what lets the MILC experiment (Fig 9) run at paper-like process
counts where one OS thread per rank would be infeasible.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from .clock import RankClock
from .errors import DeadlockError, RankProgramError
from .future import Future


class RankContext:
    """Execution state of one simulated rank."""

    __slots__ = ("rank", "gen", "finished", "clock", "waiting_on")

    def __init__(self, rank: int, gen: Generator, clock: RankClock):
        self.rank = rank
        self.gen = gen
        self.finished = False
        self.clock = clock
        self.waiting_on: Optional[Future] = None


class Scheduler:
    """Round-robin driver over rank generators."""

    def __init__(self, spin_limit: int = 2_000_000) -> None:
        self._ready: deque[tuple[RankContext, object]] = deque()
        self.contexts: list[RankContext] = []
        #: total number of scheduler resume steps (a cheap progress metric)
        self.steps = 0
        #: steps at the time of the last future resolution; used to detect
        #: livelock (Test* spin loops that can never be satisfied)
        self._last_progress = 0
        self._spin_limit = spin_limit

    # -- wiring ----------------------------------------------------------------

    def add_rank(self, ctx: RankContext) -> None:
        self.contexts.append(ctx)
        self._ready.append((ctx, None))

    def resolve(self, future: Future, value=None) -> None:
        """Resolve a future and make its waiters runnable."""
        self._last_progress = self.steps
        for ctx in future.resolve(value):
            ctx.waiting_on = None
            self._ready.append((ctx, future.value))

    def complete_request(self, req, status, when: float, value=None) -> None:
        """Complete a request (see Request.complete) and wake its waiters."""
        self._last_progress = self.steps
        for ctx in req.complete(status, when, value):
            ctx.waiting_on = None
            self._ready.append((ctx, req.value))

    # -- main loop ---------------------------------------------------------------

    def run(self) -> None:
        """Run until every rank finishes; raise on deadlock or rank error."""
        ready = self._ready
        while ready:
            ctx, value = ready.popleft()
            self._drive(ctx, value)
            if self.steps - self._last_progress > self._spin_limit:
                blocked = {c.rank: "Test*/Iprobe spin loop (livelock)"
                           for c in self.contexts if not c.finished}
                raise DeadlockError(blocked)
        unfinished = [c for c in self.contexts if not c.finished]
        if unfinished:
            blocked = {
                c.rank: (c.waiting_on.desc if c.waiting_on is not None
                         else "<not scheduled>")
                for c in unfinished
            }
            raise DeadlockError(blocked)

    def _drive(self, ctx: RankContext, value) -> None:
        """Resume one rank, fast-pathing through already-resolved futures."""
        gen = ctx.gen
        while True:
            self.steps += 1
            try:
                fut = gen.send(value)
            except StopIteration:
                ctx.finished = True
                self._last_progress = self.steps
                return
            except DeadlockError:
                raise
            except RankProgramError:
                raise
            except Exception as exc:  # surface with rank context
                raise RankProgramError(ctx.rank, exc) from exc
            if fut is None:
                # Cooperative yield (Test*/Iprobe spin loops): requeue at
                # the tail so every other runnable rank gets a turn first.
                self._ready.append((ctx, None))
                return
            if fut.done:
                value = fut.value
                continue
            fut.waiters.append(ctx)
            ctx.waiting_on = fut
            return
