"""Cooperative rank scheduler.

Every simulated rank is a Python generator.  The scheduler drives runnable
ranks round-robin; a rank that must block yields a
:class:`~repro.mpisim.future.Future` and is parked until some other rank's
progress resolves it.  All blocking therefore reduces to explicit dataflow,
which gives us exact deadlock detection for free: if the ready queue drains
while ranks remain unfinished, the program is deadlocked and we can report
precisely which operation each rank is stuck in.

The design scales to tens of thousands of ranks (a generator is ~200 bytes)
— this is what lets the MILC experiment (Fig 9) run at paper-like process
counts where one OS thread per rank would be infeasible.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator, Optional

from .clock import RankClock
from .errors import DeadlockError, RankProgramError
from .future import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import EventLog

#: emit one ``sched.progress`` event every this many resume steps when an
#: event log is attached (coarse enough to stay cheap on million-step runs)
PROGRESS_SAMPLE = 8192


class RankContext:
    """Execution state of one simulated rank."""

    __slots__ = ("rank", "gen", "finished", "clock", "waiting_on",
                 "last_call")

    def __init__(self, rank: int, gen: Generator, clock: RankClock):
        self.rank = rank
        self.gen = gen
        self.finished = False
        self.clock = clock
        self.waiting_on: Optional[Future] = None
        #: name of the last MPI call this rank recorded (diagnostics)
        self.last_call: Optional[str] = None


class Scheduler:
    """Round-robin driver over rank generators.

    ``faults`` (an armed :class:`~repro.resilience.faults.FaultInjector`
    with scheduler-site specs) perturbs scheduling deterministically: a
    ``delay`` fault requeues the picked rank at the tail of the ready
    queue instead of resuming it, and a ``drop`` fault suppresses the
    next runtime-event emission.  Neither touches rank state, so on
    workloads whose semantics don't depend on completion order (no
    wildcard receives / Waitany) the produced trace stays byte-identical
    — exactly the property the chaos tests pin down.  With ``faults``
    unset the main loop is unchanged.
    """

    def __init__(self, spin_limit: int = 2_000_000,
                 events: Optional["EventLog"] = None,
                 faults=None) -> None:
        self._ready: deque[tuple[RankContext, object]] = deque()
        self.contexts: list[RankContext] = []
        #: total number of scheduler resume steps (a cheap progress metric)
        self.steps = 0
        #: steps at the time of the last future resolution; used to detect
        #: livelock (Test* spin loops that can never be satisfied)
        self._last_progress = 0
        self._spin_limit = spin_limit
        #: optional runtime event log (None => zero event overhead)
        self.events = events if events is not None and events.enabled \
            else None
        #: optional fault injector (None => no per-step check at all)
        self.faults = faults
        self._drop_events = 0

    # -- wiring ----------------------------------------------------------------

    def add_rank(self, ctx: RankContext) -> None:
        self.contexts.append(ctx)
        self._ready.append((ctx, None))

    def resolve(self, future: Future, value=None) -> None:
        """Resolve a future and make its waiters runnable."""
        self._last_progress = self.steps
        for ctx in future.resolve(value):
            ctx.waiting_on = None
            self._ready.append((ctx, future.value))

    def complete_request(self, req, status, when: float, value=None) -> None:
        """Complete a request (see Request.complete) and wake its waiters."""
        self._last_progress = self.steps
        for ctx in req.complete(status, when, value):
            ctx.waiting_on = None
            self._ready.append((ctx, req.value))

    # -- main loop ---------------------------------------------------------------

    def run(self) -> None:
        """Run until every rank finishes; raise on deadlock or rank error."""
        ready = self._ready
        events = self.events
        faults = self.faults
        while ready:
            ctx, value = ready.popleft()
            if faults is not None:
                action = faults.sched_action(ctx.rank)
                if action == "delay":
                    # skip this rank's turn: every other runnable rank
                    # goes first (fault specs are bounded, so a delayed
                    # sole survivor always gets rescheduled eventually)
                    ready.append((ctx, value))
                    continue
                if action == "drop":
                    self._drop_events += 1
            self._drive(ctx, value)
            if events is not None and self.steps % PROGRESS_SAMPLE < 1:
                if self._drop_events:
                    self._drop_events -= 1
                else:
                    events.emit(
                        "sched.progress", steps=self.steps,
                        ready=len(ready),
                        finished=sum(c.finished for c in self.contexts))
            if self.steps - self._last_progress > self._spin_limit:
                raise self._spin_deadlock()
        unfinished = [c for c in self.contexts if not c.finished]
        if unfinished:
            blocked = {}
            for c in unfinished:
                desc = (c.waiting_on.desc if c.waiting_on is not None
                        else "<not scheduled>")
                if c.last_call is not None:
                    desc += f" (last MPI call: {c.last_call})"
                blocked[c.rank] = desc
            if events is not None:
                events.emit("sched.deadlock", blocked=dict(blocked),
                            steps=self.steps)
            raise DeadlockError(blocked)

    def _spin_deadlock(self) -> DeadlockError:
        """Build the livelock diagnostic: which ranks are spinning and in
        which MPI call each is parked (per-rank call trail + event log)."""
        blocked = {}
        for c in self.contexts:
            if c.finished:
                continue
            where = c.last_call or "<no MPI call recorded>"
            if c.waiting_on is not None:
                blocked[c.rank] = (f"{c.waiting_on.desc} "
                                   f"(last MPI call: {where})")
            else:
                blocked[c.rank] = (
                    f"Test*/Iprobe spin loop (livelock) parked in {where}; "
                    f"no progress for {self._spin_limit} steps")
        if self.events is not None:
            self.events.emit(
                "sched.spin_limit", steps=self.steps,
                spin_limit=self._spin_limit,
                blocked={r: d for r, d in blocked.items()})
        return DeadlockError(blocked)

    def _drive(self, ctx: RankContext, value) -> None:
        """Resume one rank, fast-pathing through already-resolved futures."""
        gen = ctx.gen
        while True:
            self.steps += 1
            try:
                fut = gen.send(value)
            except StopIteration:
                ctx.finished = True
                self._last_progress = self.steps
                if self.events is not None:
                    self.events.emit("sched.rank_done", rank=ctx.rank,
                                     steps=self.steps, vtime=ctx.clock.now)
                return
            except DeadlockError:
                raise
            except RankProgramError:
                raise
            except Exception as exc:  # surface with rank context
                raise RankProgramError(ctx.rank, exc) from exc
            if fut is None:
                # Cooperative yield (Test*/Iprobe spin loops): requeue at
                # the tail so every other runnable rank gets a turn first.
                self._ready.append((ctx, None))
                return
            if fut.done:
                value = fut.value
                continue
            fut.waiters.append(ctx)
            ctx.waiting_on = fut
            return
