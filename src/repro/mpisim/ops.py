"""Reduction operations (``MPI_Op``).

Payloads in the simulator are ordinary Python values (numbers, tuples or
lists of numbers, or ``None`` when a workload sends metadata only).
Reductions operate elementwise on sequences, mirroring MPI's typed-array
semantics, and propagate ``None`` so metadata-only workloads can still use
``allreduce`` purely for its synchronisation and trace footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Op:
    """A named, commutative reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]
    handle: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Op {self.name}>"


def _lift(f: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Apply *f* scalar-wise, elementwise over sequences, None-propagating."""

    def apply(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        if isinstance(a, (list, tuple)):
            out = [apply(x, y) for x, y in zip(a, b)]
            return tuple(out) if isinstance(a, tuple) else out
        return f(a, b)

    return apply


SUM = Op("MPI_SUM", _lift(lambda a, b: a + b), -1)
PROD = Op("MPI_PROD", _lift(lambda a, b: a * b), -2)
MAX = Op("MPI_MAX", _lift(max), -3)
MIN = Op("MPI_MIN", _lift(min), -4)
LAND = Op("MPI_LAND", _lift(lambda a, b: bool(a) and bool(b)), -5)
LOR = Op("MPI_LOR", _lift(lambda a, b: bool(a) or bool(b)), -6)
BAND = Op("MPI_BAND", _lift(lambda a, b: a & b), -7)
BOR = Op("MPI_BOR", _lift(lambda a, b: a | b), -8)
BXOR = Op("MPI_BXOR", _lift(lambda a, b: a ^ b), -9)
MAXLOC = Op("MPI_MAXLOC", _lift(max), -10)   # payloads are (value, loc) tuples
MINLOC = Op("MPI_MINLOC", _lift(min), -11)

ALL_OPS = (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, BXOR, MAXLOC, MINLOC)
BY_NAME = {op.name: op for op in ALL_OPS}


def reduce_payloads(op: Op, payloads: list) -> Any:
    """Fold *payloads* (ordered by rank, per the MPI reduction order rule)."""
    if not payloads:
        return None
    acc = payloads[0]
    for p in payloads[1:]:
        acc = op.fn(acc, p)
    return acc
