"""Process groups (ordered sets of world ranks)."""

from __future__ import annotations

from typing import Iterable, Sequence

from . import constants as C
from .errors import InvalidArgumentError


class Group:
    """An immutable ordered set of world ranks, mirroring ``MPI_Group``.

    Group rank *i* is the process whose world rank is ``ranks[i]``.
    """

    __slots__ = ("ranks", "_index")

    def __init__(self, ranks: Sequence[int]):
        ranks = tuple(ranks)
        if len(set(ranks)) != len(ranks):
            raise InvalidArgumentError(f"duplicate ranks in group: {ranks}")
        self.ranks = ranks
        self._index = {w: i for i, w in enumerate(ranks)}

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank, or ``UNDEFINED`` if not a member."""
        return self._index.get(world_rank, C.UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        if not 0 <= group_rank < self.size:
            raise InvalidArgumentError(
                f"group rank {group_rank} out of range [0,{self.size})")
        return self.ranks[group_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    def translate_ranks(self, ranks: Iterable[int], other: "Group") -> list[int]:
        """``MPI_Group_translate_ranks``: map our group ranks into *other*."""
        out = []
        for r in ranks:
            if r == C.PROC_NULL:
                out.append(C.PROC_NULL)
            else:
                out.append(other.rank_of(self.world_rank(r)))
        return out

    def compare(self, other: "Group") -> int:
        if self.ranks == other.ranks:
            return C.IDENT
        if set(self.ranks) == set(other.ranks):
            return C.SIMILAR
        return C.UNEQUAL

    # -- set operations (all preserve MPI's ordering rules) ----------------

    def incl(self, ranks: Sequence[int]) -> "Group":
        return Group([self.world_rank(r) for r in ranks])

    def excl(self, ranks: Sequence[int]) -> "Group":
        drop = {self.world_rank(r) for r in ranks}
        return Group([w for w in self.ranks if w not in drop])

    def union(self, other: "Group") -> "Group":
        merged = list(self.ranks)
        merged.extend(w for w in other.ranks if w not in self._index)
        return Group(merged)

    def intersection(self, other: "Group") -> "Group":
        return Group([w for w in self.ranks if other.contains(w)])

    def difference(self, other: "Group") -> "Group":
        return Group([w for w in self.ranks if not other.contains(w)])

    def range_incl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        picked: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise InvalidArgumentError("range stride of 0")
            picked.extend(range(first, last + (1 if stride > 0 else -1), stride))
        return self.incl(picked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group size={self.size} ranks={self.ranks[:8]}{'...' if self.size > 8 else ''}>"
