"""Communicator and group management.

Creation calls are collectives: the runtime allocates communicator ids
(cids) inside the rendezvous finalizer, so cid assignment order is a
deterministic function of program behaviour — mirroring how Pilgrim's
group-wide max-allreduce (§3.3.1) yields identical symbolic ids on every
member.  Inter-communicator creation uses a leader-pair rendezvous keyed
by (peer comm, tag), and non-blocking duplication (``MPI_Comm_idup``)
delivers the new communicator through the request's value at completion —
the tricky case the paper calls out in §3.3.1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from . import constants as C
from .api_base import ApiBase
from .comm import Comm
from .errors import (CollectiveMismatchError, InvalidArgumentError)
from .group import Group
from .request import Request


class ApiComm(ApiBase):
    """Communicator/group mixin."""

    # -- local queries -----------------------------------------------------------

    def comm_size(self, comm: Optional[Comm] = None) -> int:
        comm = comm or self.world
        comm.check_usable()
        t0 = self._tick()
        size = self._local_group(comm).size
        self._rec("MPI_Comm_size", t0, {"comm": comm, "size": size})
        return size

    def comm_rank(self, comm: Optional[Comm] = None) -> int:
        comm = comm or self.world
        comm.check_usable()
        t0 = self._tick()
        rank = self._comm_rank(comm)
        self._rec("MPI_Comm_rank", t0, {"comm": comm, "rank": rank})
        return rank

    def comm_remote_size(self, comm: Comm) -> int:
        comm.check_usable()
        if comm.remote_group is None:
            raise InvalidArgumentError(
                "MPI_Comm_remote_size on an intra-communicator")
        t0 = self._tick()
        size = self._peer_group(comm).size
        self._rec("MPI_Comm_remote_size", t0, {"comm": comm, "size": size})
        return size

    def comm_test_inter(self, comm: Comm) -> bool:
        comm.check_usable()
        t0 = self._tick()
        flag = comm.remote_group is not None
        self._rec("MPI_Comm_test_inter", t0, {"comm": comm, "flag": flag})
        return flag

    def comm_compare(self, comm1: Comm, comm2: Comm) -> int:
        comm1.check_usable()
        comm2.check_usable()
        t0 = self._tick()
        if comm1 is comm2:
            result = C.IDENT
        else:
            result = comm1.group.compare(comm2.group)
            if result == C.IDENT:
                result = C.CONGRUENT
        self._rec("MPI_Comm_compare", t0, {
            "comm1": comm1, "comm2": comm2, "result": result})
        return result

    def comm_set_name(self, comm: Comm, name: str) -> None:
        comm.check_usable()
        t0 = self._tick()
        comm.name = name[:C.MAX_OBJECT_NAME]
        self._rec("MPI_Comm_set_name", t0, {"comm": comm, "comm_name": name})

    def comm_get_name(self, comm: Comm) -> str:
        comm.check_usable()
        t0 = self._tick()
        name = comm.name
        self._rec("MPI_Comm_get_name", t0, {
            "comm": comm, "comm_name": name, "resultlen": len(name)})
        return name

    def comm_group(self, comm: Optional[Comm] = None) -> Group:
        comm = comm or self.world
        comm.check_usable()
        t0 = self._tick()
        grp = self._local_group(comm)
        self._rec("MPI_Comm_group", t0, {"comm": comm, "group": grp})
        return grp

    # -- creation collectives ---------------------------------------------------------

    def comm_dup(self, comm: Optional[Comm] = None):
        comm = comm or self.world
        rt = self.rt

        def compute(g, c):
            newc = rt.make_comm(Group(c.group.ranks))
            return {w: newc for w in g.arrived}

        t0 = self._tick()
        newcomm = yield from self._coll("comm_dup", comm, None, 0, compute,
                                        ("comm_dup",))
        self._rec("MPI_Comm_dup", t0, {"comm": comm, "newcomm": newcomm})
        return newcomm

    def comm_idup(self, comm: Optional[Comm] = None) -> Request:
        """Non-blocking duplicate: the new communicator is the request's
        ``value`` once a Wait/Test completes it."""
        comm = comm or self.world
        rt = self.rt

        def compute(g, c):
            newc = rt.make_comm(Group(c.group.ranks))
            return {w: newc for w in g.arrived}

        t0 = self._tick()
        req = self._coll_nb("comm_dup", comm, None, 0, compute,
                            ("comm_idup",))
        req.kind = "comm_idup"
        self._rec("MPI_Comm_idup", t0, {
            "comm": comm, "newcomm": None, "request": req})
        return req

    def comm_split(self, comm: Optional[Comm] = None, color: int = 0,
                   key: int = 0):
        comm = comm or self.world
        rt = self.rt

        def compute(g, c):
            buckets: dict[int, list[tuple[int, int, int]]] = {}
            for i, w in enumerate(c.group.ranks):
                col, k = g.arrived[w][0]
                if col == C.UNDEFINED:
                    continue
                buckets.setdefault(col, []).append((k, i, w))
            out: dict[int, Optional[Comm]] = {w: None for w in g.arrived}
            for col in sorted(buckets):
                members = sorted(buckets[col])
                newc = rt.make_comm(Group([w for _, _, w in members]))
                for _, _, w in members:
                    out[w] = newc
            return out

        t0 = self._tick()
        newcomm = yield from self._coll("comm_split", comm, (color, key), 0,
                                        compute)
        self._rec("MPI_Comm_split", t0, {
            "comm": comm, "color": color, "key": key, "newcomm": newcomm})
        return newcomm

    def comm_split_type(self, comm: Optional[Comm] = None,
                        split_type: int = 1, key: int = 0):
        """``MPI_Comm_split_type`` with SHARED semantics: ranks on the same
        simulated node (``runtime.node_size`` consecutive world ranks) end
        up in the same communicator."""
        comm = comm or self.world
        node = self.rank // self.rt.node_size
        rt = self.rt

        def compute(g, c):
            buckets: dict[int, list[tuple[int, int, int]]] = {}
            for i, w in enumerate(c.group.ranks):
                col, k = g.arrived[w][0]
                buckets.setdefault(col, []).append((k, i, w))
            out: dict[int, Optional[Comm]] = {}
            for col in sorted(buckets):
                members = sorted(buckets[col])
                newc = rt.make_comm(Group([w for _, _, w in members]))
                for _, _, w in members:
                    out[w] = newc
            return out

        t0 = self._tick()
        newcomm = yield from self._coll("comm_split", comm, (node, key), 0,
                                        compute)
        self._rec("MPI_Comm_split_type", t0, {
            "comm": comm, "split_type": split_type, "key": key,
            "newcomm": newcomm})
        return newcomm

    def comm_create(self, comm: Comm, group: Group):
        comm.check_usable()
        rt = self.rt

        def compute(g, c):
            members = [w for w in c.group.ranks if group.contains(w)]
            newc = rt.make_comm(Group(group.ranks)) if members else None
            return {w: (newc if group.contains(w) else None)
                    for w in g.arrived}

        t0 = self._tick()
        newcomm = yield from self._coll("comm_create", comm, None, 0,
                                        compute,
                                        ("comm_create", tuple(group.ranks)))
        self._rec("MPI_Comm_create", t0, {
            "comm": comm, "group": group, "newcomm": newcomm})
        return newcomm

    def comm_free(self, comm: Comm) -> None:
        """Mark this rank's participation in freeing *comm*; the shared
        object is freed once every member has called."""
        comm.check_usable()
        t0 = self._tick()
        n = comm.attrs.get("_free_count", 0) + 1
        comm.attrs["_free_count"] = n
        members = comm.group.size + (comm.remote_group.size
                                     if comm.remote_group else 0)
        if n == members:
            comm.freed = True
        self._rec("MPI_Comm_free", t0, {"comm": comm})

    # -- inter-communicators -------------------------------------------------------------

    def intercomm_create(self, local_comm: Comm, local_leader: int,
                         peer_comm: Comm, remote_leader: int, tag: int = 0):
        local_comm.check_usable()
        peer_comm.check_usable()
        if not 0 <= local_leader < local_comm.group.size:
            raise InvalidArgumentError("local_leader out of range")
        own_leader_w = local_comm.group.world_rank(local_leader)
        remote_leader_w = peer_comm.group.world_rank(remote_leader)
        key = (peer_comm.cid, tag,
               frozenset((own_leader_w, remote_leader_w)))
        t0 = self._tick()
        fut = self.rt.join_intercomm_create(
            key, local_comm, self.rank, self.clock.now)
        newcomm, tdone = yield fut
        self.clock.sync_to(tdone)
        self._rec("MPI_Intercomm_create", t0, {
            "local_comm": local_comm, "local_leader": local_leader,
            "peer_comm": peer_comm, "remote_leader": remote_leader,
            "tag": tag, "newintercomm": newcomm})
        return newcomm

    def intercomm_merge(self, intercomm: Comm, high: bool = False):
        intercomm.check_usable()
        if intercomm.remote_group is None:
            raise InvalidArgumentError(
                "MPI_Intercomm_merge on an intra-communicator")
        rt = self.rt

        def compute(g, c):
            side_a, side_b = c.group, c.remote_group
            high_a = {g.arrived[w][0] for w in side_a.ranks}
            high_b = {g.arrived[w][0] for w in side_b.ranks}
            if len(high_a) != 1 or len(high_b) != 1:
                raise CollectiveMismatchError(
                    "inconsistent 'high' flags within one side of "
                    "MPI_Intercomm_merge")
            ha, hb = high_a.pop(), high_b.pop()
            if ha == hb:
                # standard: order is then implementation-defined; use the
                # side containing the smallest world rank first
                first = side_a if min(side_a.ranks) < min(side_b.ranks) \
                    else side_b
            else:
                first = side_a if not ha else side_b
            second = side_b if first is side_a else side_a
            newc = rt.make_comm(Group(first.ranks + second.ranks))
            return {w: newc for w in g.arrived}

        t0 = self._tick()
        newcomm = yield from self._coll("comm_merge", intercomm, high, 0,
                                        compute)
        self._rec("MPI_Intercomm_merge", t0, {
            "intercomm": intercomm, "high": int(high),
            "newintracomm": newcomm})
        return newcomm

    # -- groups (all local) -----------------------------------------------------------------

    def group_size(self, group: Group) -> int:
        t0 = self._tick()
        size = group.size
        self._rec("MPI_Group_size", t0, {"group": group, "size": size})
        return size

    def group_rank(self, group: Group) -> int:
        t0 = self._tick()
        rank = group.rank_of(self.rank)
        self._rec("MPI_Group_rank", t0, {"group": group, "rank": rank})
        return rank

    def group_incl(self, group: Group, ranks: Sequence[int]) -> Group:
        t0 = self._tick()
        newgroup = group.incl(ranks)
        self._rec("MPI_Group_incl", t0, {
            "group": group, "n": len(ranks), "ranks": tuple(ranks),
            "newgroup": newgroup})
        return newgroup

    def group_excl(self, group: Group, ranks: Sequence[int]) -> Group:
        t0 = self._tick()
        newgroup = group.excl(ranks)
        self._rec("MPI_Group_excl", t0, {
            "group": group, "n": len(ranks), "ranks": tuple(ranks),
            "newgroup": newgroup})
        return newgroup

    def group_union(self, group1: Group, group2: Group) -> Group:
        t0 = self._tick()
        newgroup = group1.union(group2)
        self._rec("MPI_Group_union", t0, {
            "group1": group1, "group2": group2, "newgroup": newgroup})
        return newgroup

    def group_intersection(self, group1: Group, group2: Group) -> Group:
        t0 = self._tick()
        newgroup = group1.intersection(group2)
        self._rec("MPI_Group_intersection", t0, {
            "group1": group1, "group2": group2, "newgroup": newgroup})
        return newgroup

    def group_difference(self, group1: Group, group2: Group) -> Group:
        t0 = self._tick()
        newgroup = group1.difference(group2)
        self._rec("MPI_Group_difference", t0, {
            "group1": group1, "group2": group2, "newgroup": newgroup})
        return newgroup

    def group_range_incl(self, group: Group,
                         ranges: Sequence[tuple[int, int, int]]) -> Group:
        t0 = self._tick()
        newgroup = group.range_incl(ranges)
        self._rec("MPI_Group_range_incl", t0, {
            "group": group, "n": len(ranges),
            "ranges": tuple(tuple(r) for r in ranges), "newgroup": newgroup})
        return newgroup

    def group_translate_ranks(self, group1: Group, ranks: Sequence[int],
                              group2: Group) -> list[int]:
        t0 = self._tick()
        out = group1.translate_ranks(ranks, group2)
        self._rec("MPI_Group_translate_ranks", t0, {
            "group1": group1, "n": len(ranks), "ranks1": tuple(ranks),
            "group2": group2, "ranks2": tuple(out)})
        return out

    def group_compare(self, group1: Group, group2: Group) -> int:
        t0 = self._tick()
        result = group1.compare(group2)
        self._rec("MPI_Group_compare", t0, {
            "group1": group1, "group2": group2, "result": result})
        return result

    def group_free(self, group: Group) -> None:
        t0 = self._tick()
        self._rec("MPI_Group_free", t0, {"group": group})
