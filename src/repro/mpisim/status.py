"""``MPI_Status`` objects.

The simulator fills all five fields of the standard's status structure.
Pilgrim (the tracer) then deliberately keeps only ``MPI_SOURCE`` and
``MPI_TAG`` (§3.3.2) — that filtering lives in the tracer, not here, so
the substrate itself stays lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import constants as C


@dataclass
class Status:
    """Completion information for a receive (or other completed operation)."""

    count: int = 0          # number of received *bytes* (MPI: typed entries)
    cancelled: bool = False
    MPI_SOURCE: int = C.ANY_SOURCE
    MPI_TAG: int = C.ANY_TAG
    MPI_ERROR: int = C.SUCCESS

    def get_count(self, datatype_size: int) -> int:
        """``MPI_Get_count``: element count for the given datatype size."""
        if datatype_size <= 0:
            return 0
        if self.count % datatype_size != 0:
            return C.UNDEFINED
        return self.count // datatype_size

    @classmethod
    def empty(cls) -> "Status":
        """Status of an operation on ``MPI_PROC_NULL`` (the standard's
        'empty' status: source=PROC_NULL, tag=ANY_TAG, count=0)."""
        return cls(count=0, cancelled=False, MPI_SOURCE=C.PROC_NULL,
                   MPI_TAG=C.ANY_TAG, MPI_ERROR=C.SUCCESS)

    def as_tuple(self) -> tuple:
        return (self.count, self.cancelled, self.MPI_SOURCE, self.MPI_TAG,
                self.MPI_ERROR)
