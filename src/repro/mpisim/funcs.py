"""Declarative MPI function registry.

The real Pilgrim generates its PMPI wrappers from the MPI 4.0 standard's
LaTeX sources because header files do not say which parameters are inputs
and which are outputs (§3.1).  This module plays that role for the
simulator: every simulated MPI function is described by a
:class:`FuncSpec` listing each parameter's name, direction, and *kind*.
The Pilgrim tracer walks these specs to encode call signatures — it never
hard-codes per-function knowledge except for the special cases the paper
itself singles out (communicator creation, requests, statuses, buffers).

The registry also carries the standard-level catalog numbers used by the
Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

# Directions
IN = "in"
OUT = "out"
INOUT = "inout"

# Parameter kinds — these drive the tracer's symbolic encoding
K_COMM = "comm"            # MPI_Comm handle
K_GROUP = "group"          # MPI_Group handle
K_DATATYPE = "datatype"    # MPI_Datatype handle
K_REQUEST = "request"      # single MPI_Request handle
K_REQUESTV = "request[]"   # array of request handles
K_OP = "op"                # MPI_Op
K_RANK = "rank"            # src/dst rank (always relative-encoded)
K_ROOT = "root"            # rank-valued, usually constant (root/leader);
                           # relative only on exact match, like tags
K_TAG = "tag"              # message tag (relative encodable)
K_COLOR = "color"          # comm_split color (relative encodable)
K_KEY = "key"              # comm_split key (relative encodable)
K_PTR = "ptr"              # memory buffer pointer
K_COUNT = "count"          # element count
K_INT = "int"              # plain integer
K_INTV = "int[]"           # integer array
K_FLAG = "flag"            # boolean out-flag
K_STR = "str"              # string
K_STATUS = "status"        # MPI_Status out
K_STATUSV = "status[]"     # array of statuses
K_INDEXV = "index[]"       # completion index arrays (Waitsome/Testsome)
K_NEWCOMM = "newcomm"      # created communicator (out)
K_NEWTYPE = "newtype"      # created datatype (out)
K_WIN = "win"              # MPI_Win handle
K_NEWWIN = "newwin"        # created window (out)


@dataclass(frozen=True)
class Param:
    name: str
    direction: str
    kind: str


@dataclass(frozen=True)
class FuncSpec:
    name: str
    fid: int
    params: tuple[Param, ...]

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)


def _p(name: str, direction: str, kind: str) -> Param:
    return Param(name, direction, kind)


_SPECS: list[tuple[str, list[Param]]] = [
    # -- environment ------------------------------------------------------
    ("MPI_Init", []),
    ("MPI_Finalize", []),
    ("MPI_Initialized", [_p("flag", OUT, K_FLAG)]),
    ("MPI_Get_processor_name", [_p("name", OUT, K_STR),
                                _p("resultlen", OUT, K_INT)]),
    ("MPI_Abort", [_p("comm", IN, K_COMM), _p("errorcode", IN, K_INT)]),
    # -- communicator queries ----------------------------------------------
    ("MPI_Comm_size", [_p("comm", IN, K_COMM), _p("size", OUT, K_INT)]),
    # NB: the output IS a rank — relative encoding collapses it to 0 on
    # every caller, which is essential for cross-rank grammar identity
    ("MPI_Comm_rank", [_p("comm", IN, K_COMM), _p("rank", OUT, K_ROOT)]),
    ("MPI_Comm_remote_size", [_p("comm", IN, K_COMM), _p("size", OUT, K_INT)]),
    ("MPI_Comm_test_inter", [_p("comm", IN, K_COMM), _p("flag", OUT, K_FLAG)]),
    ("MPI_Comm_compare", [_p("comm1", IN, K_COMM), _p("comm2", IN, K_COMM),
                          _p("result", OUT, K_INT)]),
    ("MPI_Comm_set_name", [_p("comm", IN, K_COMM), _p("comm_name", IN, K_STR)]),
    ("MPI_Comm_get_name", [_p("comm", IN, K_COMM), _p("comm_name", OUT, K_STR),
                           _p("resultlen", OUT, K_INT)]),
    ("MPI_Comm_group", [_p("comm", IN, K_COMM), _p("group", OUT, K_GROUP)]),
    # -- communicator construction -----------------------------------------
    ("MPI_Comm_dup", [_p("comm", IN, K_COMM), _p("newcomm", OUT, K_NEWCOMM)]),
    ("MPI_Comm_idup", [_p("comm", IN, K_COMM), _p("newcomm", OUT, K_NEWCOMM),
                       _p("request", OUT, K_REQUEST)]),
    ("MPI_Comm_split", [_p("comm", IN, K_COMM), _p("color", IN, K_COLOR),
                        _p("key", IN, K_KEY), _p("newcomm", OUT, K_NEWCOMM)]),
    ("MPI_Comm_split_type", [_p("comm", IN, K_COMM),
                             _p("split_type", IN, K_INT),
                             _p("key", IN, K_KEY),
                             _p("newcomm", OUT, K_NEWCOMM)]),
    ("MPI_Comm_create", [_p("comm", IN, K_COMM), _p("group", IN, K_GROUP),
                         _p("newcomm", OUT, K_NEWCOMM)]),
    ("MPI_Comm_free", [_p("comm", INOUT, K_COMM)]),
    ("MPI_Intercomm_create", [_p("local_comm", IN, K_COMM),
                              _p("local_leader", IN, K_ROOT),
                              _p("peer_comm", IN, K_COMM),
                              _p("remote_leader", IN, K_INT),
                              _p("tag", IN, K_TAG),
                              _p("newintercomm", OUT, K_NEWCOMM)]),
    ("MPI_Intercomm_merge", [_p("intercomm", IN, K_COMM),
                             _p("high", IN, K_INT),
                             _p("newintracomm", OUT, K_NEWCOMM)]),
    # -- groups --------------------------------------------------------------
    ("MPI_Group_size", [_p("group", IN, K_GROUP), _p("size", OUT, K_INT)]),
    ("MPI_Group_rank", [_p("group", IN, K_GROUP), _p("rank", OUT, K_ROOT)]),
    ("MPI_Group_incl", [_p("group", IN, K_GROUP), _p("n", IN, K_COUNT),
                        _p("ranks", IN, K_INTV), _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_excl", [_p("group", IN, K_GROUP), _p("n", IN, K_COUNT),
                        _p("ranks", IN, K_INTV), _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_union", [_p("group1", IN, K_GROUP), _p("group2", IN, K_GROUP),
                         _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_intersection", [_p("group1", IN, K_GROUP),
                                _p("group2", IN, K_GROUP),
                                _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_difference", [_p("group1", IN, K_GROUP),
                              _p("group2", IN, K_GROUP),
                              _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_range_incl", [_p("group", IN, K_GROUP), _p("n", IN, K_COUNT),
                              _p("ranges", IN, K_INTV),
                              _p("newgroup", OUT, K_GROUP)]),
    ("MPI_Group_translate_ranks", [_p("group1", IN, K_GROUP),
                                   _p("n", IN, K_COUNT),
                                   _p("ranks1", IN, K_INTV),
                                   _p("group2", IN, K_GROUP),
                                   _p("ranks2", OUT, K_INTV)]),
    ("MPI_Group_compare", [_p("group1", IN, K_GROUP),
                           _p("group2", IN, K_GROUP),
                           _p("result", OUT, K_INT)]),
    ("MPI_Group_free", [_p("group", INOUT, K_GROUP)]),
    # -- point to point --------------------------------------------------------
    ("MPI_Send", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                  _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                  _p("tag", IN, K_TAG), _p("comm", IN, K_COMM)]),
    ("MPI_Ssend", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                   _p("tag", IN, K_TAG), _p("comm", IN, K_COMM)]),
    ("MPI_Bsend", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                   _p("tag", IN, K_TAG), _p("comm", IN, K_COMM)]),
    ("MPI_Rsend", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                   _p("tag", IN, K_TAG), _p("comm", IN, K_COMM)]),
    ("MPI_Recv", [_p("buf", OUT, K_PTR), _p("count", IN, K_COUNT),
                  _p("datatype", IN, K_DATATYPE), _p("source", IN, K_RANK),
                  _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                  _p("status", OUT, K_STATUS)]),
    ("MPI_Sendrecv", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                      _p("sendtype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                      _p("sendtag", IN, K_TAG),
                      _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                      _p("recvtype", IN, K_DATATYPE), _p("source", IN, K_RANK),
                      _p("recvtag", IN, K_TAG), _p("comm", IN, K_COMM),
                      _p("status", OUT, K_STATUS)]),
    ("MPI_Isend", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                   _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                   _p("request", OUT, K_REQUEST)]),
    ("MPI_Issend", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                    _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                    _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                    _p("request", OUT, K_REQUEST)]),
    ("MPI_Irecv", [_p("buf", OUT, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("source", IN, K_RANK),
                   _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                   _p("request", OUT, K_REQUEST)]),
    ("MPI_Send_init", [_p("buf", IN, K_PTR), _p("count", IN, K_COUNT),
                       _p("datatype", IN, K_DATATYPE), _p("dest", IN, K_RANK),
                       _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                       _p("request", OUT, K_REQUEST)]),
    ("MPI_Recv_init", [_p("buf", OUT, K_PTR), _p("count", IN, K_COUNT),
                       _p("datatype", IN, K_DATATYPE), _p("source", IN, K_RANK),
                       _p("tag", IN, K_TAG), _p("comm", IN, K_COMM),
                       _p("request", OUT, K_REQUEST)]),
    ("MPI_Start", [_p("request", INOUT, K_REQUEST)]),
    ("MPI_Startall", [_p("count", IN, K_COUNT),
                      _p("array_of_requests", INOUT, K_REQUESTV)]),
    ("MPI_Probe", [_p("source", IN, K_RANK), _p("tag", IN, K_TAG),
                   _p("comm", IN, K_COMM), _p("status", OUT, K_STATUS)]),
    ("MPI_Iprobe", [_p("source", IN, K_RANK), _p("tag", IN, K_TAG),
                    _p("comm", IN, K_COMM), _p("flag", OUT, K_FLAG),
                    _p("status", OUT, K_STATUS)]),
    ("MPI_Cancel", [_p("request", IN, K_REQUEST)]),
    ("MPI_Request_free", [_p("request", INOUT, K_REQUEST)]),
    ("MPI_Request_get_status", [_p("request", IN, K_REQUEST),
                                _p("flag", OUT, K_FLAG),
                                _p("status", OUT, K_STATUS)]),
    # -- completion -------------------------------------------------------------
    ("MPI_Wait", [_p("request", INOUT, K_REQUEST),
                  _p("status", OUT, K_STATUS)]),
    ("MPI_Waitall", [_p("count", IN, K_COUNT),
                     _p("array_of_requests", INOUT, K_REQUESTV),
                     _p("array_of_statuses", OUT, K_STATUSV)]),
    ("MPI_Waitany", [_p("count", IN, K_COUNT),
                     _p("array_of_requests", INOUT, K_REQUESTV),
                     _p("index", OUT, K_INT),
                     _p("status", OUT, K_STATUS)]),
    ("MPI_Waitsome", [_p("incount", IN, K_COUNT),
                      _p("array_of_requests", INOUT, K_REQUESTV),
                      _p("outcount", OUT, K_INT),
                      _p("array_of_indices", OUT, K_INDEXV),
                      _p("array_of_statuses", OUT, K_STATUSV)]),
    ("MPI_Test", [_p("request", INOUT, K_REQUEST), _p("flag", OUT, K_FLAG),
                  _p("status", OUT, K_STATUS)]),
    ("MPI_Testall", [_p("count", IN, K_COUNT),
                     _p("array_of_requests", INOUT, K_REQUESTV),
                     _p("flag", OUT, K_FLAG),
                     _p("array_of_statuses", OUT, K_STATUSV)]),
    ("MPI_Testany", [_p("count", IN, K_COUNT),
                     _p("array_of_requests", INOUT, K_REQUESTV),
                     _p("index", OUT, K_INT), _p("flag", OUT, K_FLAG),
                     _p("status", OUT, K_STATUS)]),
    ("MPI_Testsome", [_p("incount", IN, K_COUNT),
                      _p("array_of_requests", INOUT, K_REQUESTV),
                      _p("outcount", OUT, K_INT),
                      _p("array_of_indices", OUT, K_INDEXV),
                      _p("array_of_statuses", OUT, K_STATUSV)]),
    # -- collectives ---------------------------------------------------------------
    ("MPI_Barrier", [_p("comm", IN, K_COMM)]),
    ("MPI_Ibarrier", [_p("comm", IN, K_COMM), _p("request", OUT, K_REQUEST)]),
    ("MPI_Bcast", [_p("buffer", INOUT, K_PTR), _p("count", IN, K_COUNT),
                   _p("datatype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                   _p("comm", IN, K_COMM)]),
    ("MPI_Ibcast", [_p("buffer", INOUT, K_PTR), _p("count", IN, K_COUNT),
                    _p("datatype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                    _p("comm", IN, K_COMM), _p("request", OUT, K_REQUEST)]),
    ("MPI_Reduce", [_p("sendbuf", IN, K_PTR), _p("recvbuf", OUT, K_PTR),
                    _p("count", IN, K_COUNT), _p("datatype", IN, K_DATATYPE),
                    _p("op", IN, K_OP), _p("root", IN, K_ROOT),
                    _p("comm", IN, K_COMM)]),
    ("MPI_Allreduce", [_p("sendbuf", IN, K_PTR), _p("recvbuf", OUT, K_PTR),
                       _p("count", IN, K_COUNT), _p("datatype", IN, K_DATATYPE),
                       _p("op", IN, K_OP), _p("comm", IN, K_COMM)]),
    ("MPI_Iallreduce", [_p("sendbuf", IN, K_PTR), _p("recvbuf", OUT, K_PTR),
                        _p("count", IN, K_COUNT),
                        _p("datatype", IN, K_DATATYPE),
                        _p("op", IN, K_OP), _p("comm", IN, K_COMM),
                        _p("request", OUT, K_REQUEST)]),
    ("MPI_Gather", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                    _p("sendtype", IN, K_DATATYPE),
                    _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                    _p("recvtype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                    _p("comm", IN, K_COMM)]),
    ("MPI_Gatherv", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                     _p("sendtype", IN, K_DATATYPE),
                     _p("recvbuf", OUT, K_PTR),
                     _p("recvcounts", IN, K_INTV), _p("displs", IN, K_INTV),
                     _p("recvtype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                     _p("comm", IN, K_COMM)]),
    ("MPI_Scatter", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                     _p("sendtype", IN, K_DATATYPE),
                     _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                     _p("recvtype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                     _p("comm", IN, K_COMM)]),
    ("MPI_Scatterv", [_p("sendbuf", IN, K_PTR),
                      _p("sendcounts", IN, K_INTV), _p("displs", IN, K_INTV),
                      _p("sendtype", IN, K_DATATYPE),
                      _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                      _p("recvtype", IN, K_DATATYPE), _p("root", IN, K_ROOT),
                      _p("comm", IN, K_COMM)]),
    ("MPI_Allgather", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                       _p("sendtype", IN, K_DATATYPE),
                       _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                       _p("recvtype", IN, K_DATATYPE), _p("comm", IN, K_COMM)]),
    ("MPI_Iallgather", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                        _p("sendtype", IN, K_DATATYPE),
                        _p("recvbuf", OUT, K_PTR),
                        _p("recvcount", IN, K_COUNT),
                        _p("recvtype", IN, K_DATATYPE),
                        _p("comm", IN, K_COMM),
                        _p("request", OUT, K_REQUEST)]),
    ("MPI_Allgatherv", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                        _p("sendtype", IN, K_DATATYPE),
                        _p("recvbuf", OUT, K_PTR),
                        _p("recvcounts", IN, K_INTV), _p("displs", IN, K_INTV),
                        _p("recvtype", IN, K_DATATYPE),
                        _p("comm", IN, K_COMM)]),
    ("MPI_Alltoall", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                      _p("sendtype", IN, K_DATATYPE),
                      _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                      _p("recvtype", IN, K_DATATYPE), _p("comm", IN, K_COMM)]),
    ("MPI_Ialltoall", [_p("sendbuf", IN, K_PTR), _p("sendcount", IN, K_COUNT),
                       _p("sendtype", IN, K_DATATYPE),
                       _p("recvbuf", OUT, K_PTR), _p("recvcount", IN, K_COUNT),
                       _p("recvtype", IN, K_DATATYPE), _p("comm", IN, K_COMM),
                       _p("request", OUT, K_REQUEST)]),
    ("MPI_Alltoallv", [_p("sendbuf", IN, K_PTR),
                       _p("sendcounts", IN, K_INTV), _p("sdispls", IN, K_INTV),
                       _p("sendtype", IN, K_DATATYPE),
                       _p("recvbuf", OUT, K_PTR),
                       _p("recvcounts", IN, K_INTV), _p("rdispls", IN, K_INTV),
                       _p("recvtype", IN, K_DATATYPE), _p("comm", IN, K_COMM)]),
    ("MPI_Reduce_scatter", [_p("sendbuf", IN, K_PTR),
                            _p("recvbuf", OUT, K_PTR),
                            _p("recvcounts", IN, K_INTV),
                            _p("datatype", IN, K_DATATYPE),
                            _p("op", IN, K_OP), _p("comm", IN, K_COMM)]),
    ("MPI_Reduce_scatter_block", [_p("sendbuf", IN, K_PTR),
                                  _p("recvbuf", OUT, K_PTR),
                                  _p("recvcount", IN, K_COUNT),
                                  _p("datatype", IN, K_DATATYPE),
                                  _p("op", IN, K_OP), _p("comm", IN, K_COMM)]),
    ("MPI_Scan", [_p("sendbuf", IN, K_PTR), _p("recvbuf", OUT, K_PTR),
                  _p("count", IN, K_COUNT), _p("datatype", IN, K_DATATYPE),
                  _p("op", IN, K_OP), _p("comm", IN, K_COMM)]),
    ("MPI_Exscan", [_p("sendbuf", IN, K_PTR), _p("recvbuf", OUT, K_PTR),
                    _p("count", IN, K_COUNT), _p("datatype", IN, K_DATATYPE),
                    _p("op", IN, K_OP), _p("comm", IN, K_COMM)]),
    # -- datatypes ---------------------------------------------------------------
    ("MPI_Type_contiguous", [_p("count", IN, K_COUNT),
                             _p("oldtype", IN, K_DATATYPE),
                             _p("newtype", OUT, K_NEWTYPE)]),
    ("MPI_Type_vector", [_p("count", IN, K_COUNT),
                         _p("blocklength", IN, K_COUNT),
                         _p("stride", IN, K_INT),
                         _p("oldtype", IN, K_DATATYPE),
                         _p("newtype", OUT, K_NEWTYPE)]),
    ("MPI_Type_indexed", [_p("count", IN, K_COUNT),
                          _p("array_of_blocklengths", IN, K_INTV),
                          _p("array_of_displacements", IN, K_INTV),
                          _p("oldtype", IN, K_DATATYPE),
                          _p("newtype", OUT, K_NEWTYPE)]),
    ("MPI_Type_create_struct", [_p("count", IN, K_COUNT),
                                _p("array_of_blocklengths", IN, K_INTV),
                                _p("array_of_displacements", IN, K_INTV),
                                _p("array_of_types", IN, K_INTV),
                                _p("newtype", OUT, K_NEWTYPE)]),
    ("MPI_Type_commit", [_p("datatype", INOUT, K_DATATYPE)]),
    ("MPI_Type_free", [_p("datatype", INOUT, K_DATATYPE)]),
    ("MPI_Type_size", [_p("datatype", IN, K_DATATYPE),
                       _p("size", OUT, K_INT)]),
    ("MPI_Type_get_extent", [_p("datatype", IN, K_DATATYPE),
                             _p("lb", OUT, K_INT),
                             _p("extent", OUT, K_INT)]),
    ("MPI_Get_count", [_p("status", IN, K_STATUS),
                       _p("datatype", IN, K_DATATYPE),
                       _p("count", OUT, K_INT)]),
    # -- topology ----------------------------------------------------------------
    ("MPI_Cart_create", [_p("comm_old", IN, K_COMM), _p("ndims", IN, K_COUNT),
                         _p("dims", IN, K_INTV), _p("periods", IN, K_INTV),
                         _p("reorder", IN, K_INT),
                         _p("comm_cart", OUT, K_NEWCOMM)]),
    ("MPI_Cart_coords", [_p("comm", IN, K_COMM), _p("rank", IN, K_RANK),
                         _p("maxdims", IN, K_COUNT),
                         _p("coords", OUT, K_INTV)]),
    ("MPI_Cart_rank", [_p("comm", IN, K_COMM), _p("coords", IN, K_INTV),
                       _p("rank", OUT, K_ROOT)]),
    ("MPI_Cart_shift", [_p("comm", IN, K_COMM), _p("direction", IN, K_INT),
                        _p("disp", IN, K_INT),
                        _p("rank_source", OUT, K_RANK),
                        _p("rank_dest", OUT, K_RANK)]),
    ("MPI_Cart_sub", [_p("comm", IN, K_COMM), _p("remain_dims", IN, K_INTV),
                      _p("newcomm", OUT, K_NEWCOMM)]),
    ("MPI_Dims_create", [_p("nnodes", IN, K_COUNT), _p("ndims", IN, K_COUNT),
                         _p("dims", INOUT, K_INTV)]),
    # -- one-sided (RMA) ------------------------------------------------------------
    ("MPI_Win_create", [_p("base", IN, K_PTR), _p("size", IN, K_COUNT),
                        _p("disp_unit", IN, K_INT), _p("comm", IN, K_COMM),
                        _p("win", OUT, K_NEWWIN)]),
    ("MPI_Win_allocate", [_p("size", IN, K_COUNT),
                          _p("disp_unit", IN, K_INT),
                          _p("comm", IN, K_COMM),
                          _p("baseptr", OUT, K_PTR),
                          _p("win", OUT, K_NEWWIN)]),
    ("MPI_Win_free", [_p("win", INOUT, K_WIN)]),
    ("MPI_Win_set_name", [_p("win", IN, K_WIN),
                          _p("win_name", IN, K_STR)]),
    ("MPI_Win_fence", [_p("assert", IN, K_INT), _p("win", IN, K_WIN)]),
    ("MPI_Put", [_p("origin_addr", IN, K_PTR),
                 _p("origin_count", IN, K_COUNT),
                 _p("origin_datatype", IN, K_DATATYPE),
                 _p("target_rank", IN, K_RANK),
                 _p("target_disp", IN, K_INT),
                 _p("target_count", IN, K_COUNT),
                 _p("target_datatype", IN, K_DATATYPE),
                 _p("win", IN, K_WIN)]),
    ("MPI_Get", [_p("origin_addr", OUT, K_PTR),
                 _p("origin_count", IN, K_COUNT),
                 _p("origin_datatype", IN, K_DATATYPE),
                 _p("target_rank", IN, K_RANK),
                 _p("target_disp", IN, K_INT),
                 _p("target_count", IN, K_COUNT),
                 _p("target_datatype", IN, K_DATATYPE),
                 _p("win", IN, K_WIN)]),
    ("MPI_Accumulate", [_p("origin_addr", IN, K_PTR),
                        _p("origin_count", IN, K_COUNT),
                        _p("origin_datatype", IN, K_DATATYPE),
                        _p("target_rank", IN, K_RANK),
                        _p("target_disp", IN, K_INT),
                        _p("target_count", IN, K_COUNT),
                        _p("target_datatype", IN, K_DATATYPE),
                        _p("op", IN, K_OP), _p("win", IN, K_WIN)]),
    ("MPI_Win_lock", [_p("lock_type", IN, K_INT), _p("rank", IN, K_RANK),
                      _p("assert", IN, K_INT), _p("win", IN, K_WIN)]),
    ("MPI_Win_unlock", [_p("rank", IN, K_RANK), _p("win", IN, K_WIN)]),
]

FUNCS: dict[str, FuncSpec] = {}
BY_ID: dict[int, FuncSpec] = {}
for _i, (_name, _params) in enumerate(_SPECS):
    spec = FuncSpec(_name, _i, tuple(_params))
    FUNCS[_name] = spec
    BY_ID[_i] = spec
del _i, _name, _params, spec


# -- standard-level catalog numbers for the Table 1 reproduction -------------
# MPI 4.0 RC function count (excluding MPI_Wtime/MPI_Wtick), from the paper.
TOTAL_MPI40_FUNCS = 446
# Functions recorded by each tool at full-standard scale (paper Table 1).
CYPRESS_SUPPORTED = 56
SCALATRACE_SUPPORTED = 125
PILGRIM_SUPPORTED = 446

#: The simulated API's function count — Pilgrim-in-this-repo records all of
#: these; the ScalaTrace baseline records the subset in
#: repro.scalatrace.tracer.SCALATRACE_RECORDED.
SIM_FUNC_COUNT = len(FUNCS)


def spec_for(name: str) -> FuncSpec:
    return FUNCS[name]


def all_names() -> Iterable[str]:
    return FUNCS.keys()
