"""Per-rank virtual clocks with reproducible noise.

Every rank advances its own clock: compute phases add modelled time (with
multiplicative noise standing in for system noise / congestion, §3.2's
"variations"), and communication completions synchronise clocks through the
network model.  The tracer reads these clocks for call timestamps, so the
duration/interval compression experiments (Fig 10) see realistically noisy
but pattern-bearing sequences.
"""

from __future__ import annotations

import random


class RankClock:
    """Virtual wall-clock of one simulated process."""

    __slots__ = ("now", "_rng", "noise")

    def __init__(self, seed: int, noise: float = 0.05, start: float = 0.0):
        self.now = float(start)
        self._rng = random.Random(seed)
        #: relative std-dev of multiplicative compute noise (0 disables)
        self.noise = noise

    def advance(self, seconds: float) -> float:
        """Advance by a modelled duration, with noise applied. Returns the
        actual (noisy) duration."""
        if seconds < 0:
            seconds = 0.0
        if self.noise > 0.0 and seconds > 0.0:
            factor = self._rng.lognormvariate(0.0, self.noise)
            seconds *= factor
        self.now += seconds
        return seconds

    def advance_exact(self, seconds: float) -> float:
        """Advance without noise (used for fixed per-call software overheads)."""
        if seconds > 0:
            self.now += seconds
        return max(seconds, 0.0)

    def sync_to(self, t: float) -> None:
        """Move forward to *t* if it is in the future (never backwards)."""
        if t > self.now:
            self.now = t
