"""Datatype construction calls plus small environment queries.

Derived-datatype creation calls are traced with their full recipes so the
tracer can associate, e.g., a ``MPI_Type_indexed`` creation with later
``MPI_Send`` uses through the symbolic id (§3.3's ``MPI_Type_indexed``
example).
"""

from __future__ import annotations

from typing import Sequence

from . import datatypes as dt
from .api_base import ApiBase
from .status import Status


class ApiType(ApiBase):
    """Datatype/environment mixin."""

    def type_contiguous(self, count: int, oldtype: dt.Datatype) -> dt.Datatype:
        t0 = self._tick()
        newtype = self.types.contiguous(count, oldtype)
        self._rec("MPI_Type_contiguous", t0, {
            "count": count, "oldtype": oldtype, "newtype": newtype})
        return newtype

    def type_vector(self, count: int, blocklength: int, stride: int,
                    oldtype: dt.Datatype) -> dt.Datatype:
        t0 = self._tick()
        newtype = self.types.vector(count, blocklength, stride, oldtype)
        self._rec("MPI_Type_vector", t0, {
            "count": count, "blocklength": blocklength, "stride": stride,
            "oldtype": oldtype, "newtype": newtype})
        return newtype

    def type_indexed(self, blocklengths: Sequence[int],
                     displacements: Sequence[int],
                     oldtype: dt.Datatype) -> dt.Datatype:
        t0 = self._tick()
        newtype = self.types.indexed(blocklengths, displacements, oldtype)
        self._rec("MPI_Type_indexed", t0, {
            "count": len(blocklengths),
            "array_of_blocklengths": tuple(blocklengths),
            "array_of_displacements": tuple(displacements),
            "oldtype": oldtype, "newtype": newtype})
        return newtype

    def type_create_struct(self, blocklengths: Sequence[int],
                           displacements: Sequence[int],
                           types: Sequence[dt.Datatype]) -> dt.Datatype:
        t0 = self._tick()
        newtype = self.types.struct(blocklengths, displacements, types)
        self._rec("MPI_Type_create_struct", t0, {
            "count": len(blocklengths),
            "array_of_blocklengths": tuple(blocklengths),
            "array_of_displacements": tuple(displacements),
            "array_of_types": tuple(types), "newtype": newtype})
        return newtype

    def type_commit(self, datatype: dt.Datatype) -> None:
        t0 = self._tick()
        self.types.commit(datatype)
        self._rec("MPI_Type_commit", t0, {"datatype": datatype})

    def type_free(self, datatype: dt.Datatype) -> None:
        t0 = self._tick()
        self.types.free(datatype)
        self._rec("MPI_Type_free", t0, {"datatype": datatype})

    def type_size(self, datatype: dt.Datatype) -> int:
        t0 = self._tick()
        size = datatype.size
        self._rec("MPI_Type_size", t0, {"datatype": datatype, "size": size})
        return size

    def type_get_extent(self, datatype: dt.Datatype) -> tuple[int, int]:
        t0 = self._tick()
        lb, extent = 0, datatype.extent
        self._rec("MPI_Type_get_extent", t0, {
            "datatype": datatype, "lb": lb, "extent": extent})
        return lb, extent

    def get_count(self, status: Status, datatype: dt.Datatype) -> int:
        t0 = self._tick()
        count = status.get_count(datatype.size)
        self._rec("MPI_Get_count", t0, {
            "status": status, "datatype": datatype, "count": count})
        return count

    # -- environment -----------------------------------------------------------

    def abort(self, comm=None, errorcode: int = 1) -> None:
        """``MPI_Abort``: terminate the whole simulated job.  Recorded
        first (a tracer must see the call), then the run is torn down by
        raising out of the calling rank."""
        from .errors import MpiSimError
        comm = comm or self.world
        t0 = self._tick()
        self._rec("MPI_Abort", t0, {"comm": comm, "errorcode": errorcode})
        raise MpiSimError(
            f"MPI_Abort called on rank {self.rank} with errorcode "
            f"{errorcode}")

    def initialized(self) -> bool:
        t0 = self._tick()
        self._rec("MPI_Initialized", t0, {"flag": True})
        return True

    def get_processor_name(self) -> str:
        t0 = self._tick()
        name = f"simnode{self.rank // self.rt.node_size:04d}"
        self._rec("MPI_Get_processor_name", t0, {
            "name": name, "resultlen": len(name)})
        return name
