"""``repro.mpisim`` — an event-driven simulated MPI runtime.

This is the substrate the Pilgrim reproduction runs on: rank programs are
generator coroutines executing against a faithful MPI semantic model
(matching, collectives, communicators, datatypes, requests) with virtual
time.  See DESIGN.md §1 for why this substitution preserves the paper's
claims, and :mod:`repro.mpisim.runtime` for usage.
"""

from . import constants
from . import datatypes
from . import funcs
from . import ops
from .comm import Comm
from .errors import (CollectiveMismatchError, DeadlockError,
                     InvalidArgumentError, InvalidHandleError, MpiSimError,
                     RankProgramError, TruncationError)
from .group import Group
from .hooks import TracerHooks
from .memory import RankHeap
from .netmodel import NetworkModel
from .request import Request
from .runtime import RankAPI, RunResult, SimMPI
from .status import Status
from .topology import CartTopology, dims_create

__all__ = [
    "CartTopology", "CollectiveMismatchError", "Comm", "DeadlockError",
    "Group", "InvalidArgumentError", "InvalidHandleError", "MpiSimError",
    "NetworkModel", "RankAPI", "RankHeap", "RankProgramError", "Request",
    "RunResult", "SimMPI", "Status", "TracerHooks", "TruncationError",
    "constants", "datatypes", "dims_create", "funcs", "ops",
]

# Convenient aliases mirroring the MPI namespace
PROC_NULL = constants.PROC_NULL
ANY_SOURCE = constants.ANY_SOURCE
ANY_TAG = constants.ANY_TAG
UNDEFINED = constants.UNDEFINED
