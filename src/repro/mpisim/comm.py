"""Communicators: message channels plus collective rendezvous state.

A :class:`Comm` is shared by all member ranks (the simulator runs every
rank in one process).  It owns

* the point-to-point matching queues (posted receives / unexpected
  messages, per receiving rank, matched in MPI's posting order with
  wildcard support), and
* the collective rendezvous bookkeeping: MPI requires all members to call
  the same sequence of collectives on a communicator, so the *n*-th
  collective call of each rank on this comm joins gathering *n*.

Inter-communicators carry a local and a remote group; point-to-point peers
and collective roots are interpreted against the remote group exactly as
the standard specifies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from . import constants as C
from .errors import (CollectiveMismatchError, InvalidArgumentError,
                     InvalidHandleError)
from .future import Future
from .group import Group


class MessageEnvelope:
    """An in-flight point-to-point message (metadata + optional payload)."""

    __slots__ = ("src", "tag", "nbytes", "data", "send_time", "seq",
                 "send_req")

    def __init__(self, src: int, tag: int, nbytes: int, data: Any,
                 send_time: float, seq: int, send_req=None):
        self.src = src              # comm rank of the sender (in sender's group)
        self.tag = tag
        self.nbytes = nbytes
        self.data = data
        self.send_time = send_time
        self.seq = seq              # global arrival sequence, for FIFO order
        self.send_req = send_req


class CollGathering:
    """State of one in-progress collective on a communicator."""

    __slots__ = ("op", "arrived", "futures", "finalize", "check_args")

    def __init__(self, op: str,
                 finalize: Callable[["CollGathering", "Comm"], None],
                 check_args: Any = None):
        self.op = op
        #: world rank -> (payload, arrival virtual time)
        self.arrived: dict[int, tuple[Any, float]] = {}
        #: world rank -> future resolved with (result, completion time)
        self.futures: dict[int, Future] = {}
        self.finalize = finalize
        #: signature-relevant args of the first arriver (mismatch check)
        self.check_args = check_args

    def max_arrival(self) -> float:
        return max(t for _, t in self.arrived.values())


class Comm:
    """An intra- or inter-communicator."""

    __slots__ = ("cid", "kind", "group", "remote_group", "name", "topo",
                 "freed", "_posted", "_unexpected", "_coll_seq", "_colls",
                 "attrs")

    def __init__(self, cid: int, group: Group,
                 remote_group: Optional[Group] = None,
                 name: str = ""):
        self.cid = cid
        self.kind = "inter" if remote_group is not None else "intra"
        self.group = group                  # local group
        self.remote_group = remote_group    # None for intra-comms
        self.name = name or f"comm#{cid}"
        self.topo = None                    # set by cart_create
        self.freed = False
        # p2p queues keyed by *receiving* world rank
        self._posted: dict[int, deque] = {}
        self._unexpected: dict[int, deque] = {}
        # collective sequencing: world rank -> next collective index
        self._coll_seq: dict[int, int] = {}
        self._colls: dict[int, CollGathering] = {}
        # cached user attributes (MPI_Comm_set_attr style), incl. names
        self.attrs: dict[Any, Any] = {}

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Local group size (MPI_Comm_size semantics for inter-comms too)."""
        return self.group.size

    @property
    def remote_size(self) -> int:
        if self.remote_group is None:
            raise InvalidHandleError("remote_size on an intra-communicator")
        return self.remote_group.size

    def rank_of_world(self, world_rank: int) -> int:
        return self.group.rank_of(world_rank)

    def peer_group(self) -> Group:
        """Group against which src/dest arguments are interpreted."""
        return self.remote_group if self.remote_group is not None else self.group

    def check_usable(self) -> None:
        if self.freed:
            raise InvalidHandleError(f"communicator {self.name} was freed")

    def check_peer(self, peer: int, *, wildcard_ok: bool = False) -> None:
        if peer == C.PROC_NULL:
            return
        if wildcard_ok and peer == C.ANY_SOURCE:
            return
        if not 0 <= peer < self.peer_group().size:
            raise InvalidArgumentError(
                f"peer rank {peer} out of range for {self.name} "
                f"(size {self.peer_group().size})")

    # -- p2p queues ---------------------------------------------------------

    def posted_queue(self, world_rank: int) -> deque:
        q = self._posted.get(world_rank)
        if q is None:
            q = self._posted[world_rank] = deque()
        return q

    def unexpected_queue(self, world_rank: int) -> deque:
        q = self._unexpected.get(world_rank)
        if q is None:
            q = self._unexpected[world_rank] = deque()
        return q

    # -- collective sequencing ----------------------------------------------

    def join_collective(self, world_rank: int, op: str,
                        finalize: Callable[[CollGathering, "Comm"], None],
                        payload: Any, arrive_time: float,
                        future: Future,
                        check_args: Any = None) -> CollGathering:
        """Register *world_rank*'s participation in its next collective.

        Returns the gathering; when the last member joins, ``finalize`` is
        invoked (by this call) to compute results and resolve all futures.
        """
        idx = self._coll_seq.get(world_rank, 0)
        self._coll_seq[world_rank] = idx + 1
        g = self._colls.get(idx)
        if g is None:
            g = self._colls[idx] = CollGathering(op, finalize, check_args)
        else:
            if g.op != op:
                raise CollectiveMismatchError(
                    f"{self.name}: rank {world_rank} called {op} while "
                    f"others called {g.op} (collective #{idx})")
            if g.check_args is not None and check_args is not None \
                    and g.check_args != check_args:
                raise CollectiveMismatchError(
                    f"{self.name}: mismatched arguments in collective {op} "
                    f"#{idx}: {g.check_args!r} vs {check_args!r}")
        g.arrived[world_rank] = (payload, arrive_time)
        g.futures[world_rank] = future
        expected = self.group.size
        if self.remote_group is not None:
            # Inter-communicator collectives involve both groups.
            expected += self.remote_group.size
        if len(g.arrived) == expected:
            del self._colls[idx]
            g.finalize(g, self)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm {self.name} cid={self.cid} size={self.size} {self.kind}>"
