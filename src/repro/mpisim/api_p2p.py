"""Point-to-point operations: sends, receives, probes, persistent requests.

Protocol model: ``MPI_Send``/``MPI_Isend`` are *eager* — the message is
injected and the send completes after a sender-side overhead, matching the
behaviour of real MPI for small/medium messages (and keeping naive
exchange patterns deadlock-free, as buffered sends do in practice).
``MPI_Ssend``/``MPI_Issend`` are genuinely synchronous: the send request
completes only when a matching receive consumes the message, so
head-to-head ``Ssend`` pairs deadlock — and the simulator reports it.

Matching follows the standard: per (communicator, receiver) queues, posting
order, wildcards on source and tag, non-overtaking between a given pair.
"""

from __future__ import annotations

from typing import Any, Optional

from . import constants as C
from . import datatypes as dt
from .api_base import ApiBase
from .comm import Comm, MessageEnvelope
from .errors import InvalidArgumentError, TruncationError
from .future import Future
from .request import Request
from .status import Status


class ProbeEntry:
    """A pending blocking probe parked in the posted queue."""

    __slots__ = ("src", "tag", "future", "post_time")

    def __init__(self, src: int, tag: int, future: Future, post_time: float):
        self.src = src
        self.tag = tag
        self.future = future
        self.post_time = post_time


def _matches(want_src: int, want_tag: int, env: MessageEnvelope) -> bool:
    return ((want_src == C.ANY_SOURCE or want_src == env.src)
            and (want_tag == C.ANY_TAG or want_tag == env.tag))


class ApiP2P(ApiBase):
    """Point-to-point mixin."""

    # -- delivery engine -----------------------------------------------------------

    def _inject(self, comm: Comm, dest: int, tag: int, nbytes: int,
                data: Any, send_req: Optional[Request]) -> None:
        """Deliver an envelope to *dest* (a peer-group rank) on *comm*."""
        peer_group = self._peer_group(comm)
        dst_world = peer_group.world_rank(dest)
        src_crank = self._comm_rank(comm)
        env = MessageEnvelope(src_crank, tag, nbytes, data,
                              send_time=self.clock.now,
                              seq=self.rt.next_seq(), send_req=send_req)
        posted = comm.posted_queue(dst_world)
        i = 0
        while i < len(posted):
            entry = posted[i]
            if isinstance(entry, ProbeEntry):
                if _matches(entry.src, entry.tag, env):
                    st = Status(count=env.nbytes, MPI_SOURCE=env.src,
                                MPI_TAG=env.tag)
                    t = max(entry.post_time,
                            env.send_time + self.rt.net.p2p_time(env.nbytes))
                    del posted[i]
                    self.rt.scheduler.resolve(entry.future, (st, t))
                    continue  # a probe does not consume the message
                i += 1
            else:  # a posted receive request
                if not entry.freed and _matches(entry.peer, entry.tag, env):
                    del posted[i]
                    self._complete_recv(entry, env)
                    return
                i += 1
        comm.unexpected_queue(dst_world).append(env)

    def _complete_recv(self, rreq: Request, env: MessageEnvelope) -> None:
        if env.nbytes > rreq.nbytes:
            raise TruncationError(
                f"rank {rreq.owner}: message of {env.nbytes} bytes "
                f"(src={env.src}, tag={env.tag}) truncates a "
                f"{rreq.nbytes}-byte receive")
        t = max(rreq.post_time,
                env.send_time + self.rt.net.p2p_time(env.nbytes))
        st = Status(count=env.nbytes, MPI_SOURCE=env.src, MPI_TAG=env.tag)
        events = self.rt.events
        if events is not None:
            wildcard = rreq.peer == C.ANY_SOURCE
            events.emit("p2p.match", dst=rreq.owner, src=env.src,
                        tag=env.tag, bytes=env.nbytes, comm=rreq.comm_cid,
                        wildcard=wildcard, vtime=t)
            if wildcard:
                # a wildcard receive resolved to a concrete source — the
                # non-determinism Pilgrim must record to stay lossless
                events.emit("p2p.wildcard", dst=rreq.owner,
                            resolved_src=env.src, tag=env.tag,
                            comm=rreq.comm_cid)
        if env.send_req is not None and not env.send_req.done:
            # synchronous-mode send completes at matching time
            self.rt.scheduler_complete(env.send_req, Status.empty(), t)
        self.rt.scheduler_complete(rreq, st, t, value=env.data)

    def _post_recv(self, comm: Comm, source: int, tag: int, nbytes: int,
                   buf: int, datatype: dt.Datatype) -> Request:
        rreq = self._new_request("irecv", comm_cid=comm.cid, peer=source,
                                 tag=tag, nbytes=nbytes,
                                 datatype_handle=datatype.handle,
                                 buf_addr=buf)
        rreq.post_time = self.clock.now
        if source == C.PROC_NULL:
            rreq.complete(Status.empty(), self.clock.now)
            return rreq
        # try unexpected messages first, in arrival order
        unexpected = comm.unexpected_queue(self.rank)
        for i, env in enumerate(unexpected):
            if _matches(source, tag, env):
                del unexpected[i]
                self._complete_recv(rreq, env)
                return rreq
        comm.posted_queue(self.rank).append(rreq)
        return rreq

    def _post_send(self, kind: str, comm: Comm, dest: int, tag: int,
                   nbytes: int, buf: int, datatype: dt.Datatype,
                   data: Any) -> Request:
        sreq = self._new_request(kind, comm_cid=comm.cid, peer=dest,
                                 tag=tag, nbytes=nbytes,
                                 datatype_handle=datatype.handle,
                                 buf_addr=buf)
        sreq.post_time = self.clock.now
        if dest == C.PROC_NULL:
            sreq.complete(Status.empty(), self.clock.now)
            return sreq
        synchronous = kind == "issend"
        self.clock.advance_exact(self.rt.net.send_overhead(nbytes))
        self._inject(comm, dest, tag, nbytes, data,
                     sreq if synchronous else None)
        if not synchronous and not sreq.done:
            sreq.complete(Status.empty(), self.clock.now)
        return sreq

    # -- non-blocking user calls -------------------------------------------------

    def isend(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
              tag: int = 0, comm: Optional[Comm] = None,
              data: Any = None) -> Request:
        comm = comm or self.world
        self._check_p2p_args(comm, dest, count, datatype, tag, is_recv=False)
        t0 = self._tick()
        req = self._post_send("isend", comm, dest, tag,
                              count * datatype.size, buf, datatype, data)
        self._rec("MPI_Isend", t0, {
            "buf": buf, "count": count, "datatype": datatype, "dest": dest,
            "tag": tag, "comm": comm, "request": req})
        return req

    def issend(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
               tag: int = 0, comm: Optional[Comm] = None,
               data: Any = None) -> Request:
        comm = comm or self.world
        self._check_p2p_args(comm, dest, count, datatype, tag, is_recv=False)
        t0 = self._tick()
        req = self._post_send("issend", comm, dest, tag,
                              count * datatype.size, buf, datatype, data)
        self._rec("MPI_Issend", t0, {
            "buf": buf, "count": count, "datatype": datatype, "dest": dest,
            "tag": tag, "comm": comm, "request": req})
        return req

    def irecv(self, buf: int, count: int, datatype: dt.Datatype, source: int,
              tag: int = C.ANY_TAG, comm: Optional[Comm] = None, *,
              directed_source: Optional[int] = None) -> Request:
        """``directed_source`` (replay support): match as if posted with
        that concrete source while recording the original wildcard — the
        directed outcome is one MPI could legally have produced."""
        comm = comm or self.world
        self._check_p2p_args(comm, source, count, datatype, tag, is_recv=True)
        t0 = self._tick()
        match_src = directed_source if (source == C.ANY_SOURCE and
                                        directed_source is not None) \
            else source
        req = self._post_recv(comm, match_src, tag, count * datatype.size,
                              buf, datatype)
        self._rec("MPI_Irecv", t0, {
            "buf": buf, "count": count, "datatype": datatype,
            "source": source, "tag": tag, "comm": comm, "request": req})
        return req

    # -- blocking user calls ---------------------------------------------------------

    def _blocking_send(self, fname: str, kind: str, buf: int, count: int,
                       datatype: dt.Datatype, dest: int, tag: int,
                       comm: Optional[Comm], data: Any):
        comm = comm or self.world
        self._check_p2p_args(comm, dest, count, datatype, tag, is_recv=False)
        t0 = self._tick()
        self._mark(fname)
        req = self._post_send(kind, comm, dest, tag, count * datatype.size,
                              buf, datatype, data)
        if not req.done:
            yield req
        self.clock.sync_to(req.complete_time)
        self._rec(fname, t0, {
            "buf": buf, "count": count, "datatype": datatype, "dest": dest,
            "tag": tag, "comm": comm})
        return None

    def send(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
             tag: int = 0, comm: Optional[Comm] = None, data: Any = None):
        return self._blocking_send("MPI_Send", "isend", buf, count, datatype,
                                   dest, tag, comm, data)

    def ssend(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
              tag: int = 0, comm: Optional[Comm] = None, data: Any = None):
        return self._blocking_send("MPI_Ssend", "issend", buf, count,
                                   datatype, dest, tag, comm, data)

    def bsend(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
              tag: int = 0, comm: Optional[Comm] = None, data: Any = None):
        return self._blocking_send("MPI_Bsend", "isend", buf, count, datatype,
                                   dest, tag, comm, data)

    def rsend(self, buf: int, count: int, datatype: dt.Datatype, dest: int,
              tag: int = 0, comm: Optional[Comm] = None, data: Any = None):
        return self._blocking_send("MPI_Rsend", "isend", buf, count, datatype,
                                   dest, tag, comm, data)

    def recv(self, buf: int, count: int, datatype: dt.Datatype, source: int,
             tag: int = C.ANY_TAG, comm: Optional[Comm] = None,
             status: Any = True, *, directed_source: Optional[int] = None):
        """Blocking receive. Returns ``(data, Status)``; pass
        ``status=None`` (MPI_STATUS_IGNORE) to skip status recording.
        ``directed_source`` pins a wildcard receive for replay."""
        comm = comm or self.world
        self._check_p2p_args(comm, source, count, datatype, tag, is_recv=True)
        t0 = self._tick()
        self._mark("MPI_Recv")
        match_src = directed_source if (source == C.ANY_SOURCE and
                                        directed_source is not None) \
            else source
        req = self._post_recv(comm, match_src, tag, count * datatype.size,
                              buf, datatype)
        if not req.done:
            yield req
        self.clock.sync_to(req.complete_time)
        st = req.status if status is not None else None
        self._rec("MPI_Recv", t0, {
            "buf": buf, "count": count, "datatype": datatype,
            "source": source, "tag": tag, "comm": comm, "status": st})
        return req.value, (req.status if status is not None else None)

    def sendrecv(self, sendbuf: int, sendcount: int, sendtype: dt.Datatype,
                 dest: int, sendtag: int,
                 recvbuf: int, recvcount: int, recvtype: dt.Datatype,
                 source: int, recvtag: int = C.ANY_TAG,
                 comm: Optional[Comm] = None, status: Any = True,
                 data: Any = None, *,
                 directed_source: Optional[int] = None):
        comm = comm or self.world
        self._check_p2p_args(comm, dest, sendcount, sendtype, sendtag,
                             is_recv=False)
        self._check_p2p_args(comm, source, recvcount, recvtype, recvtag,
                             is_recv=True)
        t0 = self._tick()
        self._mark("MPI_Sendrecv")
        match_src = directed_source if (source == C.ANY_SOURCE and
                                        directed_source is not None) \
            else source
        rreq = self._post_recv(comm, match_src, recvtag,
                               recvcount * recvtype.size, recvbuf, recvtype)
        sreq = self._post_send("isend", comm, dest, sendtag,
                               sendcount * sendtype.size, sendbuf, sendtype,
                               data)
        if not sreq.done:
            yield sreq
        if not rreq.done:
            yield rreq
        self.clock.sync_to(max(sreq.complete_time, rreq.complete_time))
        st = rreq.status if status is not None else None
        self._rec("MPI_Sendrecv", t0, {
            "sendbuf": sendbuf, "sendcount": sendcount, "sendtype": sendtype,
            "dest": dest, "sendtag": sendtag,
            "recvbuf": recvbuf, "recvcount": recvcount, "recvtype": recvtype,
            "source": source, "recvtag": recvtag, "comm": comm, "status": st})
        return rreq.value, st

    # -- probes ---------------------------------------------------------------------

    def probe(self, source: int, tag: int = C.ANY_TAG,
              comm: Optional[Comm] = None, *,
              directed_source: Optional[int] = None):
        comm = comm or self.world
        comm.check_usable()
        self._check_peer(comm, source, wildcard_ok=True)
        t0 = self._tick()
        self._mark("MPI_Probe")
        match_src = directed_source if (source == C.ANY_SOURCE and
                                        directed_source is not None) \
            else source
        st = self._scan_unexpected(comm, match_src, tag)
        if st is None:
            fut = Future(f"probe(src={source},tag={tag})@{comm.name} "
                         f"rank={self.rank}")
            entry = ProbeEntry(match_src, tag, fut, self.clock.now)
            comm.posted_queue(self.rank).append(entry)
            st, t = yield fut
            self.clock.sync_to(t)
        self._rec("MPI_Probe", t0, {
            "source": source, "tag": tag, "comm": comm, "status": st})
        return st

    def iprobe(self, source: int, tag: int = C.ANY_TAG,
               comm: Optional[Comm] = None):
        comm = comm or self.world
        comm.check_usable()
        self._check_peer(comm, source, wildcard_ok=True)
        t0 = self._tick()
        st = self._scan_unexpected(comm, source, tag)
        flag = st is not None
        self._rec("MPI_Iprobe", t0, {
            "source": source, "tag": tag, "comm": comm, "flag": flag,
            "status": st})
        return flag, st

    def _scan_unexpected(self, comm: Comm, source: int,
                         tag: int) -> Optional[Status]:
        for env in comm.unexpected_queue(self.rank):
            if _matches(source, tag, env):
                return Status(count=env.nbytes, MPI_SOURCE=env.src,
                              MPI_TAG=env.tag)
        return None

    # -- persistent requests ---------------------------------------------------------

    def send_init(self, buf: int, count: int, datatype: dt.Datatype,
                  dest: int, tag: int = 0, comm: Optional[Comm] = None,
                  data: Any = None) -> Request:
        comm = comm or self.world
        self._check_p2p_args(comm, dest, count, datatype, tag, is_recv=False)
        t0 = self._tick()
        req = self._new_request("send_init", comm_cid=comm.cid, peer=dest,
                                tag=tag, nbytes=count * datatype.size,
                                datatype_handle=datatype.handle, buf_addr=buf)
        req.persistent = True
        req.active = False
        req._persistent_start = lambda: self._post_send(
            "isend", comm, dest, tag, count * datatype.size, buf, datatype,
            data)
        self._rec("MPI_Send_init", t0, {
            "buf": buf, "count": count, "datatype": datatype, "dest": dest,
            "tag": tag, "comm": comm, "request": req})
        return req

    def recv_init(self, buf: int, count: int, datatype: dt.Datatype,
                  source: int, tag: int = C.ANY_TAG,
                  comm: Optional[Comm] = None) -> Request:
        comm = comm or self.world
        self._check_p2p_args(comm, source, count, datatype, tag, is_recv=True)
        t0 = self._tick()
        req = self._new_request("recv_init", comm_cid=comm.cid, peer=source,
                                tag=tag, nbytes=count * datatype.size,
                                datatype_handle=datatype.handle, buf_addr=buf)
        req.persistent = True
        req.active = False
        req._persistent_start = lambda: self._post_recv(
            comm, source, tag, count * datatype.size, buf, datatype)
        self._rec("MPI_Recv_init", t0, {
            "buf": buf, "count": count, "datatype": datatype,
            "source": source, "tag": tag, "comm": comm, "request": req})
        return req

    def start(self, request: Request) -> None:
        request.check_usable()
        if not request.persistent:
            raise InvalidArgumentError("MPI_Start on a non-persistent request")
        if request.active:
            raise InvalidArgumentError("MPI_Start on an active request")
        t0 = self._tick()
        request.current = request._persistent_start()
        request.active = True
        self._rec("MPI_Start", t0, {"request": request})

    def startall(self, requests: list[Request]) -> None:
        t0 = self._tick()
        for req in requests:
            req.check_usable()
            if not req.persistent or req.active:
                raise InvalidArgumentError("MPI_Startall on unstartable request")
            req.current = req._persistent_start()
            req.active = True
        self._rec("MPI_Startall", t0, {
            "count": len(requests), "array_of_requests": list(requests)})

    # -- cancel / free -------------------------------------------------------------

    def cancel(self, request: Request) -> None:
        """Cancel a pending receive (sends are eager and cannot be cancelled
        once injected — matching real-MPI best-effort semantics)."""
        request.check_usable()
        t0 = self._tick()
        target = request.wait_target()
        if (target is not None and not target.done
                and target.kind == "irecv"):
            comm = self.rt.comm_by_cid(target.comm_cid)
            posted = comm.posted_queue(self.rank)
            for i, entry in enumerate(posted):
                if entry is target:
                    del posted[i]
                    target.cancelled = True
                    st = Status(cancelled=True, MPI_SOURCE=C.ANY_SOURCE,
                                MPI_TAG=C.ANY_TAG)
                    self.rt.scheduler_complete(target, st, self.clock.now)
                    break
        self._rec("MPI_Cancel", t0, {"request": request})

    def request_free(self, request: Request) -> None:
        request.check_usable()
        t0 = self._tick()
        request.freed = True
        self._rec("MPI_Request_free", t0, {"request": request})

    def request_get_status(self, request: Request):
        request.check_usable()
        t0 = self._tick()
        target = request.wait_target()
        flag = target.done
        st = target.status if flag else None
        self._rec("MPI_Request_get_status", t0, {
            "request": request, "flag": flag, "status": st})
        return flag, st
