"""Wire-level constants mirroring the MPI standard's special values.

The numeric values are chosen to be distinct from any valid rank/tag so that
accidental use as a real rank is caught by validation, not silently matched.
"""

from __future__ import annotations

# Special process ranks -------------------------------------------------------
PROC_NULL = -1
ANY_SOURCE = -2
ROOT = -3  # used on the root side of inter-communicator collectives
UNDEFINED = -32766  # MPI_UNDEFINED: e.g. comm_split color for "not a member"

# Tags -------------------------------------------------------------------------
ANY_TAG = -4
TAG_UB = 32767

# Status handling ---------------------------------------------------------------
STATUS_IGNORE = None  # pass as the status argument to skip status creation
STATUSES_IGNORE = None

# Result codes (the simulator raises on errors, but statuses carry MPI_ERROR)
SUCCESS = 0

# Maximum object-name length, mirroring MPI_MAX_OBJECT_NAME
MAX_OBJECT_NAME = 128

# Comparison results for MPI_Comm_compare / MPI_Group_compare
IDENT = 0
CONGRUENT = 1
SIMILAR = 2
UNEQUAL = 3

# Thread levels (the simulator supports SINGLE/FUNNELED semantics only,
# matching the paper's note that Pilgrim does not support THREAD_MULTIPLE).
THREAD_SINGLE = 0
THREAD_FUNNELED = 1
THREAD_SERIALIZED = 2
THREAD_MULTIPLE = 3
