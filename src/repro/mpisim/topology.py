"""Cartesian virtual topologies (``MPI_Cart_*`` and ``MPI_Dims_create``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from . import constants as C
from .errors import InvalidArgumentError


@dataclass(frozen=True)
class CartTopology:
    """Cartesian grid attached to a communicator by ``MPI_Cart_create``."""

    dims: tuple[int, ...]
    periods: tuple[bool, ...]

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def nnodes(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Row-major coordinates of a comm rank (MPI's ordering)."""
        if not 0 <= rank < self.nnodes:
            raise InvalidArgumentError(f"cart rank {rank} out of range")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Comm rank at *coords*; periodic wrap where allowed; PROC_NULL if
        off a non-periodic edge."""
        if len(coords) != self.ndims:
            raise InvalidArgumentError("coords dimensionality mismatch")
        rank = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if not 0 <= c < d:
                if p:
                    c %= d
                else:
                    return C.PROC_NULL
            rank = rank * d + c
        return rank

    def shift(self, rank: int, direction: int, disp: int) -> tuple[int, int]:
        """``MPI_Cart_shift``: (source, destination) comm ranks."""
        if not 0 <= direction < self.ndims:
            raise InvalidArgumentError(f"cart shift direction {direction}")
        coords = list(self.coords_of(rank))
        orig = coords[direction]
        coords[direction] = orig + disp
        dest = self.rank_of(coords)
        coords[direction] = orig - disp
        src = self.rank_of(coords)
        return src, dest


def dims_create(nnodes: int, ndims: int,
                dims: Sequence[int] | None = None) -> tuple[int, ...]:
    """``MPI_Dims_create``: balanced factorisation of *nnodes*.

    Entries already set (> 0) in *dims* are preserved; zeros are filled with
    factors chosen as close to each other as possible, in non-increasing
    order — the standard's behaviour.
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise InvalidArgumentError("dims length != ndims")
    fixed = 1
    free_idx = [i for i, d in enumerate(out) if d == 0]
    for d in out:
        if d < 0:
            raise InvalidArgumentError(f"negative dim {d}")
        if d > 0:
            fixed *= d
    if not free_idx:
        if fixed != nnodes:
            raise InvalidArgumentError(
                f"dims product {fixed} != nnodes {nnodes}")
        return tuple(out)
    if nnodes % fixed != 0:
        raise InvalidArgumentError(
            f"nnodes {nnodes} not divisible by fixed dims product {fixed}")
    remaining = nnodes // fixed
    # Greedy balanced factorisation: repeatedly peel the factor that keeps
    # the assignment as square as possible.
    nfree = len(free_idx)
    factors = _prime_factors(remaining)
    parts = [1] * nfree
    for f in sorted(factors, reverse=True):
        parts[parts.index(min(parts))] *= f
    parts.sort(reverse=True)
    for i, p in zip(free_idx, parts):
        out[i] = p
    return tuple(out)


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors
