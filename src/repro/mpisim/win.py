"""One-sided communication windows (``MPI_Win``).

A :class:`Win` is created collectively (like a communicator) and exposes
each member's buffer for remote ``Put``/``Get``/``Accumulate``.  Epochs
are modelled faithfully enough for tracing semantics:

* **active target**: ``MPI_Win_fence`` is a collective barrier; RMA
  operations issued between fences are queued and take effect at the
  closing fence (their payloads land in the target's window memory).
* **passive target**: ``MPI_Win_lock``/``MPI_Win_unlock`` acquire an
  exclusive or shared per-target lock (future-based, so contention
  actually blocks); operations apply at unlock time.

Payloads are optional, as everywhere in the simulator: metadata-only
workloads exercise identical code paths.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .errors import InvalidArgumentError, InvalidHandleError

LOCK_EXCLUSIVE = 1
LOCK_SHARED = 2


class Win:
    """A window object, shared by every member rank (like Comm)."""

    __slots__ = ("wid", "comm", "bases", "sizes", "disp_units", "name",
                 "freed", "fence_count", "_pending", "_locks", "memory",
                 "sync_comm")

    def __init__(self, wid: int, comm, bases: dict[int, int],
                 sizes: dict[int, int], disp_units: dict[int, int]):
        self.wid = wid
        self.comm = comm
        #: comm rank -> exposed base address / size / displacement unit
        self.bases = bases
        self.sizes = sizes
        self.disp_units = disp_units
        self.name = f"win#{wid}"
        self.freed = False
        self.fence_count = 0
        #: per target comm rank: queued (origin, op, disp, value) effects
        self._pending: dict[int, list[tuple]] = {}
        #: per target comm rank: (mode, holders, wait queue of futures)
        self._locks: dict[int, dict] = {}
        #: per comm rank: {displacement: value} — the window's contents
        self.memory: dict[int, dict[int, Any]] = {
            r: {} for r in bases}
        #: hidden communicator carrying the window's OWN collective
        #: ordering (MPI sequences window synchronisation independently of
        #: collectives on the creating communicator); set at creation
        self.sync_comm = None

    def check_usable(self) -> None:
        if self.freed:
            raise InvalidHandleError(f"{self.name} was freed")

    def check_target(self, target: int) -> None:
        if target not in self.bases:
            raise InvalidArgumentError(
                f"target rank {target} not in {self.name}")

    # -- queued effects -------------------------------------------------------------

    def queue_effect(self, target: int, effect: tuple) -> None:
        self._pending.setdefault(target, []).append(effect)

    def apply_effects(self, target: Optional[int] = None) -> int:
        """Apply queued effects (all targets, or one); returns count."""
        targets = [target] if target is not None else list(self._pending)
        applied = 0
        for t in targets:
            for origin, op, disp, value in self._pending.pop(t, ()):
                mem = self.memory[t]
                if op == "put":
                    mem[disp] = value
                elif op == "acc" and value is not None:
                    mem[disp] = (mem.get(disp, 0) or 0) + value
                applied += 1
        return applied

    # -- passive-target locks ---------------------------------------------------------

    def lock_state(self, target: int) -> dict:
        st = self._locks.get(target)
        if st is None:
            st = self._locks[target] = {"mode": 0, "holders": set(),
                                        "waiters": deque()}
        return st
