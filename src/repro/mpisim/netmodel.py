"""Alpha-beta network cost model.

The simulator needs message and collective costs only so that the virtual
timestamps handed to the tracer carry realistic structure (near-identical
durations for identical call signatures, log(P) collective skew, size-
dependent transfer times).  The absolute values are loosely based on an
InfiniBand-QDR-class fabric like Catalyst's (Table 3) but nothing in the
reproduction depends on them beyond "same signature => similar duration".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model for point-to-point and collectives."""

    #: point-to-point latency, seconds
    alpha: float = 1.5e-6
    #: inverse bandwidth, seconds per byte (~3.3 GB/s)
    beta: float = 3.0e-10
    #: per-call software overhead on the host CPU, seconds
    overhead: float = 4.0e-7

    def p2p_time(self, nbytes: int) -> float:
        """Transfer time of a point-to-point message."""
        return self.alpha + self.beta * max(nbytes, 0)

    def send_overhead(self, nbytes: int) -> float:
        """Sender-side injection cost (eager protocol: sender returns after
        handing the message to the NIC)."""
        return self.overhead + self.beta * min(max(nbytes, 0), 8192)

    def coll_time(self, op: str, nprocs: int, nbytes: int) -> float:
        """Completion cost of a collective, measured from the last arrival.

        Tree-based collectives pay ``ceil(log2 P)`` latency rounds;
        all-to-all pays a linear bandwidth term.  This coarse model follows
        standard LogP-style analyses and is enough to give collectives the
        duration structure Fig 10 depends on.
        """
        if nprocs <= 1:
            return self.overhead
        rounds = max(1, math.ceil(math.log2(nprocs)))
        bw = self.beta * max(nbytes, 0)
        if op in ("barrier", "ibarrier"):
            return rounds * self.alpha
        if op in ("bcast", "reduce", "gather", "scatter", "comm_agree"):
            return rounds * (self.alpha + bw)
        if op in ("allreduce", "allgather", "scan", "exscan",
                  "reduce_scatter"):
            return 2 * rounds * (self.alpha + bw)
        if op in ("alltoall", "alltoallv"):
            return rounds * self.alpha + (nprocs - 1) * bw
        # communicator management and anything unmodelled: one round trip
        return 2 * rounds * self.alpha
