"""MPI datatypes for the simulator.

Both builtin types (``MPI_INT``-style singletons) and derived types
(contiguous / vector / indexed / struct) are supported.  Derived types keep
their *constructor recipe* because the tracer must be able to record the
full argument list of ``MPI_Type_vector`` etc. and later associate uses of
the committed type with its creation call — that association is one of the
"near lossless" properties the paper calls out (§3.3).

Datatype handles are rank-local small integers handed out by the owning
rank's :class:`DatatypeTable`; builtins share negative handles across all
ranks, mirroring how MPI predefined handles are globally valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .errors import InvalidArgumentError, InvalidHandleError


@dataclass(eq=False)
class Datatype:
    """A (possibly derived) MPI datatype.

    Attributes:
        name: debug name, e.g. ``"MPI_INT"`` or ``"vector(4,2,8,MPI_DOUBLE)"``.
        size: number of significant bytes (sum of block sizes).
        extent: span from first to last byte plus alignment padding.
        handle: rank-local handle integer (negative for builtins).
        combiner: how the type was built (``"named"``, ``"contiguous"``,
            ``"vector"``, ``"indexed"``, ``"struct"``, ``"hvector"``).
        recipe: the constructor argument tuple, for trace recording.
        base_handles: handles of the constituent types.
    """

    name: str
    size: int
    extent: int
    handle: int
    combiner: str = "named"
    recipe: tuple = ()
    base_handles: tuple = ()
    committed: bool = False
    freed: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datatype {self.name} size={self.size} h={self.handle}>"

    @property
    def is_builtin(self) -> bool:
        return self.combiner == "named"

    def check_usable(self) -> None:
        if self.freed:
            raise InvalidHandleError(f"datatype {self.name} was freed")
        if not self.is_builtin and not self.committed:
            raise InvalidArgumentError(
                f"derived datatype {self.name} used before MPI_Type_commit"
            )


def _builtin(name: str, size: int, handle: int) -> Datatype:
    return Datatype(name=name, size=size, extent=size, handle=handle,
                    combiner="named", committed=True)


# Predefined types. Handles are negative and stable across runs so that the
# tracer's symbolic encoding of a builtin is identical on every rank.
BYTE = _builtin("MPI_BYTE", 1, -1)
CHAR = _builtin("MPI_CHAR", 1, -2)
INT = _builtin("MPI_INT", 4, -3)
LONG = _builtin("MPI_LONG", 8, -4)
FLOAT = _builtin("MPI_FLOAT", 4, -5)
DOUBLE = _builtin("MPI_DOUBLE", 8, -6)
UNSIGNED = _builtin("MPI_UNSIGNED", 4, -7)
UNSIGNED_LONG = _builtin("MPI_UNSIGNED_LONG", 8, -8)
SHORT = _builtin("MPI_SHORT", 2, -9)
INT64 = _builtin("MPI_INT64_T", 8, -10)
UINT64 = _builtin("MPI_UINT64_T", 8, -11)
COMPLEX = _builtin("MPI_COMPLEX", 8, -12)
DOUBLE_COMPLEX = _builtin("MPI_DOUBLE_COMPLEX", 16, -13)
PACKED = _builtin("MPI_PACKED", 1, -14)

BUILTINS: dict[int, Datatype] = {
    t.handle: t
    for t in (BYTE, CHAR, INT, LONG, FLOAT, DOUBLE, UNSIGNED, UNSIGNED_LONG,
              SHORT, INT64, UINT64, COMPLEX, DOUBLE_COMPLEX, PACKED)
}


class DatatypeTable:
    """Per-rank registry of derived datatypes.

    Mirrors the MPI model in which handles are process-local.  Regular SPMD
    codes create derived types in the same order on every rank, so handle
    sequences — and therefore Pilgrim's symbolic ids — align across ranks,
    which is exactly the property §3.3 relies on for inter-process
    compression.
    """

    def __init__(self) -> None:
        self._types: dict[int, Datatype] = {}
        self._next_handle = 1

    def lookup(self, handle: int) -> Datatype:
        if handle < 0:
            try:
                return BUILTINS[handle]
            except KeyError:
                raise InvalidHandleError(f"unknown builtin datatype handle {handle}")
        try:
            dt = self._types[handle]
        except KeyError:
            raise InvalidHandleError(f"unknown datatype handle {handle}")
        return dt

    def _register(self, dt: Datatype) -> Datatype:
        dt.handle = self._next_handle
        self._next_handle += 1
        self._types[dt.handle] = dt
        return dt

    # -- constructors ------------------------------------------------------

    def contiguous(self, count: int, base: Datatype) -> Datatype:
        if count < 0:
            raise InvalidArgumentError(f"contiguous count {count} < 0")
        base.check_usable()
        return self._register(Datatype(
            name=f"contiguous({count},{base.name})",
            size=count * base.size,
            extent=count * base.extent,
            handle=0,
            combiner="contiguous",
            recipe=(count,),
            base_handles=(base.handle,),
        ))

    def vector(self, count: int, blocklength: int, stride: int,
               base: Datatype) -> Datatype:
        if count < 0 or blocklength < 0:
            raise InvalidArgumentError("vector count/blocklength must be >= 0")
        base.check_usable()
        if count == 0:
            extent = 0
        else:
            span = ((count - 1) * stride + blocklength) * base.extent
            extent = max(span, blocklength * base.extent)
        return self._register(Datatype(
            name=f"vector({count},{blocklength},{stride},{base.name})",
            size=count * blocklength * base.size,
            extent=extent,
            handle=0,
            combiner="vector",
            recipe=(count, blocklength, stride),
            base_handles=(base.handle,),
        ))

    def indexed(self, blocklengths: Sequence[int], displacements: Sequence[int],
                base: Datatype) -> Datatype:
        if len(blocklengths) != len(displacements):
            raise InvalidArgumentError("indexed blocklengths/displacements mismatch")
        if any(b < 0 for b in blocklengths):
            raise InvalidArgumentError("indexed blocklength < 0")
        base.check_usable()
        size = sum(blocklengths) * base.size
        if blocklengths:
            extent = max((d + b) * base.extent
                         for d, b in zip(displacements, blocklengths))
            extent = max(extent, 0)
        else:
            extent = 0
        return self._register(Datatype(
            name=f"indexed({len(blocklengths)},{base.name})",
            size=size,
            extent=extent,
            handle=0,
            combiner="indexed",
            recipe=(tuple(blocklengths), tuple(displacements)),
            base_handles=(base.handle,),
        ))

    def struct(self, blocklengths: Sequence[int], displacements: Sequence[int],
               types: Sequence[Datatype]) -> Datatype:
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise InvalidArgumentError("struct argument arrays must have equal length")
        for t in types:
            t.check_usable()
        size = sum(b * t.size for b, t in zip(blocklengths, types))
        extent = 0
        for b, d, t in zip(blocklengths, displacements, types):
            extent = max(extent, d + b * t.extent)
        return self._register(Datatype(
            name=f"struct({len(types)})",
            size=size,
            extent=extent,
            handle=0,
            combiner="struct",
            recipe=(tuple(blocklengths), tuple(displacements)),
            base_handles=tuple(t.handle for t in types),
        ))

    def commit(self, dt: Datatype) -> None:
        if dt.freed:
            raise InvalidHandleError("commit of a freed datatype")
        dt.committed = True

    def free(self, dt: Datatype) -> None:
        if dt.is_builtin:
            raise InvalidHandleError("cannot free a builtin datatype")
        if dt.freed:
            raise InvalidHandleError("double free of datatype")
        dt.freed = True
        # Handles are NOT recycled here: MPI permits pending operations to
        # keep using the type.  Pilgrim recycles *symbolic ids*, which is a
        # tracer-side pool (see repro.core.symbolic), not a runtime concern.
