"""Simulated per-rank heap (and device heap).

Pilgrim intercepts ``malloc``/``calloc``/``realloc``/``free`` and the CUDA
allocators to map buffer pointers used in MPI calls back to the allocation
that created them (§3.3.3).  Since we have no process address space of our
own to observe, each simulated rank gets a deterministic heap: a bump
allocator with a first-fit free list.  Two properties matter and are
preserved by construction:

* pointers are plain integers, and pointer arithmetic inside a segment
  works (``addr + displacement`` still falls inside the segment), and
* ranks running the same allocation sequence produce the same addresses,
  which is what lets Pilgrim's symbolic buffer ids coincide across ranks
  and feed inter-process compression.

Addresses below :data:`HEAP_BASE` are treated as "stack" addresses — the
paper assigns those an id on first touch with a conservative 1-byte size;
the tracer handles that case (see ``repro.core.tracer``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import InvalidArgumentError, InvalidHandleError

HEAP_BASE = 0x100000          # 1 MiB: everything above is heap
DEVICE_BASE = 0x40000000000   # device allocations live far away
_ALIGN = 16


@dataclass
class Allocation:
    addr: int
    size: int
    device: int  # -1 host, >=0 device ordinal
    freed: bool = False


class RankHeap:
    """Deterministic simulated heap of a single rank."""

    def __init__(self) -> None:
        self._brk = HEAP_BASE
        self._device_brk = DEVICE_BASE
        self._live: dict[int, Allocation] = {}
        # free list: size-bucketed LIFO reuse so that malloc/free loops
        # return the same address every iteration (as glibc does in the
        # common case, and as Pilgrim's id-reuse behaviour expects).
        self._free: dict[int, list[int]] = {}

    # -- host ----------------------------------------------------------------

    def malloc(self, size: int) -> int:
        if size < 0:
            raise InvalidArgumentError(f"malloc of negative size {size}")
        size = max(size, 1)
        rounded = (size + _ALIGN - 1) // _ALIGN * _ALIGN
        bucket = self._free.get(rounded)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._brk
            self._brk += rounded
        self._live[addr] = Allocation(addr, size, device=-1)
        return addr

    def calloc(self, nmemb: int, size: int) -> int:
        return self.malloc(nmemb * size)

    def realloc(self, addr: int, size: int) -> int:
        if addr == 0:
            return self.malloc(size)
        self._lookup(addr)  # validates the address before freeing
        self.free(addr)
        return self.malloc(size)

    def free(self, addr: int) -> Allocation:
        if addr == 0:
            raise InvalidArgumentError("free(NULL) — the simulator is strict")
        alloc = self._lookup(addr)
        alloc.freed = True
        del self._live[addr]
        rounded = (alloc.size + _ALIGN - 1) // _ALIGN * _ALIGN
        self._free.setdefault(rounded, []).append(addr)
        return alloc

    # -- device ---------------------------------------------------------------

    def cuda_malloc(self, size: int, device: int = 0) -> int:
        if size < 0:
            raise InvalidArgumentError(f"cudaMalloc of negative size {size}")
        size = max(size, 1)
        rounded = (size + _ALIGN - 1) // _ALIGN * _ALIGN
        addr = self._device_brk
        self._device_brk += rounded
        self._live[addr] = Allocation(addr, size, device=device)
        return addr

    def cuda_free(self, addr: int) -> Allocation:
        alloc = self._lookup(addr)
        if alloc.device < 0:
            raise InvalidHandleError(f"cudaFree of host pointer {addr:#x}")
        alloc.freed = True
        del self._live[addr]
        return alloc

    # -- queries ----------------------------------------------------------------

    def _lookup(self, addr: int) -> Allocation:
        alloc = self._live.get(addr)
        if alloc is None:
            raise InvalidHandleError(f"free/realloc of unknown pointer {addr:#x}")
        return alloc

    def containing(self, addr: int) -> Optional[Allocation]:
        """The live allocation containing *addr*, if any (linear reference
        implementation; the tracer keeps its own AVL tree for O(log n))."""
        for alloc in self._live.values():
            if alloc.addr <= addr < alloc.addr + alloc.size:
                return alloc
        return None

    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def live_bytes(self) -> int:
        return sum(a.size for a in self._live.values())
