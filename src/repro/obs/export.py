"""Exporters for span telemetry: Chrome trace-event JSON, span JSONL,
and per-run manifests.

* :func:`to_chrome_trace` renders exported spans as a Chrome
  trace-event document (the ``{"traceEvents": [...]}`` object format)
  loadable in Perfetto / ``chrome://tracing`` — one track per recording
  process, so parallel-merge workers show up as their own rows.
* :func:`write_spans_jsonl` dumps spans one JSON object per line with a
  schema header, the archival form ``repro timeline`` and
  ``repro stats --spans`` read back.
* :class:`RunManifest` is the self-describing sidecar written next to
  every trace (and benchmark result): run id, configuration snapshot,
  git version, wall/CPU seconds, peak RSS, resilience counters, output
  sizes.

The Chrome output is validated against :data:`CHROME_TRACE_SCHEMA`, a
JSON-Schema document checked by the dependency-free
:func:`validate_json` (the subset of JSON Schema the trace format
needs), so CI can assert the artifact parses *and* conforms.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time as _time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .spans import SPAN_SCHEMA

MANIFEST_SCHEMA = "repro.manifest/v1"

#: JSON Schema for the Chrome trace-event object format (the subset this
#: exporter emits: complete "X" events and "M" metadata events)
CHROME_TRACE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "M", "B", "E", "i"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "cat": {"type": "string"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}


def validate_json(instance: Any, schema: dict[str, Any],
                  path: str = "$") -> None:
    """Validate *instance* against the JSON-Schema subset used here
    (type / required / properties / items / enum / minimum).  Raises
    ``ValueError`` naming the offending path; returns None when valid."""
    typ = schema.get("type")
    if typ is not None:
        checkers = {"object": dict, "array": list, "string": str,
                    "integer": int, "boolean": bool}
        if typ == "number":
            ok = isinstance(instance, (int, float)) \
                and not isinstance(instance, bool)
        elif typ == "integer":
            ok = isinstance(instance, int) and not isinstance(instance, bool)
        else:
            ok = isinstance(instance, checkers[typ])
        if not ok:
            raise ValueError(f"{path}: expected {typ}, "
                             f"got {type(instance).__name__}")
    if "enum" in schema and instance not in schema["enum"]:
        raise ValueError(f"{path}: {instance!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        raise ValueError(f"{path}: {instance!r} < minimum "
                         f"{schema['minimum']}")
    if isinstance(instance, dict):
        for req in schema.get("required", ()):
            if req not in instance:
                raise ValueError(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in instance:
                validate_json(instance[key], sub, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate_json(item, schema["items"], f"{path}[{i}]")


# -- Chrome trace-event export -------------------------------------------------------


def to_chrome_trace(spans: Iterable[dict[str, Any]], *,
                    meta: Optional[dict[str, Any]] = None,
                    parent_pid: Optional[int] = None) -> dict[str, Any]:
    """Exported span dicts -> Chrome trace-event document.

    Timestamps are rebased to the earliest span (microseconds, as the
    format expects).  Each recording process becomes a named track:
    the parent process (``parent_pid``, default the lowest pid seen)
    is labeled ``parent``, every other pid ``worker``.
    """
    spans = list(spans)
    t0 = min((s.get("start_ns", 0) for s in spans), default=0)
    pids: list[int] = []
    events: list[dict[str, Any]] = []
    for s in spans:
        pid = int(s.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
        args: dict[str, Any] = {"span_id": s.get("span_id")}
        if s.get("scope"):
            args["scope"] = s["scope"]
        args.update(s.get("attrs", {}))
        events.append({
            "name": s.get("name", "?"),
            "cat": s.get("scope") or "span",
            "ph": "X",
            "ts": round((s.get("start_ns", 0) - t0) / 1e3, 3),
            "dur": round(max(0, s.get("end_ns", 0)
                             - s.get("start_ns", 0)) / 1e3, 3),
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    if parent_pid is None:
        parent_pid = min(pids, default=0)
    for pid in sorted(pids):
        label = "parent" if pid == parent_pid else f"worker-{pid}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    doc: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        doc["otherData"] = dict(meta)
    return doc


def write_chrome_trace(path: str, spans: Iterable[dict[str, Any]], *,
                       meta: Optional[dict[str, Any]] = None) -> int:
    """Validate and write the Chrome trace document; returns the event
    count."""
    doc = to_chrome_trace(spans, meta=meta)
    validate_json(doc, CHROME_TRACE_SCHEMA)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])


# -- span JSONL ----------------------------------------------------------------------


def write_spans_jsonl(path: str, spans: Iterable[dict[str, Any]], *,
                      meta: Optional[dict[str, Any]] = None) -> int:
    """Dump spans as JSON lines under a schema header; returns the line
    count (header included)."""
    lines: list[dict[str, Any]] = [
        {"type": "meta", "schema": SPAN_SCHEMA, **(meta or {})}]
    lines.extend(spans)
    with open(path, "w") as fh:
        for rec in lines:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(lines)


def read_spans_jsonl(path: str) -> list[dict[str, Any]]:
    """Read back the ``type == "span"`` records of a JSONL dump (metric
    and event lines sharing the file are skipped)."""
    out: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "span":
                out.append(rec)
    return out


# -- run manifest --------------------------------------------------------------------


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None
    when not in a repository (or git is unavailable)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KB (None where the
    ``resource`` module is unavailable, e.g. Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes; normalize to KB
    if platform.system() == "Darwin":  # pragma: no cover - platform
        rss //= 1024
    return int(rss)


def _json_safe(value: Any) -> Any:
    """Force a value into JSON-able form (configuration snapshots hold
    live objects like registries and injectors; record their repr)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass
class RunManifest:
    """The self-describing sidecar for one run's artifacts."""

    #: what produced this manifest: "trace", "bench", ...
    command: str
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    created_unix: float = field(
        default_factory=lambda: round(_time.time(), 3))
    schema: str = MANIFEST_SCHEMA
    workload: Optional[str] = None
    nprocs: Optional[int] = None
    backend: Optional[str] = None
    seed: Optional[int] = None
    #: TracerOptions (or benchmark params) snapshot, JSON-safe
    options: dict[str, Any] = field(default_factory=dict)
    git: Optional[str] = None
    environment: dict[str, Any] = field(default_factory=dict)
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    #: fault/retry/salvage counters (pipeline.* scope) and fired faults
    counters: dict[str, Any] = field(default_factory=dict)
    #: run totals: calls, signatures, unique grammars, span count, ...
    totals: dict[str, Any] = field(default_factory=dict)
    #: artifact byte sizes: trace total plus per-section breakdown
    outputs: dict[str, Any] = field(default_factory=dict)
    degraded: bool = False
    salvage: Optional[str] = None
    fired_faults: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema, "run_id": self.run_id,
            "created_unix": self.created_unix, "command": self.command,
            "workload": self.workload, "nprocs": self.nprocs,
            "backend": self.backend, "seed": self.seed,
            "options": _json_safe(self.options), "git": self.git,
            "environment": _json_safe(self.environment),
            "wall_s": self.wall_s, "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "counters": _json_safe(self.counters),
            "totals": _json_safe(self.totals),
            "outputs": _json_safe(self.outputs),
            "degraded": self.degraded, "salvage": self.salvage,
            "fired_faults": list(self.fired_faults),
        }

    def write(self, path: str) -> str:
        """Write the manifest as pretty JSON; returns *path*."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @staticmethod
    def default_path(trace_path: str) -> str:
        """Where the sidecar lands for a given trace file."""
        return f"{trace_path}.manifest.json"

    @classmethod
    def load(cls, path: str) -> dict[str, Any]:
        """Read a manifest file back as a dict (schema-checked)."""
        with open(path) as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(f"{path} is not a {MANIFEST_SCHEMA} manifest")
        return doc


def host_environment() -> dict[str, Any]:
    """The environment block every manifest carries."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "pid": os.getpid(),
    }
