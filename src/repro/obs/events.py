"""Bounded runtime event log (JSON-lines).

The simulated MPI runtime emits structured events here when a log is
attached: scheduler progress samples, message matches, wildcard-receive
resolutions, collective completions, and deadlock/livelock diagnostics.
Think of it as the runtime's flight recorder — bounded, cheap, and
readable after a crash.

Buffering is bounded: only the most recent ``capacity`` events are kept
(older ones are counted in :attr:`EventLog.dropped` and in the per-kind
counts, so totals stay honest).  An event is one flat dict; the JSONL
form adds ``{"type": "event"}`` so event lines and metric lines can share
one file and be split apart by ``repro stats``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterator, Optional


class EventLog:
    """Append-only bounded log of structured runtime events."""

    __slots__ = ("capacity", "enabled", "seq", "counts", "_events")

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        #: total events ever emitted (== seq of the latest event)
        self.seq = 0
        #: kind -> total emitted (including dropped)
        self.counts: dict[str, int] = {}
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event; a no-op when the log is disabled."""
        if not self.enabled:
            return
        self.seq += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        fields["seq"] = self.seq
        fields["kind"] = kind
        self._events.append(fields)

    # -- reading -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the bounded buffer."""
        return self.seq - len(self._events)

    def tail(self, n: int, kind: Optional[str] = None) -> list[dict[str, Any]]:
        """The last *n* buffered events, optionally filtered by kind."""
        if kind is None:
            events = list(self._events)
        else:
            events = [e for e in self._events if e["kind"] == kind]
        return events[-n:]

    def by_kind(self, kind: str) -> list[dict[str, Any]]:
        return [e for e in self._events if e["kind"] == kind]

    def last(self, kind: str) -> Optional[dict[str, Any]]:
        for e in reversed(self._events):
            if e["kind"] == kind:
                return e
        return None

    # -- serialization -----------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """JSON-able records (``type: event``), oldest first."""
        return [{"type": "event", **e} for e in self._events]

    def header(self) -> dict[str, Any]:
        """The export header: enough accounting (total ``seq`` issued,
        ``dropped``, ``first_seq`` still buffered) for a reader to prove
        whether the bounded buffer evicted anything — the monotonic
        per-event ``seq`` then pinpoints any interior gap."""
        first = self._events[0]["seq"] if self._events else None
        return {"type": "event_log", "schema": "repro.obs/v1",
                "seq": self.seq, "dropped": self.dropped,
                "buffered": len(self._events), "first_seq": first}

    def to_jsonl(self, path: Optional[str] = None) -> str:
        """The header + buffered events as JSON lines.  With *path*, the
        text is also written there (the ``to_jsonl(path)`` export)."""
        lines = [self.header()] + self.records()
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in lines)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def write(self, path: str) -> int:
        """Write the header + buffered events as JSONL; returns the
        event count (header excluded)."""
        self.to_jsonl(path)
        return len(self._events)

    @staticmethod
    def find_gaps(records: list[dict[str, Any]]) -> list[tuple[int, int]]:
        """Sequence-number gaps in exported event records: half-open
        ``(after_seq, before_seq)`` intervals of missing events.  A
        leading gap (events evicted before the first surviving one) is
        reported as ``(0, first_seq)``; interior eviction cannot happen
        with the deque buffer, but a filtered or truncated file will
        show up here."""
        seqs = sorted(r["seq"] for r in records
                      if r.get("type", "event") == "event" and "seq" in r)
        gaps: list[tuple[int, int]] = []
        prev = 0
        for s in seqs:
            if s > prev + 1:
                gaps.append((prev, s))
            prev = s
        return gaps
