"""``repro.obs`` — the self-instrumentation layer.

Dependency-free observability for the reproduction itself: a process-wide
metrics registry (:class:`MetricsRegistry`), a pipeline phase profiler
(:class:`PhaseProfiler`) that produces the Fig 8-style overhead
decomposition, hierarchical span telemetry (:class:`SpanRecorder`) with
cross-process collection and Chrome-trace/JSONL exporters, per-run
:class:`RunManifest` sidecars, and a bounded runtime event log
(:class:`EventLog`) for the simulated MPI runtime.  Everything defaults
to *disabled* (:data:`NULL_REGISTRY`, :data:`NULL_RECORDER`) so
observability is strictly opt-in and the benchmarked hot paths pay
nothing when it is off.
"""

from .events import EventLog
from .export import (CHROME_TRACE_SCHEMA, MANIFEST_SCHEMA, RunManifest,
                     git_describe, host_environment, peak_rss_kb,
                     read_spans_jsonl, to_chrome_trace, validate_json,
                     write_chrome_trace, write_spans_jsonl)
from .profiler import PhaseProfiler
from .registry import (CLOCK_CPU, CLOCK_WALL, NULL_REGISTRY, SCHEMA, Counter,
                       Gauge, Histogram, MetricsRegistry, Scope, Timer,
                       read_metrics_jsonl, write_metrics_jsonl)
from .spans import (NULL_RECORDER, SPAN_SCHEMA, Span, SpanRecorder,
                    build_span_tree, span_self_ns)

__all__ = [
    "CHROME_TRACE_SCHEMA", "CLOCK_CPU", "CLOCK_WALL", "Counter", "EventLog",
    "Gauge", "Histogram", "MANIFEST_SCHEMA", "MetricsRegistry",
    "NULL_RECORDER", "NULL_REGISTRY", "PhaseProfiler", "RunManifest",
    "SCHEMA", "SPAN_SCHEMA", "Scope", "Span", "SpanRecorder", "Timer",
    "build_span_tree", "git_describe", "host_environment", "peak_rss_kb",
    "read_metrics_jsonl", "read_spans_jsonl", "span_self_ns",
    "to_chrome_trace", "validate_json", "write_chrome_trace",
    "write_metrics_jsonl", "write_spans_jsonl",
]
