"""``repro.obs`` — the self-instrumentation layer.

Dependency-free observability for the reproduction itself: a process-wide
metrics registry (:class:`MetricsRegistry`), a pipeline phase profiler
(:class:`PhaseProfiler`) that produces the Fig 8-style overhead
decomposition, and a bounded runtime event log (:class:`EventLog`) for
the simulated MPI runtime.  Everything defaults to *disabled*
(:data:`NULL_REGISTRY`) so observability is strictly opt-in and the
benchmarked hot paths pay nothing when it is off.
"""

from .events import EventLog
from .profiler import PhaseProfiler
from .registry import (CLOCK_CPU, CLOCK_WALL, NULL_REGISTRY, SCHEMA, Counter,
                       Gauge, Histogram, MetricsRegistry, Scope, Timer,
                       read_metrics_jsonl, write_metrics_jsonl)

__all__ = [
    "CLOCK_CPU", "CLOCK_WALL", "Counter", "EventLog", "Gauge", "Histogram",
    "MetricsRegistry", "NULL_REGISTRY", "PhaseProfiler", "SCHEMA", "Scope",
    "Timer", "read_metrics_jsonl", "write_metrics_jsonl",
]
