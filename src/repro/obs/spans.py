"""Hierarchical span telemetry (the timeline companion to the registry).

A :class:`Span` is one timed region — name, scope, wall-clock start/end
in nanoseconds, free-form attributes, a parent id, and the OS process id
that recorded it.  A :class:`SpanRecorder` hands out spans as context
managers and keeps a stack so nested ``with`` blocks parent naturally::

    rec = SpanRecorder()
    with rec.span("finalize", scope="pilgrim"):
        with rec.span("cst_merge"):
            ...                       # -> child of "finalize"

Cross-process collection is explicit: a worker process builds its own
recorder, exports its spans as plain dicts (picklable, JSON-able), and
ships them back with its task result; the parent calls
:meth:`SpanRecorder.splice` to re-identify the batch and graft it under
the currently open span.  Process ids are preserved, so exporters can
render one track per worker.

Timestamps use ``time.time_ns()`` (wall epoch) rather than a monotonic
clock precisely because spans from different processes must land on one
shared timeline.

Disabled mode is a null object: :data:`NULL_RECORDER` hands out a shared
inert block whose enter/exit do nothing, so instrumented code pays one
attribute check and no allocation when telemetry is off.
"""

from __future__ import annotations

import os
import time as _time
from typing import Any, Iterable, Optional

#: schema tag stamped on span JSONL dumps
SPAN_SCHEMA = "repro.spans/v1"


class Span:
    """One timed region of the run."""

    __slots__ = ("span_id", "parent_id", "name", "scope", "start_ns",
                 "end_ns", "pid", "attrs")

    def __init__(self, span_id: int, name: str, *,
                 parent_id: Optional[int] = None, scope: str = "",
                 start_ns: int = 0, end_ns: int = 0, pid: int = 0,
                 attrs: Optional[dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.scope = scope
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.pid = pid
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}

    @property
    def dur_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def dur_s(self) -> float:
        return self.dur_ns / 1e9

    def to_dict(self) -> dict[str, Any]:
        """JSON-able record (``type: span``), the JSONL/transport form."""
        rec: dict[str, Any] = {
            "type": "span", "span_id": self.span_id,
            "parent_id": self.parent_id, "name": self.name,
            "scope": self.scope, "start_ns": self.start_ns,
            "end_ns": self.end_ns, "pid": self.pid,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec

    @classmethod
    def from_dict(cls, rec: dict[str, Any]) -> "Span":
        return cls(rec["span_id"], rec["name"],
                   parent_id=rec.get("parent_id"),
                   scope=rec.get("scope", ""),
                   start_ns=rec.get("start_ns", 0),
                   end_ns=rec.get("end_ns", 0),
                   pid=rec.get("pid", 0),
                   attrs=dict(rec.get("attrs", {})))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, dur={self.dur_ns}ns)")


class _SpanBlock:
    """Context manager for one recorded span."""

    __slots__ = ("_rec", "span")

    def __init__(self, rec: "SpanRecorder", span: Span):
        self._rec = rec
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc: Any) -> None:
        self._rec._close(self.span)


class _NullSpanBlock:
    """Shared inert block for disabled recorders."""

    __slots__ = ("span",)

    def __init__(self) -> None:
        self.span = Span(0, "")

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_BLOCK = _NullSpanBlock()


class SpanRecorder:
    """Collects spans for one process, with a stack for nesting."""

    __slots__ = ("enabled", "pid", "spans", "_stack", "_next_id")

    def __init__(self, enabled: bool = True, pid: Optional[int] = None):
        self.enabled = enabled
        self.pid = pid if pid is not None else os.getpid()
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------------

    @property
    def current_id(self) -> Optional[int]:
        """Id of the innermost open span (None at top level)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, scope: str = "", **attrs: Any):
        """``with rec.span("cst_merge") as sp: ...`` — starts now, ends on
        exit, parented under the innermost open span."""
        if not self.enabled:
            return _NULL_BLOCK
        sp = Span(self._next_id, name, parent_id=self.current_id,
                  scope=scope, start_ns=_time.time_ns(), pid=self.pid,
                  attrs=attrs or None)
        self._next_id += 1
        self.spans.append(sp)
        self._stack.append(sp.span_id)
        return _SpanBlock(self, sp)

    def _close(self, sp: Span) -> None:
        sp.end_ns = _time.time_ns()
        # tolerate out-of-order exits: pop back to (and including) sp
        while self._stack:
            top = self._stack.pop()
            if top == sp.span_id:
                break

    def record(self, name: str, *, dur_s: float, scope: str = "",
               end_ns: Optional[int] = None,
               **attrs: Any) -> Optional[Span]:
        """Record a *synthetic* span for an externally measured duration
        (per-call accumulators folded at finalize).  It is anchored so it
        ends at *end_ns* (default: now) and parents under the innermost
        open span; ``attrs['synthetic']`` marks it for consumers."""
        if not self.enabled:
            return None
        end = _time.time_ns() if end_ns is None else end_ns
        attrs.setdefault("synthetic", True)
        sp = Span(self._next_id, name, parent_id=self.current_id,
                  scope=scope, start_ns=end - max(0, int(dur_s * 1e9)),
                  end_ns=end, pid=self.pid, attrs=attrs)
        self._next_id += 1
        self.spans.append(sp)
        return sp

    # -- cross-process splice ------------------------------------------------------

    def splice(self, batch: Iterable[dict[str, Any]], *,
               parent_id: Optional[int] = None) -> int:
        """Adopt a worker's exported span batch: re-identify every span
        into this recorder's id space and graft the batch's roots under
        *parent_id* (default: the innermost open span).  Worker process
        ids are preserved.  Returns the number of spans adopted."""
        if not self.enabled:
            return 0
        if parent_id is None:
            parent_id = self.current_id
        remap: dict[int, int] = {}
        adopted: list[Span] = []
        for rec in batch:
            sp = Span.from_dict(rec)
            remap[sp.span_id] = self._next_id
            sp.span_id = self._next_id
            self._next_id += 1
            adopted.append(sp)
        for sp in adopted:
            if sp.parent_id is not None and sp.parent_id in remap:
                sp.parent_id = remap[sp.parent_id]
            else:
                sp.parent_id = parent_id
            self.spans.append(sp)
        return len(adopted)

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def export(self) -> list[dict[str, Any]]:
        """All spans as JSON-able/picklable dicts, recording order."""
        return [sp.to_dict() for sp in self.spans]


#: shared always-disabled recorder (the default everywhere)
NULL_RECORDER = SpanRecorder(enabled=False)


# -- trees ---------------------------------------------------------------------------


def build_span_tree(spans: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Nest exported span dicts into a forest.

    Returns a list of root nodes ``{"span": <dict>, "children": [...]}``,
    children ordered by start time.  Spans whose parent id is unknown
    (e.g. the parent was evicted or the dump was filtered) become roots,
    so a partial dump still renders.
    """
    nodes: dict[int, dict[str, Any]] = {}
    order: list[dict[str, Any]] = []
    for rec in spans:
        node = {"span": rec, "children": []}
        nodes[rec["span_id"]] = node
        order.append(node)
    roots: list[dict[str, Any]] = []
    for node in order:
        pid = node["span"].get("parent_id")
        parent = nodes.get(pid) if pid is not None else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def _start(n: dict[str, Any]) -> int:
        return n["span"].get("start_ns", 0)
    for node in order:
        node["children"].sort(key=_start)
    roots.sort(key=_start)
    return roots


def span_self_ns(node: dict[str, Any]) -> int:
    """Self time of a tree node: own duration minus direct children's."""
    rec = node["span"]
    dur = max(0, rec.get("end_ns", 0) - rec.get("start_ns", 0))
    child = sum(max(0, c["span"].get("end_ns", 0)
                    - c["span"].get("start_ns", 0))
                for c in node["children"])
    return max(0, dur - child)
