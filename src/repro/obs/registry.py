"""Process-wide metrics registry (counters, gauges, timers, histograms).

This is the reproduction's self-instrumentation substrate — the analogue
of the counters the real Pilgrim authors read off their cluster runs to
produce the Fig 7/8 overhead decomposition.  Everything is dependency-free
and deterministic: a snapshot is a plain dict with sorted keys, so two
snapshots of the same state compare equal and serialize identically.

Instruments:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge`   — last-write-wins scalar (trace size, rank count, ...).
* :class:`Timer`   — accumulated seconds + call count; ``clock`` selects
  wall (``perf_counter``) or CPU (``process_time``) time.  Use
  :meth:`Timer.time` as a context manager or :meth:`Timer.add` from hot
  loops that manage their own timestamps.
* :class:`Histogram` — log-scale (power-of-``base``) bins, the right shape
  for latencies and message sizes that span orders of magnitude.

A registry built with ``enabled=False`` hands out *null* instruments whose
mutators are no-ops; hot paths can additionally guard on
``registry.enabled`` to skip even the call.  :data:`NULL_REGISTRY` is the
shared disabled instance used as the default everywhere so that attaching
observability is always opt-in.
"""

from __future__ import annotations

import json
import math
import time as _time
from typing import Any, Callable, Iterable, Optional

CLOCK_WALL = "wall"
CLOCK_CPU = "cpu"

_CLOCKS: dict[str, Callable[[], float]] = {
    CLOCK_WALL: _time.perf_counter,
    CLOCK_CPU: _time.process_time,
}


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def record(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def record(self) -> dict[str, Any]:
        return {"type": "gauge", "name": self.name, "value": self.value}


class _TimerBlock:
    """Context manager for one timed block of a :class:`Timer`."""

    __slots__ = ("_timer", "_t0", "seconds")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_TimerBlock":
        self._t0 = self._timer._clock()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = self._timer._clock() - self._t0
        self._timer.add(self.seconds)


class Timer:
    """Accumulated seconds + count under one clock (wall or CPU)."""

    __slots__ = ("name", "clock", "count", "total", "_clock")

    def __init__(self, name: str, clock: str = CLOCK_WALL):
        if clock not in _CLOCKS:
            raise ValueError(f"unknown timer clock {clock!r}")
        self.name = name
        self.clock = clock
        self.count = 0
        self.total = 0.0
        self._clock = _CLOCKS[clock]

    def add(self, seconds: float, count: int = 1) -> None:
        self.total += seconds
        self.count += count

    def time(self) -> _TimerBlock:
        """``with timer.time(): ...`` — measures and accumulates the block."""
        return _TimerBlock(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def record(self) -> dict[str, Any]:
        return {"type": "timer", "name": self.name, "clock": self.clock,
                "count": self.count, "seconds": self.total}


class Histogram:
    """Log-scale histogram: value v lands in bin ``ceil(log_base v)``."""

    __slots__ = ("name", "base", "bins", "count", "sum", "_log_base")

    def __init__(self, name: str, base: float = 2.0):
        if base <= 1.0:
            raise ValueError("histogram base must exceed 1.0")
        self.name = name
        self.base = base
        self.bins: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self._log_base = math.log(base)

    def observe(self, value: float, n: int = 1) -> None:
        if value <= 0:
            b = 0
        else:
            b = math.ceil(math.log(value) / self._log_base)
        self.bins[b] = self.bins.get(b, 0) + n
        self.count += n
        self.sum += value * n

    def bin_edge(self, b: int) -> float:
        """Upper edge of bin *b* (values in the bin are <= this)."""
        return self.base ** b

    def record(self) -> dict[str, Any]:
        return {"type": "histogram", "name": self.name, "base": self.base,
                "count": self.count, "sum": self.sum,
                "bins": {str(b): self.bins[b] for b in sorted(self.bins)}}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullTimerBlock:
    __slots__ = ()
    seconds = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_TIMER_BLOCK = _NullTimerBlock()


class _NullTimer(Timer):
    __slots__ = ()

    def add(self, seconds: float, count: int = 1) -> None:
        pass

    def time(self):
        return _NULL_TIMER_BLOCK


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float, n: int = 1) -> None:
        pass


class MetricsRegistry:
    """Named instruments under one namespace.

    Instruments are created on first use and returned by name thereafter
    (get-or-create), so callers never need to coordinate construction.
    Asking a name to be two different instrument kinds is an error.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Any] = {}
        self._null_counter = _NullCounter("")
        self._null_gauge = _NullGauge("")
        self._null_timer = _NullTimer("")
        self._null_histogram = _NullHistogram("")

    # -- instrument factories ------------------------------------------------------

    def _get(self, name: str, cls, factory):
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return self._null_counter
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        return self._get(name, Gauge, lambda: Gauge(name))

    def timer(self, name: str, clock: str = CLOCK_WALL) -> Timer:
        if not self.enabled:
            return self._null_timer
        return self._get(name, Timer, lambda: Timer(name, clock))

    def histogram(self, name: str, base: float = 2.0) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        return self._get(name, Histogram, lambda: Histogram(name, base))

    def scope(self, prefix: str) -> "Scope":
        return Scope(self, prefix)

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def records(self) -> list[dict[str, Any]]:
        """One JSON-able dict per instrument, sorted by name."""
        return [self._instruments[n].record() for n in self.names()]

    def snapshot(self) -> dict[str, Any]:
        """Deterministic nested view: kind -> name -> state."""
        snap: dict[str, dict[str, Any]] = {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {}}
        for rec in self.records():
            kind = rec.pop("type")
            name = rec.pop("name")
            snap[kind + "s"][name] = rec if len(rec) > 1 else rec["value"]
        return snap


class Scope:
    """A name-prefixing view of a registry (``scope.counter("x")`` creates
    ``"<prefix>.x"``).  Scopes nest: ``scope.scope("y")``."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self.prefix}.{name}")

    def timer(self, name: str, clock: str = CLOCK_WALL) -> Timer:
        return self._registry.timer(f"{self.prefix}.{name}", clock)

    def histogram(self, name: str, base: float = 2.0) -> Histogram:
        return self._registry.histogram(f"{self.prefix}.{name}", base)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._registry, f"{self.prefix}.{prefix}")


#: shared always-disabled registry; the default wherever observability is
#: optional, so the un-instrumented path stays allocation-free
NULL_REGISTRY = MetricsRegistry(enabled=False)

SCHEMA = "repro.obs/v1"


def write_metrics_jsonl(path: str, registry: MetricsRegistry, *,
                        meta: Optional[dict[str, Any]] = None,
                        events: Optional[Iterable[dict[str, Any]]] = None,
                        spans: Optional[Iterable[dict[str, Any]]] = None
                        ) -> int:
    """Dump a registry snapshot (+ optional event and span records) as
    JSON lines.

    Line 1 is a ``{"type": "meta", "schema": ...}`` header; every further
    line is one instrument, event, or span record.  Returns the line
    count.
    """
    lines = [{"type": "meta", "schema": SCHEMA, **(meta or {})}]
    lines.extend(registry.records())
    if events is not None:
        lines.extend(events)
    if spans is not None:
        lines.extend(spans)
    with open(path, "w") as fh:
        for rec in lines:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return len(lines)


def read_metrics_jsonl(path: str) -> list[dict[str, Any]]:
    """Read back a metrics/events JSONL file (skipping blank lines)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
