"""Pipeline phase profiler.

A :class:`PhaseProfiler` accumulates wall/CPU time per named *phase* of a
pipeline — for Pilgrim: ``encode``, ``cst``, ``sequitur``, ``timing`` per
call, and ``cst_merge``, ``cfg_merge``, ``timing_merge``, ``serialize`` at
finalize — and publishes the totals into a registry scope as timers named
``phase.<name>`` (wall) and ``phase.<name>.cpu``.

Since the span-telemetry overhaul the profiler is also the bridge into
the run's :class:`~repro.obs.spans.SpanRecorder`: every ``with
profiler.phase(...)`` block opens a span (nesting follows the ``with``
nesting), and every externally measured :meth:`add` records a *synthetic*
span of the given duration.  The flat ``phases()`` dict is now derived
from the same accumulators as before, so ``PilgrimResult.phases`` is
byte-compatible with the pre-span era.

The profiler itself always measures (two clock reads per ``with`` block,
negligible at run-level granularity), so backward-compatible accounting
fields like ``PilgrimResult.time_cst_merge`` stay populated even when the
registry is disabled.  Only the registry/recorder publication is gated.
Per-call hot paths should not open a ``with`` block per call; they
accumulate raw deltas themselves and bulk-:meth:`add` once at finalize,
gated on :attr:`fine` (see ``PilgrimTracer.on_call``).
"""

from __future__ import annotations

import time as _time
from typing import Optional

from .registry import CLOCK_CPU, Scope
from .spans import NULL_RECORDER, SpanRecorder


class _PhaseBlock:
    """One timed phase; exposes the measured wall/CPU seconds on exit."""

    __slots__ = ("_prof", "_name", "_w0", "_c0", "_span", "wall", "cpu")

    def __init__(self, prof: "PhaseProfiler", name: str):
        self._prof = prof
        self._name = name
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "_PhaseBlock":
        self._span = self._prof.recorder.span(self._name, scope="phase")
        self._span.__enter__()
        self._w0 = _time.perf_counter()
        self._c0 = _time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall = _time.perf_counter() - self._w0
        self.cpu = _time.process_time() - self._c0
        self._span.__exit__(*exc)
        self._prof._accumulate(self._name, self.wall, cpu=self.cpu)


class PhaseProfiler:
    """Named-phase wall/CPU accumulator, optionally backed by a registry
    scope and a span recorder."""

    def __init__(self, scope: Optional[Scope] = None,
                 recorder: Optional[SpanRecorder] = None):
        self._scope = scope
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: whether *fine-grained* (per-call) profiling is worth paying for;
        #: callers on hot paths check this before taking extra timestamps
        self.fine = scope is not None and scope.enabled
        self._wall: dict[str, float] = {}
        self._cpu: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def phase(self, name: str) -> _PhaseBlock:
        """``with profiler.phase("cst_merge") as ph: ...`` — measures the
        block (and records a span) and accumulates it; ``ph.wall``/
        ``ph.cpu`` hold the result."""
        return _PhaseBlock(self, name)

    def add(self, name: str, wall: float, count: int = 1,
            cpu: Optional[float] = None) -> None:
        """Accumulate an externally measured phase contribution; also
        recorded as a synthetic span when a recorder is attached."""
        if self.recorder.enabled:
            self.recorder.record(name, dur_s=wall, scope="phase",
                                 count=count)
        self._accumulate(name, wall, count=count, cpu=cpu)

    def _accumulate(self, name: str, wall: float, count: int = 1,
                    cpu: Optional[float] = None) -> None:
        self._wall[name] = self._wall.get(name, 0.0) + wall
        self._counts[name] = self._counts.get(name, 0) + count
        if cpu is not None:
            self._cpu[name] = self._cpu.get(name, 0.0) + cpu
        if self._scope is not None and self._scope.enabled:
            self._scope.timer(f"phase.{name}").add(wall, count)
            if cpu is not None:
                self._scope.timer(f"phase.{name}.cpu", CLOCK_CPU).add(
                    cpu, count)

    # -- accessors ---------------------------------------------------------------

    def wall(self, name: str) -> float:
        return self._wall.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self) -> float:
        """Sum of all phase wall seconds."""
        return sum(self._wall.values())

    def phases(self) -> dict[str, float]:
        """Phase -> accumulated wall seconds, insertion-ordered."""
        return dict(self._wall)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Deterministic detailed view (sorted by phase name)."""
        return {name: {"wall": self._wall[name],
                       "cpu": self._cpu.get(name, 0.0),
                       "count": self._counts.get(name, 0)}
                for name in sorted(self._wall)}
