"""Ingest client — layer 4 (the ``repro push`` produce side).

:class:`ChunkingTracer` subclasses :class:`~repro.core.tracer.
PilgrimTracer` and, every *chunk_calls* traced calls, drains each rank's
new state into :class:`~repro.core.shard.ShardPartial` chunks
(:meth:`flush_partials`) which it hands to an emit callback instead of
folding locally — ``on_run_end`` deliberately skips ``finalize()``, the
server owns the fold.

:class:`IngestClient` speaks the frame protocol over a plain blocking
socket: HELLO/HELLO_ACK handshake, a bounded window of unACKed CHUNKs
(mirroring the server's bounded queue — the client blocks on ACKs when
the window fills), FIN with per-rank call counts for the conservation
check, then RESULT with the folded trace.  Reconnects ride
:class:`~repro.resilience.retry.TaskSupervisor`: on a connection
failure the client redials with backoff, re-HELLOs with ``resume=True``,
learns the server's durable ``next_seq``, drops everything already
absorbed and resends the rest — at-least-once delivery made
exactly-once by the server's duplicate suppression.

:func:`push` ties it together and is what ``api.push()`` / ``repro
push`` call.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.backends import TracerOptions
from ..core.errors import TraceFormatError
from ..core.shard import ShardPartial
from ..core.tracer import TIMING_AGGREGATE, TIMING_LOSSY, PilgrimTracer
from ..resilience.retry import RetryPolicy, TaskSupervisor
from ..workloads import make as _make_workload
from . import protocol as proto
from .session import DEFAULT_WINDOW

#: transport failures worth a reconnect (ConnectionError ⊂ OSError;
#: EOFError marks a stream that ended mid-frame)
RETRYABLE = (OSError, EOFError)


class IngestError(RuntimeError):
    """The server refused the stream (an ERROR frame): carries the
    server-side error class name and detail."""

    def __init__(self, code: str, detail: str):
        super().__init__(f"server error {code}: {detail}")
        self.code = code
        self.detail = detail


class ChunkingTracer(PilgrimTracer):
    """A tracer that streams partial shards instead of finalizing.

    *emit* receives each :class:`~repro.core.shard.ShardPartial` as soon
    as it is produced (in rank order within a flush).  ``chunk_calls``
    is the flush period in traced calls across all ranks; 1 streams
    after every call, huge values degenerate to one whole-run chunk.
    """

    def __init__(self, emit: Callable[[ShardPartial], None], *,
                 chunk_calls: int = 256, **kwargs):
        if chunk_calls < 1:
            raise ValueError(
                f"chunk_calls must be >= 1, got {chunk_calls}")
        super().__init__(**kwargs)
        self._emit = emit
        self.chunk_calls = chunk_calls
        self._unflushed = 0

    def on_call(self, rank, fname, args, t0, t1) -> None:
        super().on_call(rank, fname, args, t0, t1)
        self._unflushed += 1
        if self._unflushed >= self.chunk_calls:
            self.flush_now()

    def record_batch(self, rank, fnames, argses, t0s, t1s) -> None:
        before = self.total_calls
        super().record_batch(rank, fnames, argses, t0s, t1s)
        self._unflushed += self.total_calls - before
        if self._unflushed >= self.chunk_calls:
            self.flush_now()

    def flush_now(self) -> None:
        self._unflushed = 0
        for p in self.flush_partials():
            self._emit(p)

    def on_run_end(self, sim) -> None:
        # the server owns the fold: ship the tail, never finalize
        self.flush_now()

    def config(self) -> proto.IngestConfig:
        return proto.IngestConfig(
            loop_detection=self.loop_detection,
            cfg_dedup=self.cfg_dedup,
            lossy_timing=self.timing_mode == TIMING_LOSSY,
            timing_base=self.timing_base,
            per_function_base=dict(self.per_function_base or {}))


class IngestClient:
    """Blocking frame-protocol client with reconnect + resend."""

    def __init__(self, host: str, port: int, tenant: str, *,
                 window: int = DEFAULT_WINDOW,
                 retry: Optional[RetryPolicy] = None,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.tenant = proto.validate_tenant(tenant)
        self.window = window
        self.timeout = timeout
        self.supervisor = TaskSupervisor(
            retry if retry is not None else RetryPolicy(), RETRYABLE)
        self._sock: Optional[socket.socket] = None
        self._dec = proto.FrameDecoder()
        self._next_seq = 0
        self._acked = 0
        #: seq -> CHUNK frame bytes, kept until ACKed (resend buffer)
        self._unacked: dict[int, bytes] = {}
        self._nprocs = 0
        self._config: Optional[proto.IngestConfig] = None
        self.reconnects = 0

    # -- transport -----------------------------------------------------------------

    def connect(self, nprocs: int, config: proto.IngestConfig) -> None:
        self._nprocs = nprocs
        self._config = config
        self.supervisor.run(
            lambda attempt: self._dial(resume=False), site="ingest.connect")

    def _dial(self, *, resume: bool) -> None:
        self._close_sock()
        self._dec = proto.FrameDecoder()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        self._sock = sock
        assert self._config is not None
        sock.sendall(proto.encode_hello(self.tenant, self._nprocs,
                                        self._config, resume=resume))
        kind, payload = self._read_frame()
        if kind == proto.ERROR:
            code, detail = proto.parse_error(payload)
            if "live session" in detail:
                # reconnect race: the server has not yet reaped the dead
                # connection holding our tenant's slot — retryable, the
                # supervisor's backoff gives the reaper time
                raise ConnectionError(f"tenant slot still held: {detail}")
            raise IngestError(code, detail)
        if kind != proto.HELLO_ACK:
            raise IngestError("protocol",
                              f"expected HELLO_ACK, got "
                              f"{proto.KIND_NAMES.get(kind, kind)}")
        next_seq = proto.parse_hello_ack(payload)
        # everything below next_seq is durably absorbed server-side
        for seq in [s for s in self._unacked if s < next_seq]:
            del self._unacked[seq]
        self._acked = max(self._acked, next_seq)
        for seq in sorted(self._unacked):
            sock.sendall(self._unacked[seq])

    def _reconnect(self) -> None:
        self.reconnects += 1
        self.supervisor.run(
            lambda attempt: self._dial(resume=True),
            site="ingest.reconnect")

    def _close_sock(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _read_frame(self) -> tuple[int, bytes]:
        assert self._sock is not None
        while True:
            for kind, payload in self._dec.frames():
                return kind, payload
            data = self._sock.recv(65536)
            if not data:
                raise EOFError("server closed the connection")
            self._dec.feed(data)

    # -- the produce path ----------------------------------------------------------

    def send_partial(self, partial: ShardPartial) -> None:
        seq = self._next_seq
        self._next_seq += 1
        frame = proto.encode_chunk(seq, partial.to_bytes())
        self._unacked[seq] = frame
        while True:
            try:
                assert self._sock is not None
                self._sock.sendall(frame)
                # honor the window: block on ACKs until within bounds
                while len(self._unacked) > self.window:
                    self._pump_one()
                return
            except RETRYABLE:
                self._reconnect()

    def _pump_one(self) -> None:
        kind, payload = self._read_frame()
        if kind == proto.ACK:
            seq = proto.parse_ack(payload)
            self._unacked.pop(seq, None)
            self._acked = max(self._acked, seq + 1)
        elif kind == proto.ERROR:
            raise IngestError(*proto.parse_error(payload))
        else:
            raise IngestError("protocol",
                              f"unexpected {proto.KIND_NAMES.get(kind, kind)}"
                              f" frame mid-stream")

    def finish(self, per_rank_calls: list[int]) -> bytes:
        """FIN + drain ACKs until RESULT; returns the folded trace."""
        fin = proto.encode_fin(per_rank_calls)
        while True:
            try:
                assert self._sock is not None
                self._sock.sendall(fin)
                while True:
                    kind, payload = self._read_frame()
                    if kind == proto.ACK:
                        seq = proto.parse_ack(payload)
                        self._unacked.pop(seq, None)
                        self._acked = max(self._acked, seq + 1)
                    elif kind == proto.RESULT:
                        self.close()
                        return payload
                    elif kind == proto.ERROR:
                        raise IngestError(*proto.parse_error(payload))
                    else:
                        raise IngestError(
                            "protocol",
                            f"unexpected "
                            f"{proto.KIND_NAMES.get(kind, kind)} frame "
                            f"awaiting RESULT")
            except RETRYABLE:
                self._reconnect()

    def close(self) -> None:
        self._close_sock()


@dataclass
class PushResult:
    """What :func:`push` returns."""

    workload: str
    nprocs: int
    tenant: str
    seed: int
    trace_bytes: bytes
    total_calls: int
    per_rank_calls: list[int] = field(default_factory=list)
    chunks_sent: int = 0
    reconnects: int = 0

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)


def push(workload: str, nprocs: int = 8, *,
         host: str = "127.0.0.1", port: int = 0,
         tenant: str = "default",
         seed: int = 1,
         options: Optional[TracerOptions] = None,
         chunk_calls: int = 256,
         params: Optional[dict] = None,
         noise: float = 0.05,
         retry: Optional[RetryPolicy] = None,
         timeout: float = 30.0) -> PushResult:
    """Run *workload* locally, stream partial shards to an ingest
    server, and return the server-folded trace (byte-identical to the
    one-shot in-process run — the subsystem's core invariant)."""
    opts = options if options is not None else TracerOptions()
    sent = [0]
    client = IngestClient(host, port, tenant, retry=retry, timeout=timeout)

    def emit(p: ShardPartial) -> None:
        client.send_partial(p)
        sent[0] += 1

    tracer = ChunkingTracer(
        emit, chunk_calls=chunk_calls,
        timing_mode=TIMING_LOSSY if opts.lossy_timing else TIMING_AGGREGATE,
        signature_cache=opts.signature_cache,
        batch_size=opts.batch_size,
        memory_watermark=opts.memory_watermark,
        **opts.extra)
    client.connect(nprocs, tracer.config())
    try:
        wl = _make_workload(workload, nprocs, **(params or {}))
        wl.run(seed=seed, tracer=tracer, noise=noise)
        per_rank = [rc.streamed_calls for rc in tracer.ranks]
        blob = client.finish(per_rank)
    finally:
        client.close()
    if not blob:
        raise TraceFormatError("server returned an empty trace")
    return PushResult(workload=workload, nprocs=nprocs, tenant=tenant,
                      seed=seed, trace_bytes=blob,
                      total_calls=sum(per_rank),
                      per_rank_calls=per_rank, chunks_sent=sent[0],
                      reconnects=client.reconnects)
