"""Ingest aggregation layer — layer 3 (the incremental fold).

Each tenant's stream of :class:`~repro.core.shard.ShardPartial` chunks
is folded into per-rank accumulators (:class:`RankFold`) that mirror the
state a one-shot :class:`~repro.core.shard.RankCompressor` would hold at
the same point:

* the CST rebuilt from append-only signature slices plus sparse integer
  count/nanosecond deltas (integer addition is associative, so any
  chunking sums to the same totals);
* the grammar as an ordered list of frozen continuation parts — exactly
  the watermark-spill representation, bounded by periodic
  *consolidation* (re-feed the concatenated terminal stream through one
  fresh Sequitur and keep the single frozen result, which preserves the
  stream and therefore the final bytes);
* the lossy-timing bin grammars, likewise as rotated parts.

``finish()`` turns the accumulators into single-rank
:class:`~repro.core.shard.RankShard` objects and runs the *existing*
pipeline — ``tree_reduce(merge_shards)`` then
:meth:`TracePipeline.serialize` — so the folded trace is byte-identical
to the one-shot in-process run (the invariant
``tests/test_ingest.py::test_chunked_fold_byte_identity`` pins across
workload families and chunk sizes).

Tenants are isolated: one tenant's corrupt partial raises inside its
own fold and never touches another tenant's state.  Checkpoints pair
each fold with its session watermark so a restarted server resumes
exactly where the durable state says.

Imports: ``repro.core``, :mod:`repro.ingest.protocol`, and
:mod:`repro.ingest.session` — dependencies flow upward (see DESIGN.md).
"""

from __future__ import annotations

import os
from typing import Optional

from ..core.errors import CorruptTraceError, TraceFormatError
from ..core.grammar import Grammar
from ..core.packing import Reader, read_value, write_uvarint, write_value
from ..core.pipeline import TracePipeline, tree_reduce
from ..core.sequitur import Sequitur
from ..core.shard import (GrammarSet, RankShard, ShardPartial, merge_shards)
from ..core.timing import TimingMeta
from ..obs import NULL_RECORDER, NULL_REGISTRY
from .protocol import IngestConfig, validate_tenant
from .session import TenantState

CHECKPOINT_MAGIC = b"PICK"
CHECKPOINT_VERSION = 1

#: consolidate a rank's part list once it holds this many frozen
#: grammars (memory bound; byte-invisible — see module docstring)
CONSOLIDATE_AFTER = 64


class FoldError(RuntimeError):
    """A tenant's fold is inconsistent (rank out of range, signature
    slice out of order, conservation mismatch at FIN)."""


class RankFold:
    """One rank's accumulated streaming state."""

    __slots__ = ("rank", "sigs", "counts", "dur_ns", "parts",
                 "timing_dur_parts", "timing_int_parts", "calls",
                 "consolidations")

    def __init__(self, rank: int):
        self.rank = rank
        self.sigs: list[tuple] = []
        self.counts: list[int] = []
        self.dur_ns: list[int] = []
        self.parts: list[Grammar] = []
        self.timing_dur_parts: list[Grammar] = []
        self.timing_int_parts: list[Grammar] = []
        self.calls = 0
        self.consolidations = 0

    def absorb(self, p: ShardPartial, *, loop_detection: bool) -> None:
        if p.rank != self.rank:
            raise FoldError(
                f"partial for rank {p.rank} routed to fold {self.rank}")
        if len(p.idx) != len(p.d_counts) or len(p.idx) != len(p.d_dur_ns):
            raise FoldError(
                f"rank {p.rank}: ragged CST delta arrays "
                f"({len(p.idx)}/{len(p.d_counts)}/{len(p.d_dur_ns)})")
        n_before = len(self.sigs)
        if p.new_sigs:
            self.sigs.extend(p.new_sigs)
            self.counts.extend([0] * len(p.new_sigs))
            self.dur_ns.extend([0] * len(p.new_sigs))
        for i, dc, dns in zip(p.idx, p.d_counts, p.d_dur_ns):
            if not 0 <= i < len(self.sigs):
                raise FoldError(
                    f"rank {p.rank}: CST delta targets signature {i} but "
                    f"the fold knows {len(self.sigs)}")
            if i < n_before and dc == 0 and dns == 0:
                # zero deltas for known sigs are legal but pointless
                continue
            self.counts[i] += dc
            self.dur_ns[i] += dns
        self.parts.extend(p.parts)
        if p.timing_duration is not None:
            self.timing_dur_parts.append(p.timing_duration)
            self.timing_int_parts.append(p.timing_interval)
        self.calls += p.n_calls
        if len(self.parts) > CONSOLIDATE_AFTER:
            self._consolidate(loop_detection)

    @staticmethod
    def _refeed(parts: list[Grammar], loop_detection: bool) -> Grammar:
        """Expand *parts* in order and feed the concatenated terminal
        stream through one fresh Sequitur — the same splice
        :meth:`RankCompressor.freeze` performs for watermark spills, so
        the result is what an unchunked run would have frozen."""
        seq = Sequitur(loop_detection=loop_detection)
        for part in parts:
            seq.append_array(part.expand())
        return Grammar.freeze(seq)

    def _consolidate(self, loop_detection: bool) -> None:
        self.parts = [self._refeed(self.parts, loop_detection)]
        if self.timing_dur_parts:
            self.timing_dur_parts = [
                self._refeed(self.timing_dur_parts, loop_detection)]
            self.timing_int_parts = [
                self._refeed(self.timing_int_parts, loop_detection)]
        self.consolidations += 1

    def to_shard(self, config: IngestConfig) -> RankShard:
        """Freeze the fold into the single-rank shard a one-shot
        ``RankCompressor.freeze()`` would have produced."""
        ld = config.loop_detection
        g = self._refeed(self.parts, ld)
        shard = RankShard(
            base_rank=self.rank, nranks=1,
            sigs=list(self.sigs), counts=list(self.counts),
            dur_ns=list(self.dur_ns),
            cfg=GrammarSet.single(g), calls=[self.calls])
        if config.lossy_timing:
            shard.timing_duration = GrammarSet.single(
                self._refeed(self.timing_dur_parts, ld))
            shard.timing_interval = GrammarSet.single(
                self._refeed(self.timing_int_parts, ld))
        return shard

    def to_partial(self) -> ShardPartial:
        """The fold's whole accumulated state as one consolidated
        partial — what checkpoints persist (a checkpoint restore is just
        ``absorb`` of this into a fresh fold; partials compose)."""
        n = len(self.sigs)
        idx = [i for i in range(n) if self.counts[i] or self.dur_ns[i]]
        td = ti = None
        if self.timing_dur_parts:
            # a checkpoint must hold at most one timing pair per rank so
            # the restore absorb sees a well-formed partial
            td = self._refeed(self.timing_dur_parts, True) \
                if len(self.timing_dur_parts) > 1 else self.timing_dur_parts[0]
            ti = self._refeed(self.timing_int_parts, True) \
                if len(self.timing_int_parts) > 1 else self.timing_int_parts[0]
        return ShardPartial(
            rank=self.rank, n_calls=self.calls, new_sigs=list(self.sigs),
            idx=idx, d_counts=[self.counts[i] for i in idx],
            d_dur_ns=[self.dur_ns[i] for i in idx],
            parts=list(self.parts), timing_duration=td, timing_interval=ti)


class TenantFold:
    """One tenant's whole fold: per-rank accumulators + config."""

    def __init__(self, tenant: str, nprocs: int, config: IngestConfig):
        validate_tenant(tenant)
        if nprocs < 1:
            raise FoldError(f"tenant {tenant!r}: nprocs {nprocs} < 1")
        self.tenant = tenant
        self.nprocs = nprocs
        self.config = config
        self.ranks: dict[int, RankFold] = {}
        self.partials_absorbed = 0
        self.bytes_absorbed = 0

    def absorb_blob(self, blob: bytes) -> ShardPartial:
        p = ShardPartial.from_bytes(blob)
        self.absorb(p)
        self.bytes_absorbed += len(blob)
        return p

    def absorb(self, p: ShardPartial) -> None:
        if not 0 <= p.rank < self.nprocs:
            raise FoldError(
                f"tenant {self.tenant!r}: partial for rank {p.rank} "
                f"outside [0, {self.nprocs})")
        if bool(p.timing_duration is not None) != self.config.lossy_timing:
            raise FoldError(
                f"tenant {self.tenant!r}: partial timing presence does "
                f"not match the session's lossy_timing config")
        fold = self.ranks.get(p.rank)
        if fold is None:
            fold = self.ranks[p.rank] = RankFold(p.rank)
        fold.absorb(p, loop_detection=self.config.loop_detection)
        self.partials_absorbed += 1

    @property
    def total_calls(self) -> int:
        return sum(f.calls for f in self.ranks.values())

    def per_rank_calls(self) -> list[int]:
        return [self.ranks[r].calls if r in self.ranks else 0
                for r in range(self.nprocs)]

    def finish(self, expected_calls: Optional[list[int]] = None) -> bytes:
        """Fold to the final trace blob through the existing pipeline.

        *expected_calls* (from the FIN frame) is the conservation check:
        the fold must account for exactly the calls the client traced.
        """
        if expected_calls is not None:
            got = self.per_rank_calls()
            if list(expected_calls) != got:
                raise FoldError(
                    f"tenant {self.tenant!r}: conservation mismatch — "
                    f"client declared {sum(expected_calls)} calls, fold "
                    f"holds {sum(got)} (per-rank {expected_calls} vs "
                    f"{got})")
        cfg = self.config
        shards = [
            (self.ranks[r] if r in self.ranks else RankFold(r))
            .to_shard(cfg)
            for r in range(self.nprocs)]
        final = tree_reduce(shards, merge_shards)
        timing_meta = TimingMeta(
            base=cfg.timing_base,
            per_function_base=dict(cfg.per_function_base)) \
            if cfg.lossy_timing else None
        pipeline = TracePipeline(loop_detection=cfg.loop_detection,
                                 cfg_dedup=cfg.cfg_dedup, jobs=1,
                                 timing_meta=timing_meta)
        return pipeline.serialize(final).trace_bytes

    # -- checkpointing -------------------------------------------------------------

    def to_bytes(self, state: TenantState) -> bytes:
        out = bytearray(CHECKPOINT_MAGIC)
        out.append(CHECKPOINT_VERSION)
        write_value(out, (self.tenant, self.nprocs, state.next_seq,
                          state.finished, self.config.to_tuple()))
        live = sorted(self.ranks)
        write_uvarint(out, len(live))
        for r in live:
            blob = self.ranks[r].to_partial().to_bytes()
            write_uvarint(out, len(blob))
            out.extend(blob)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["TenantFold", TenantState]:
        if len(data) < 5 or data[:4] != CHECKPOINT_MAGIC:
            raise CorruptTraceError(
                "not an ingest checkpoint (bad magic)")
        if data[4] != CHECKPOINT_VERSION:
            raise CorruptTraceError(
                f"unsupported checkpoint version {data[4]}")
        r = Reader(data, 5)
        head = read_value(r)
        if (not isinstance(head, tuple) or len(head) != 5
                or not isinstance(head[0], str)
                or isinstance(head[1], bool) or not isinstance(head[1], int)
                or isinstance(head[2], bool) or not isinstance(head[2], int)
                or not isinstance(head[3], bool)):
            raise CorruptTraceError("malformed checkpoint header")
        tenant, nprocs, next_seq, finished, cfg_tuple = head
        try:
            config = IngestConfig.from_tuple(cfg_tuple)
        except TraceFormatError as e:
            raise CorruptTraceError(
                f"malformed checkpoint config ({e})") from e
        fold = cls(tenant, nprocs, config)
        n = r.read_uvarint()
        if n > nprocs:
            raise CorruptTraceError(
                f"checkpoint claims {n} rank folds for {nprocs} ranks")
        for _ in range(n):
            blob = r.read_bytes(r.read_uvarint())
            fold.absorb(ShardPartial.from_bytes(blob))
        state = TenantState(tenant=tenant, nprocs=nprocs, config=config,
                            next_seq=next_seq, finished=finished)
        return fold, state


class Aggregator:
    """All tenant folds behind one server, with obs counters,
    checkpoint persistence, and optional trace-store archival."""

    def __init__(self, *, metrics=None, recorder=None,
                 checkpoint_dir: Optional[str] = None, store=None):
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.obs = registry.scope("ingest")
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.checkpoint_dir = checkpoint_dir
        #: a :class:`repro.store.TraceStore` (or None): every completed
        #: fold is put as a run of workload == tenant, so successive
        #: pushes of the same tenant dedup against each other
        self.store = store
        #: tenant -> run id of its most recently archived fold
        self.stored_runs: dict[str, str] = {}
        self.tenants: dict[str, TenantFold] = {}
        self.folds_completed = 0

    def start(self, tenant: str, nprocs: int, config: IngestConfig, *,
              resume: bool = False) -> TenantFold:
        fold = self.tenants.get(tenant)
        if fold is None or not resume:
            fold = TenantFold(tenant, nprocs, config)
            self.tenants[tenant] = fold
        elif fold.nprocs != nprocs or fold.config != config:
            raise FoldError(
                f"tenant {tenant!r}: resume config does not match the "
                f"existing fold")
        if self.obs.enabled:
            self.obs.gauge("tenants").set(len(self.tenants))
        return fold

    def absorb(self, tenant: str, blob: bytes) -> ShardPartial:
        fold = self._fold(tenant)
        p = fold.absorb_blob(blob)
        if self.obs.enabled:
            self.obs.counter("partials").inc()
            self.obs.counter("calls").inc(p.n_calls)
            self.obs.counter("bytes").inc(len(blob))
        return p

    def finish(self, tenant: str,
               expected_calls: Optional[list[int]] = None) -> bytes:
        fold = self._fold(tenant)
        with self.recorder.span("ingest.fold", scope="ingest",
                                tenant=tenant, nprocs=fold.nprocs,
                                partials=fold.partials_absorbed):
            blob = fold.finish(expected_calls)
        self.folds_completed += 1
        if self.obs.enabled:
            self.obs.counter("folds").inc()
            self.obs.counter("trace_bytes").inc(len(blob))
        if self.store is not None:
            self._archive(tenant, blob)
        return blob

    def _archive(self, tenant: str, blob: bytes) -> None:
        """Persist a completed fold into the trace store.

        Archival is best-effort relative to the client: the fold
        succeeded and the RESULT frame must still go out, so a store
        rejection (e.g. a tenant name outside the stricter workload
        grammar) is counted, not raised."""
        from ..core.errors import StoreFormatError
        try:
            put = self.store.put(blob, tenant, tenant=tenant)
        except StoreFormatError:
            if self.obs.enabled:
                self.obs.counter("store_errors").inc()
            return
        self.stored_runs[tenant] = put.run_id
        if self.obs.enabled:
            self.obs.counter("stored_runs").inc()

    def discard(self, tenant: str) -> None:
        self.tenants.pop(tenant, None)
        if self.obs.enabled:
            self.obs.gauge("tenants").set(len(self.tenants))

    def _fold(self, tenant: str) -> TenantFold:
        fold = self.tenants.get(tenant)
        if fold is None:
            raise FoldError(f"no fold open for tenant {tenant!r}")
        return fold

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self, tenant: str, state: TenantState) -> Optional[str]:
        """Persist one tenant's fold + session watermark; returns the
        path (None when no checkpoint dir is configured)."""
        if self.checkpoint_dir is None:
            return None
        fold = self._fold(tenant)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        path = os.path.join(self.checkpoint_dir, f"{tenant}.ckpt")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(fold.to_bytes(state))
        os.replace(tmp, path)
        if self.obs.enabled:
            self.obs.counter("checkpoints").inc()
        return path

    def restore(self) -> list[TenantState]:
        """Load every checkpoint in the configured dir; installs the
        folds here and returns the session states for the registry."""
        if self.checkpoint_dir is None or \
                not os.path.isdir(self.checkpoint_dir):
            return []
        states = []
        for name in sorted(os.listdir(self.checkpoint_dir)):
            if not name.endswith(".ckpt"):
                continue
            with open(os.path.join(self.checkpoint_dir, name), "rb") as fh:
                fold, state = TenantFold.from_bytes(fh.read())
            self.tenants[fold.tenant] = fold
            states.append(state)
        return states
