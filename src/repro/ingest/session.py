"""Ingest session layer — layer 2 (per-tenant stream state machines).

Sans-io, like the protocol layer below it: a :class:`Session` consumes
already-parsed frames and tracks where one tenant's stream stands —
sequence numbers, duplicate suppression, reconnect bookkeeping — while
the :class:`SessionRegistry` holds the durable per-tenant state that
survives a dropped connection so a client can resume idempotently.

Two counters make the reconnect story exact:

* ``Session.expected_seq`` (per connection) — what the *reader* has
  accepted; used to classify an incoming CHUNK as duplicate / in-order /
  gap.
* ``TenantState.next_seq`` (per tenant, durable) — what the *fold* has
  absorbed; advanced by the consumer only after a partial is safely in
  the aggregate, and reported back in HELLO_ACK.  Anything the client
  has not seen ACKed it resends; anything already absorbed the reader
  recognizes as a duplicate and re-ACKs without re-folding.

Backpressure is a contract, not a mechanism, at this layer: the server
binds each session to a bounded queue of :data:`DEFAULT_WINDOW` pending
partials, and the transport stops reading while the queue is full (TCP
push-back does the rest).  The client mirrors the same window on its
unacked buffer.

Imports: :mod:`repro.ingest.protocol` and ``repro.core`` only —
dependencies flow upward (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .protocol import IngestConfig

#: bound on partials queued between the connection reader and the fold
#: consumer (and on the client's unacked window)
DEFAULT_WINDOW = 32

#: CHUNK classification results
SEQ_NEW = "new"
SEQ_DUPLICATE = "duplicate"


class SessionError(RuntimeError):
    """A frame violated the session state machine (wrong state, unknown
    tenant, conflicting reconnect, ...).  Distinct from
    :class:`~repro.core.errors.FrameFormatError`: the frame itself was
    well-formed — its *timing or content* was not."""


class SequenceError(SessionError):
    """A CHUNK arrived with a gap in the sequence numbers — data was
    lost between client and server, the stream cannot be trusted."""

    def __init__(self, expected: int, got: int):
        super().__init__(
            f"sequence gap: expected chunk {expected}, got {got}")
        self.expected = expected
        self.got = got


@dataclass
class TenantState:
    """Durable per-tenant stream state (outlives any one connection)."""

    tenant: str
    nprocs: int
    config: IngestConfig
    #: first sequence number the fold has NOT yet absorbed
    next_seq: int = 0
    finished: bool = False
    #: per-rank call totals declared by FIN (conservation check input)
    fin_calls: Optional[list[int]] = None


class SessionRegistry:
    """All tenants known to one server, plus which are live right now.

    One live connection per tenant: a second concurrent HELLO for the
    same tenant is refused (isolation — a misbehaving duplicate must not
    corrupt an in-flight session).  A *finished* or *fresh* HELLO for a
    known-idle tenant resets its state; ``resume=True`` keeps it.
    """

    def __init__(self) -> None:
        self._tenants: dict[str, TenantState] = {}
        self._active: set[str] = set()

    @property
    def active_sessions(self) -> int:
        return len(self._active)

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def get(self, tenant: str) -> Optional[TenantState]:
        return self._tenants.get(tenant)

    def hello(self, tenant: str, nprocs: int, config: IngestConfig, *,
              resume: bool = False) -> TenantState:
        if tenant in self._active:
            raise SessionError(
                f"tenant {tenant!r} already has a live session")
        st = self._tenants.get(tenant)
        if st is None or not resume:
            # fresh stream (also the path that restarts a finished or
            # abandoned tenant from scratch)
            st = TenantState(tenant=tenant, nprocs=nprocs, config=config)
            self._tenants[tenant] = st
        else:
            if st.finished:
                raise SessionError(
                    f"tenant {tenant!r} already finished; resume is "
                    f"meaningless — start a fresh session")
            if st.nprocs != nprocs or st.config != config:
                raise SessionError(
                    f"tenant {tenant!r} resume does not match the "
                    f"original session (nprocs/config changed)")
        self._active.add(tenant)
        return st

    def release(self, tenant: str) -> None:
        self._active.discard(tenant)

    def drop(self, tenant: str) -> None:
        """Forget a tenant entirely (after its fold is delivered or
        deliberately discarded)."""
        self._active.discard(tenant)
        self._tenants.pop(tenant, None)

    def adopt(self, state: TenantState) -> None:
        """Install externally restored state (checkpoint recovery)."""
        self._tenants[state.tenant] = state


class Session:
    """One connection's view of one tenant's stream."""

    # states
    AWAIT_HELLO = "await-hello"
    ACTIVE = "active"
    FINISHING = "finishing"
    CLOSED = "closed"

    def __init__(self, registry: SessionRegistry,
                 window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"session window must be >= 1, got {window}")
        self.registry = registry
        self.window = window
        self.state = self.AWAIT_HELLO
        self.tenant_state: Optional[TenantState] = None
        #: next sequence number this connection's reader will accept
        self.expected_seq = 0
        self.chunks_accepted = 0
        self.duplicates = 0

    @property
    def tenant(self) -> Optional[str]:
        return self.tenant_state.tenant if self.tenant_state else None

    def on_hello(self, tenant: str, nprocs: int, config: IngestConfig, *,
                 resume: bool = False) -> int:
        """Open the session; returns the seq the client must send next
        (0 for a fresh stream, the durable ``next_seq`` on resume)."""
        if self.state != self.AWAIT_HELLO:
            raise SessionError(
                f"HELLO in state {self.state} (session already open)")
        st = self.registry.hello(tenant, nprocs, config, resume=resume)
        self.tenant_state = st
        self.expected_seq = st.next_seq
        self.state = self.ACTIVE
        return st.next_seq

    def on_chunk(self, seq: int) -> str:
        """Classify an in-order CHUNK.  :data:`SEQ_NEW` means the caller
        must hand the partial to the fold consumer; :data:`SEQ_DUPLICATE`
        means re-ACK and drop (idempotent resend after reconnect)."""
        if self.state != self.ACTIVE:
            raise SessionError(f"CHUNK in state {self.state}")
        if seq < self.expected_seq:
            self.duplicates += 1
            return SEQ_DUPLICATE
        if seq > self.expected_seq:
            raise SequenceError(self.expected_seq, seq)
        self.expected_seq += 1
        self.chunks_accepted += 1
        return SEQ_NEW

    def on_fin(self, per_rank_calls: list[int]) -> None:
        if self.state != self.ACTIVE:
            raise SessionError(f"FIN in state {self.state}")
        st = self.tenant_state
        assert st is not None
        if len(per_rank_calls) != st.nprocs:
            raise SessionError(
                f"FIN declares {len(per_rank_calls)} ranks, session "
                f"opened with {st.nprocs}")
        st.fin_calls = list(per_rank_calls)
        self.state = self.FINISHING

    def absorbed(self, seq: int) -> None:
        """The fold consumer committed chunk *seq*: advance the durable
        watermark so a reconnect resumes past it."""
        st = self.tenant_state
        assert st is not None
        if seq != st.next_seq:
            raise SessionError(
                f"fold absorbed chunk {seq} out of order "
                f"(durable next_seq is {st.next_seq})")
        st.next_seq = seq + 1

    def finish(self) -> None:
        """The fold was delivered; the tenant's stream is complete."""
        if self.tenant_state is not None:
            self.tenant_state.finished = True
        self.close()

    def close(self) -> None:
        """Connection gone (cleanly or not): release the live-session
        slot but keep the durable tenant state for resume."""
        if self.tenant_state is not None:
            self.registry.release(self.tenant_state.tenant)
        self.state = self.CLOSED
