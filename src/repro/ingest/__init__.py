"""Streaming trace-ingest service — a strictly layered subsystem.

Layers (dependencies flow **upward only**; see DESIGN.md):

1. :mod:`.protocol` — sans-io framing: length-prefixed, CRC-checked
   frames carrying serialized :class:`~repro.core.shard.ShardPartial`
   blobs, reusing the trace-format v2 section writers.
2. :mod:`.session` — sans-io per-tenant stream state machines:
   sequence numbers, duplicate suppression, idempotent reconnect,
   the bounded-window backpressure contract.
3. :mod:`.aggregator` — the incremental fold: re-feeds each rank's
   partial grammars through one fresh Sequitur (the same mechanism as
   the watermark spill, so the result is byte-identical to a one-shot
   run), then ``tree_reduce``/``merge_shards``/``TracePipeline`` for
   the final trace; per-tenant isolation and disk checkpoints.
4. :mod:`.server` / :mod:`.client` — asyncio transport + orchestration
   and the blocking produce side (``repro serve`` / ``repro push``).

The core invariant, property-tested in ``tests/test_ingest.py``: any
chunking of a rank's stream into partials folds to a **byte-identical**
trace versus the one-shot in-process run.
"""

from ..core.errors import FrameFormatError, TraceFormatError
from .aggregator import Aggregator, FoldError, RankFold, TenantFold
from .client import (ChunkingTracer, IngestClient, IngestError, PushResult,
                     push)
from .protocol import FrameDecoder, IngestConfig, frame_spans
from .server import IngestServer, RunningServer, serve_in_thread
from .session import (DEFAULT_WINDOW, SequenceError, Session, SessionError,
                      SessionRegistry, TenantState)

__all__ = [
    "Aggregator",
    "ChunkingTracer",
    "DEFAULT_WINDOW",
    "FoldError",
    "FrameDecoder",
    "FrameFormatError",
    "IngestClient",
    "IngestConfig",
    "IngestError",
    "IngestServer",
    "PushResult",
    "RankFold",
    "RunningServer",
    "SequenceError",
    "Session",
    "SessionError",
    "SessionRegistry",
    "TenantFold",
    "TenantState",
    "TraceFormatError",
    "frame_spans",
    "push",
    "serve_in_thread",
]
