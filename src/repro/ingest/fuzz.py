"""Frame-stream corruption fuzzer (the ingest twin of
:mod:`repro.core.fuzz`).

The server's robustness contract: a corrupt or truncated client byte
stream **always** surfaces as a structured
:class:`~repro.core.errors.TraceFormatError` subclass — never a raw
``IndexError``/``KeyError``/``zlib.error``, never a hang, and never a
silently different decode (every frame's payload is CRC-checked and
every header byte is validated, so any byte change must be caught).
The server turns exactly these errors into ERROR frames and drops only
the offending connection; this module proves the "always" part by
attacking a real recorded session byte stream with the shared
:func:`~repro.core.fuzz.iter_blob_mutations` mutation engine, pointed
at frame boundaries via :func:`~repro.ingest.protocol.frame_spans`.

Deep decode goes all the way down: frame framing → per-kind payload
parse → :meth:`ShardPartial.from_bytes
<repro.core.shard.ShardPartial.from_bytes>` for every CHUNK → EOF
check, so lazily-materialized corruption inside a partial cannot hide
behind an intact frame header.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import TraceFormatError
from ..core.fuzz import (CRASH, SILENT, STRUCTURED, FuzzOutcome, FuzzReport,
                         iter_blob_mutations)
from ..core.shard import ShardPartial
from . import protocol as proto


def build_frame_corpus(workload: str = "stencil2d", nprocs: int = 2, *,
                       seed: int = 3, chunk_calls: int = 16,
                       lossy_timing: bool = True) -> bytes:
    """Record a real client session as one contiguous byte stream:
    HELLO, every CHUNK a small traced run produces, FIN.  This is the
    known-good blob the fuzzer mutates — real partials, real grammars,
    real CRCs."""
    from ..workloads import make as make_workload
    from .client import ChunkingTracer

    frames = bytearray()
    seq = [0]

    def emit(p: ShardPartial) -> None:
        frames.extend(proto.encode_chunk(seq[0], p.to_bytes()))
        seq[0] += 1

    tracer = ChunkingTracer(
        emit, chunk_calls=chunk_calls,
        timing_mode="lossy" if lossy_timing else "aggregate")
    wl = make_workload(workload, nprocs)
    hello = proto.encode_hello("fuzz-corpus", nprocs, tracer.config())
    wl.run(seed=seed, tracer=tracer, noise=0.05)
    fin = proto.encode_fin([rc.streamed_calls for rc in tracer.ranks])
    return hello + bytes(frames) + fin


def decode_stream(blob: bytes) -> list[tuple[int, tuple]]:
    """Fully decode a client byte stream, the way the server would —
    framing, per-kind payload parsing, deep :class:`ShardPartial`
    decode for CHUNKs, and an EOF check for trailing partial frames.
    Returns the parsed frames (used for the identical-decode check);
    raises a :class:`TraceFormatError` subclass on any corruption."""
    dec = proto.FrameDecoder()
    dec.feed(blob)
    out: list[tuple[int, tuple]] = []
    for kind, payload in dec.frames():
        if kind == proto.HELLO:
            out.append((kind, proto.parse_hello(payload)))
        elif kind == proto.HELLO_ACK:
            out.append((kind, (proto.parse_hello_ack(payload),)))
        elif kind == proto.CHUNK:
            chunk_seq, partial_blob = proto.parse_chunk(payload)
            partial = ShardPartial.from_bytes(partial_blob)
            # canonical re-serialization pins the deep decode
            out.append((kind, (chunk_seq, partial.to_bytes())))
        elif kind == proto.ACK:
            out.append((kind, (proto.parse_ack(payload),)))
        elif kind == proto.FIN:
            out.append((kind, tuple(proto.parse_fin(payload))))
        elif kind == proto.ERROR:
            out.append((kind, proto.parse_error(payload)))
        else:  # RESULT: payload is an opaque trace blob
            out.append((kind, (payload,)))
    dec.check_eof()
    return out


def run_frame_fuzz(blob: Optional[bytes] = None, seed: int = 0,
                   n_random: int = 400) -> FuzzReport:
    """Attack a recorded session stream with boundary-targeted and
    seeded random mutations.

    Every mutation must either raise a structured
    :class:`TraceFormatError` subclass or — vanishingly rare, but legal
    — decode to *exactly* the frames of the pristine stream.  A decode
    that silently yields different frames is an integrity bug; any
    other exception is a parser bug.  Mirrors
    :func:`repro.core.fuzz.run_fuzz` so ``repro fuzz --frames`` reports
    with the same :class:`FuzzReport`."""
    if blob is None:
        blob = build_frame_corpus()
    reference = decode_stream(blob)
    report = FuzzReport()
    spans = proto.frame_spans(blob)
    for desc, mut in iter_blob_mutations(blob, spans, seed=seed,
                                         n_random=n_random):
        if mut == blob:
            continue
        report.total += 1
        try:
            frames = decode_stream(mut)
        except TraceFormatError as e:
            report.structured += 1
            name = type(e).__name__
            report.by_error[name] = report.by_error.get(name, 0) + 1
        except Exception as e:  # noqa: BLE001 — the whole point
            report.failures.append(FuzzOutcome(
                desc, CRASH, f"{type(e).__name__}: {e}"))
        else:
            if frames == reference:
                # the mutation round-tripped to the same parse (possible
                # only for non-load-bearing encodings); count it as
                # covered, not as a silent integrity failure
                report.structured += 1
                report.by_error["identical-decode"] = \
                    report.by_error.get("identical-decode", 0) + 1
            elif frames == reference[:len(frames)]:
                # truncation at an exact frame boundary: a byte stream
                # has no global length, so the framing layer *cannot*
                # flag this — the session layer does (no FIN, or the
                # FIN conservation check).  Covered, one layer up.
                report.structured += 1
                report.by_error["clean-prefix"] = \
                    report.by_error.get("clean-prefix", 0) + 1
            else:
                report.failures.append(FuzzOutcome(
                    desc, SILENT, "decoded to different frames"))
    return report


__all__ = ["STRUCTURED", "CRASH", "SILENT", "FuzzReport", "FuzzOutcome",
           "build_frame_corpus", "decode_stream", "run_frame_fuzz"]
