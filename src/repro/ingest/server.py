"""Ingest asyncio server — layer 4 (transport + orchestration).

One connection carries one tenant's stream.  Per connection:

* the **reader** coroutine feeds socket bytes through a
  :class:`~repro.ingest.protocol.FrameDecoder` and classifies CHUNKs
  against the session state machine, re-ACKing duplicates immediately
  and putting fresh partials on a **bounded** queue — when the fold
  consumer falls behind, ``queue.put`` blocks the reader, the kernel
  socket buffer fills, and TCP pushes back on the client (the
  backpressure chain the session layer documents);
* the **consumer** coroutine drains the queue into the tenant's fold,
  advances the durable sequence watermark, ACKs, and on FIN runs the
  final fold and sends RESULT.

Error isolation is per connection: a corrupt stream (structured
``TraceFormatError``) or a session violation gets an ERROR frame and a
closed connection; the tenant's durable state stays for resume, and no
other tenant's session is touched — the acceptance test drives a
fuzzed client alongside healthy ones to pin exactly that.

Imports all lower layers (protocol, session, aggregator) — the top of
the upward-only dependency chain together with :mod:`.client`.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..core.errors import TraceFormatError
from ..obs import NULL_REGISTRY
from . import protocol as proto
from .aggregator import Aggregator, FoldError
from .session import DEFAULT_WINDOW, SEQ_NEW, Session, SessionError, \
    SessionRegistry

#: reader chunk size; small enough that backpressure engages promptly
_READ_SIZE = 64 * 1024

#: sentinel the reader enqueues after FIN so the consumer finalizes
_FIN = object()


class IngestServer:
    """The multi-tenant trace-ingest service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 aggregator: Optional[Aggregator] = None,
                 registry: Optional[SessionRegistry] = None,
                 metrics=None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 0,
                 window: int = DEFAULT_WINDOW,
                 idle_timeout: float = 60.0,
                 store=None):
        self.host = host
        self.port = port
        self.aggregator = aggregator if aggregator is not None else \
            Aggregator(metrics=metrics, checkpoint_dir=checkpoint_dir,
                       store=store)
        self.registry = registry if registry is not None else \
            SessionRegistry()
        mreg = metrics if metrics is not None else NULL_REGISTRY
        self.obs = mreg.scope("ingest.server")
        #: checkpoint a tenant's fold every N absorbed partials (0 = only
        #: implicit persistence via explicit checkpoint calls)
        self.checkpoint_every = checkpoint_every
        self.window = window
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections = 0
        self.errors = 0

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        for state in self.aggregator.restore():
            self.registry.adopt(state)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        if self.obs.enabled:
            self.obs.counter("connections").inc()
        session = Session(self.registry, window=self.window)
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.window)
        wlock = asyncio.Lock()
        consumer: Optional[asyncio.Task] = None
        dec = proto.FrameDecoder()
        try:
            while True:
                try:
                    data = await asyncio.wait_for(
                        reader.read(_READ_SIZE), self.idle_timeout)
                except asyncio.TimeoutError:
                    raise SessionError(
                        f"idle for {self.idle_timeout}s, dropping "
                        f"connection") from None
                if not data:
                    dec.check_eof()
                    break
                dec.feed(data)
                fin_seen = False
                for kind, payload in dec.frames():
                    if kind == proto.HELLO:
                        consumer = await self._on_hello(
                            payload, session, queue, writer, wlock)
                    elif kind == proto.CHUNK:
                        seq, blob = proto.parse_chunk(payload)
                        if session.on_chunk(seq) == SEQ_NEW:
                            await queue.put((seq, blob))
                        else:
                            await self._send(writer, wlock,
                                             proto.encode_ack(seq))
                    elif kind == proto.FIN:
                        session.on_fin(proto.parse_fin(payload))
                        await queue.put(_FIN)
                        fin_seen = True
                    else:
                        raise SessionError(
                            f"unexpected {proto.KIND_NAMES[kind]} frame "
                            f"from client")
                if fin_seen:
                    assert consumer is not None
                    await consumer
                    consumer = None
                    session.finish()
                    break
        except (TraceFormatError, SessionError, FoldError) as e:
            # structured failure: tell the client, drop the connection,
            # leave every other session (and this tenant's durable
            # state) untouched
            self.errors += 1
            if self.obs.enabled:
                self.obs.counter("errors").inc()
            try:
                await self._send(writer, wlock, proto.encode_error(
                    type(e).__name__, str(e)))
            except (OSError, ConnectionError):
                pass
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished; durable state stays for resume
        finally:
            if consumer is not None:
                consumer.cancel()
                try:
                    await consumer
                except (asyncio.CancelledError, Exception):
                    pass
            session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _on_hello(self, payload: bytes, session: Session,
                        queue: asyncio.Queue,
                        writer: asyncio.StreamWriter,
                        wlock: asyncio.Lock) -> asyncio.Task:
        tenant, nprocs, resume, config = proto.parse_hello(payload)
        next_seq = session.on_hello(tenant, nprocs, config, resume=resume)
        self.aggregator.start(tenant, nprocs, config, resume=resume)
        if self.obs.enabled:
            self.obs.gauge("active_sessions").set(
                self.registry.active_sessions)
        await self._send(writer, wlock, proto.encode_hello_ack(next_seq))
        return asyncio.ensure_future(
            self._consume(session, queue, writer, wlock))

    async def _consume(self, session: Session, queue: asyncio.Queue,
                       writer: asyncio.StreamWriter,
                       wlock: asyncio.Lock) -> None:
        """Drain partials into the fold; finalize on FIN.

        Errors raised here (corrupt partial blob, fold inconsistency,
        conservation mismatch) propagate to the reader via the awaited
        task or surface as an ERROR frame directly."""
        tenant = session.tenant
        assert tenant is not None
        agg = self.aggregator
        try:
            while True:
                item = await queue.get()
                if item is _FIN:
                    st = session.tenant_state
                    assert st is not None
                    blob = agg.finish(tenant, st.fin_calls)
                    await self._send(writer, wlock,
                                     proto.encode_result(blob))
                    agg.discard(tenant)
                    self.registry.drop(tenant)
                    return
                seq, partial_blob = item
                agg.absorb(tenant, partial_blob)
                session.absorbed(seq)
                st = session.tenant_state
                if (self.checkpoint_every and st is not None
                        and st.next_seq % self.checkpoint_every == 0):
                    agg.checkpoint(tenant, st)
                await self._send(writer, wlock, proto.encode_ack(seq))
        except (TraceFormatError, SessionError, FoldError) as e:
            self.errors += 1
            if self.obs.enabled:
                self.obs.counter("errors").inc()
            try:
                await self._send(writer, wlock, proto.encode_error(
                    type(e).__name__, str(e)))
            except (OSError, ConnectionError):
                pass
            writer.close()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, wlock: asyncio.Lock,
                    frame: bytes) -> None:
        async with wlock:
            writer.write(frame)
            await writer.drain()


class RunningServer:
    """A server running on a background event-loop thread — what tests
    and ``serve_in_thread`` hand out.  ``stop()`` is idempotent."""

    def __init__(self, server: IngestServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float = 5.0) -> None:
        if not self.thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "RunningServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(host: str = "127.0.0.1", port: int = 0,
                    **kwargs) -> RunningServer:
    """Start an :class:`IngestServer` on a daemon thread and return once
    it is accepting connections (``.port`` holds the bound port)."""
    server = IngestServer(host, port, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as e:  # noqa: BLE001 — reported to caller
            startup_error.append(e)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-ingest-server",
                              daemon=True)
    thread.start()
    started.wait()
    if startup_error:
        raise startup_error[0]
    return RunningServer(server, loop, thread)
