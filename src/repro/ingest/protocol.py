"""Ingest wire protocol — layer 1 (framing), no upward imports.

One frame is::

    [0:4]  magic  b"PIGF"
    [4]    version (1)
    [5]    kind   (HELLO..ERROR below)
    [6]    flags  (bit 0: payload zlib-compressed)
    [7:]   one trace-format v2 section: uvarint payload length,
           CRC32 (LE), payload bytes

The payload section reuses :func:`repro.core.trace_format.emit_section`
verbatim, so every frame's content is integrity-checked exactly like a
trace section on disk, and the corruption fuzzer
(:mod:`repro.ingest.fuzz`) can aim the same boundary attacks at it.

The decoder is sans-io: :class:`FrameDecoder` is fed raw bytes from
whatever transport and yields complete ``(kind, payload)`` frames.  Any
wire-format violation raises a structured
:class:`~repro.core.errors.TraceFormatError` subclass — the layers above
(session, server) rely on never seeing a raw ``IndexError`` from here.

Layering (see DESIGN.md): this module imports only ``repro.core``
primitives.  ``session`` imports this; ``aggregator`` imports core;
``server``/``client`` import all three.  Dependencies flow upward only.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.errors import (FrameFormatError, TraceFormatError,
                           TruncatedTraceError, UnsupportedVersionError)
from ..core.packing import Reader, read_value, write_uvarint, write_value
from ..core.trace_format import emit_section, take_section

FRAME_MAGIC = b"PIGF"
FRAME_VERSION = 1
_FLAG_COMPRESSED = 1

#: frame kinds
HELLO = 1        # client -> server: open/resume a tenant session
HELLO_ACK = 2    # server -> client: session accepted, next expected seq
CHUNK = 3        # client -> server: uvarint seq + one ShardPartial blob
ACK = 4          # server -> client: uvarint seq absorbed into the fold
FIN = 5          # client -> server: stream complete + per-rank call counts
RESULT = 6       # server -> client: the folded trace blob
ERROR = 7        # server -> client: structured failure, session dropped

KIND_NAMES = {HELLO: "HELLO", HELLO_ACK: "HELLO_ACK", CHUNK: "CHUNK",
              ACK: "ACK", FIN: "FIN", RESULT: "RESULT", ERROR: "ERROR"}

#: sanity bound on a single frame's payload; a length prefix beyond this
#: is treated as corruption rather than an allocation request
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024

#: tenant names travel in paths (checkpoints) and logs; constrain them
_TENANT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
MAX_TENANT_LEN = 64


def encode_frame(kind: int, payload: bytes, *, compress: bool = False) -> bytes:
    """One complete frame as bytes (the only frame writer)."""
    if kind not in KIND_NAMES:
        raise ValueError(f"unknown frame kind {kind}")
    out = bytearray(FRAME_MAGIC)
    out.append(FRAME_VERSION)
    out.append(kind)
    out.append(_FLAG_COMPRESSED if compress else 0)
    emit_section(out, payload, compress)
    return bytes(out)


class FrameDecoder:
    """Incremental, transport-agnostic frame parser.

    ``feed()`` buffers raw bytes; ``frames()`` yields every complete
    ``(kind, payload)`` pair and leaves any trailing partial frame
    buffered for the next feed.  Structural violations raise
    :class:`FrameFormatError` (or another ``TraceFormatError`` subclass
    from the shared section reader) — after which the decoder is dead
    and the connection must be dropped.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.frames_decoded = 0
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes that do not yet form a complete frame."""
        return len(self._buf)

    def _try_parse(self) -> Optional[tuple[int, bytes, int]]:
        """``(kind, payload, total_frame_len)`` if the buffer holds a
        complete frame, None if more bytes are needed."""
        buf = self._buf
        have = len(buf)
        head = bytes(buf[:4])
        if head != FRAME_MAGIC[:len(head)]:
            raise FrameFormatError(
                f"not an ingest frame (bad magic {head!r})")
        if have < 7:
            return None
        if buf[4] != FRAME_VERSION:
            raise UnsupportedVersionError(buf[4], FRAME_VERSION)
        kind = buf[5]
        if kind not in KIND_NAMES:
            raise FrameFormatError(f"unknown frame kind {kind}")
        flags = buf[6]
        if flags & ~_FLAG_COMPRESSED:
            raise FrameFormatError(
                f"unknown frame flag bits in {flags:#04x}")
        # scan the payload-length uvarint without consuming
        pos, shift, n = 7, 0, 0
        while True:
            if pos >= have:
                return None if pos - 7 <= 10 else self._overlong()
            b = buf[pos]
            n |= (b & 0x7F) << shift
            pos += 1
            if not (b & 0x80):
                break
            shift += 7
            if shift > 63:
                self._overlong()
        if n > MAX_FRAME_PAYLOAD:
            raise FrameFormatError(
                f"frame payload of {n} bytes exceeds the "
                f"{MAX_FRAME_PAYLOAD}-byte bound")
        end = pos + 4 + n
        if have < end:
            return None
        name = f"frame-{KIND_NAMES[kind]}"
        pr = take_section(Reader(bytes(buf[:end]), 7),
                          bool(flags & _FLAG_COMPRESSED), name)
        return kind, pr.read_bytes(pr.remaining()), end

    def frames(self) -> Iterator[tuple[int, bytes]]:
        """Yield every complete buffered frame."""
        while True:
            parsed = self._try_parse()
            if parsed is None:
                return
            kind, payload, end = parsed
            del self._buf[:end]
            self.frames_decoded += 1
            self.bytes_consumed += end
            yield kind, payload

    def check_eof(self) -> None:
        """Call at end of stream: leftover bytes mean the peer died
        mid-frame (or the stream was truncated by corruption)."""
        if self._buf:
            raise TruncatedTraceError(
                f"{len(self._buf)} trailing bytes form no complete "
                f"ingest frame")

    @staticmethod
    def _overlong() -> None:
        raise FrameFormatError("frame length varint is overlong")


def frame_spans(blob: bytes) -> dict[str, tuple[int, int]]:
    """Byte spans of every region of a valid frame stream, for the
    boundary fuzzer — the frame-stream analogue of
    :func:`repro.core.trace_format.section_spans`."""
    spans: dict[str, tuple[int, int]] = {}
    r = Reader(blob)
    i = 0
    while r.remaining():
        base = r.pos
        hdr = r.read_bytes(7)
        if hdr[:4] != FRAME_MAGIC:
            raise FrameFormatError("not an ingest frame (bad magic)")
        name = f"frame{i}.{KIND_NAMES.get(hdr[5], '?')}"
        spans[f"{name}.header"] = (base, base + 7)
        start = r.pos
        n = r.read_uvarint()
        spans[f"{name}.len"] = (start, r.pos)
        spans[f"{name}.crc"] = (r.pos, r.pos + 4)
        r.read_bytes(4)
        spans[f"{name}.payload"] = (r.pos, r.pos + n)
        r.read_bytes(n)
        i += 1
    return spans


# -- per-kind payload codecs ---------------------------------------------------------


@dataclass(frozen=True)
class IngestConfig:
    """The tracer configuration a tenant's fold must replicate — shipped
    in the HELLO frame so the server-side fold produces exactly the
    bytes the equivalent in-process run would."""

    loop_detection: bool = True
    cfg_dedup: bool = True
    lossy_timing: bool = False
    timing_base: float = 1.2
    per_function_base: dict = field(default_factory=dict)

    def to_tuple(self) -> tuple:
        return (self.loop_detection, self.cfg_dedup, self.lossy_timing,
                float(self.timing_base),
                tuple(sorted(self.per_function_base.items())))

    @classmethod
    def from_tuple(cls, val) -> "IngestConfig":
        if (not isinstance(val, tuple) or len(val) != 5
                or not all(isinstance(v, bool) for v in val[:3])
                or isinstance(val[3], bool)
                or not isinstance(val[3], (int, float))
                or not isinstance(val[4], tuple)):
            raise FrameFormatError("malformed ingest config tuple")
        pfb = {}
        for item in val[4]:
            if (not isinstance(item, tuple) or len(item) != 2
                    or not isinstance(item[0], str)
                    or isinstance(item[1], bool)
                    or not isinstance(item[1], (int, float))):
                raise FrameFormatError(
                    "malformed per-function base in ingest config")
            pfb[item[0]] = float(item[1])
        return cls(loop_detection=val[0], cfg_dedup=val[1],
                   lossy_timing=val[2], timing_base=float(val[3]),
                   per_function_base=pfb)


def validate_tenant(tenant: str) -> str:
    if (not tenant or len(tenant) > MAX_TENANT_LEN
            or not set(tenant) <= _TENANT_OK):
        raise FrameFormatError(
            f"bad tenant name {tenant!r}: 1-{MAX_TENANT_LEN} chars "
            f"from [A-Za-z0-9._-]")
    return tenant


def encode_hello(tenant: str, nprocs: int, config: IngestConfig, *,
                 resume: bool = False) -> bytes:
    validate_tenant(tenant)
    out = bytearray()
    write_value(out, (tenant, int(nprocs), bool(resume),
                      config.to_tuple()))
    return encode_frame(HELLO, bytes(out))


def parse_hello(payload: bytes) -> tuple[str, int, bool, IngestConfig]:
    val = _read_tuple(payload, "HELLO", 4)
    tenant, nprocs, resume, cfg = val
    if (not isinstance(tenant, str) or isinstance(nprocs, bool)
            or not isinstance(nprocs, int) or not isinstance(resume, bool)):
        raise FrameFormatError("malformed HELLO payload")
    if nprocs < 1:
        raise FrameFormatError(f"HELLO declares nprocs {nprocs} < 1")
    validate_tenant(tenant)
    return tenant, nprocs, resume, IngestConfig.from_tuple(cfg)


def encode_hello_ack(next_seq: int) -> bytes:
    out = bytearray()
    write_uvarint(out, next_seq)
    return encode_frame(HELLO_ACK, bytes(out))


def parse_hello_ack(payload: bytes) -> int:
    return _read_uvarint_payload(payload, "HELLO_ACK")


def encode_chunk(seq: int, partial_blob: bytes) -> bytes:
    out = bytearray()
    write_uvarint(out, seq)
    out.extend(partial_blob)
    return encode_frame(CHUNK, bytes(out))


def parse_chunk(payload: bytes) -> tuple[int, bytes]:
    """``(seq, partial_blob)``; the blob is *not* parsed here — the
    aggregation layer owns :meth:`ShardPartial.from_bytes` so a corrupt
    partial fails inside the tenant's fold, not the shared reader."""
    try:
        r = Reader(payload)
        seq = r.read_uvarint()
        return seq, r.read_bytes(r.remaining())
    except TraceFormatError:
        raise
    except (IndexError, ValueError, struct.error) as e:
        raise FrameFormatError(
            f"malformed CHUNK payload ({type(e).__name__}: {e})") from e


def encode_ack(seq: int) -> bytes:
    out = bytearray()
    write_uvarint(out, seq)
    return encode_frame(ACK, bytes(out))


def parse_ack(payload: bytes) -> int:
    return _read_uvarint_payload(payload, "ACK")


def encode_fin(per_rank_calls: list[int]) -> bytes:
    out = bytearray()
    write_value(out, tuple(int(c) for c in per_rank_calls))
    return encode_frame(FIN, bytes(out))


def parse_fin(payload: bytes) -> list[int]:
    val = _read_tuple(payload, "FIN")
    calls = []
    for c in val:
        if isinstance(c, bool) or not isinstance(c, int) or c < 0:
            raise FrameFormatError(
                f"FIN call count {c!r} is not a non-negative int")
        calls.append(c)
    return calls


def encode_result(trace_blob: bytes) -> bytes:
    # trace blobs carry their own per-section CRCs; the frame adds one
    # more over the whole payload, which is fine and cheap
    return encode_frame(RESULT, trace_blob)


def encode_error(code: str, detail: str) -> bytes:
    out = bytearray()
    write_value(out, (code, detail))
    return encode_frame(ERROR, bytes(out))


def parse_error(payload: bytes) -> tuple[str, str]:
    val = _read_tuple(payload, "ERROR", 2)
    if not all(isinstance(v, str) for v in val):
        raise FrameFormatError("malformed ERROR payload")
    return val[0], val[1]


def _read_tuple(payload: bytes, kind: str,
                length: Optional[int] = None) -> tuple:
    try:
        r = Reader(payload)
        val = read_value(r)
        if not r.exhausted:
            raise FrameFormatError(
                f"trailing bytes after {kind} payload value")
    except TraceFormatError:
        raise
    except (IndexError, KeyError, ValueError, OverflowError,
            RecursionError, struct.error) as e:
        raise FrameFormatError(
            f"malformed {kind} payload ({type(e).__name__}: {e})") from e
    if not isinstance(val, tuple) or \
            (length is not None and len(val) != length):
        raise FrameFormatError(f"malformed {kind} payload structure")
    return val


def _read_uvarint_payload(payload: bytes, kind: str) -> int:
    try:
        r = Reader(payload)
        n = r.read_uvarint()
        if not r.exhausted:
            raise FrameFormatError(
                f"trailing bytes after {kind} sequence number")
        return n
    except TraceFormatError:
        raise
    except (IndexError, ValueError, struct.error) as e:
        raise FrameFormatError(
            f"malformed {kind} payload ({type(e).__name__}: {e})") from e
