"""Store maintenance — layer 4 (GC, retention, compaction).

The GC is mark-sweep with an audit: it recomputes every object's
expected refcount from the manifests that actually reference it, checks
the sidecar counts *conserve* (stored == computed for every object — the
property the ``store-smoke`` CI job asserts), then removes blobs no
manifest references.  ``repair=True`` additionally rewrites any
mismatched sidecar to the computed truth, so a store damaged by an
interrupted delete heals on the next sweep.

Retention is policy-driven pruning above the GC: keep the last N runs
per workload (the golden run is always kept), delete the rest, then
sweep.  Compaction is hygiene: stranded temp files and empty shard
directories from interrupted puts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .repository import TraceStore


@dataclass
class GCReport:
    """What one :func:`gc` sweep did and whether refcounts conserve."""

    objects_before: int = 0
    removed_objects: int = 0
    removed_bytes: int = 0
    #: refcount audit: every (digest, stored, computed) disagreement
    mismatches: list[tuple[str, int, int]] = field(default_factory=list)
    repaired: int = 0
    pruned_entries: int = 0

    @property
    def conserved(self) -> bool:
        """True when every sidecar refcount equals the count computed
        from the manifests (after repair, if it ran)."""
        return self.repaired == len(self.mismatches)

    def as_dict(self) -> dict:
        return {"objects_before": self.objects_before,
                "removed_objects": self.removed_objects,
                "removed_bytes": self.removed_bytes,
                "refcounts_conserved": self.conserved,
                "mismatches": [
                    {"digest": d, "stored": s, "computed": c}
                    for d, s, c in self.mismatches],
                "repaired": self.repaired,
                "pruned_entries": self.pruned_entries}

    def summary(self) -> str:
        status = "conserved" if self.conserved else "MISMATCHED"
        return (f"gc: removed {self.removed_objects} of "
                f"{self.objects_before} objects "
                f"({self.removed_bytes} bytes), refcounts {status}"
                + (f" ({len(self.mismatches)} mismatches"
                   + (f", {self.repaired} repaired)" if self.repaired
                      else ")")
                   if self.mismatches else ""))


@dataclass
class RetentionReport:
    """Runs dropped by a retention pass (before its GC sweep)."""

    deleted_runs: list[str] = field(default_factory=list)
    kept_runs: int = 0
    gc: Optional[GCReport] = None

    def as_dict(self) -> dict:
        return {"deleted_runs": list(self.deleted_runs),
                "kept_runs": self.kept_runs,
                "gc": self.gc.as_dict() if self.gc else None}


def compute_refcounts(store: TraceStore) -> dict[str, int]:
    """Ground truth: every referenced digest's count, from the
    manifests themselves."""
    expected: dict[str, int] = {}
    for run_id in store.index.all_runs():
        for digest in store.read_record(run_id).digests():
            expected[digest] = expected.get(digest, 0) + 1
    return expected


def gc(store: TraceStore, *, repair: bool = False) -> GCReport:
    """Mark-sweep unreferenced blobs; audit refcount conservation."""
    report = GCReport()
    expected = compute_refcounts(store)
    for digest in list(store.objects.iter_digests()):
        report.objects_before += 1
        stored = store.objects.refcount(digest)
        computed = expected.get(digest, 0)
        if stored != computed:
            report.mismatches.append((digest, stored, computed))
            if repair:
                store.objects.set_refcount(digest, computed)
                report.repaired += 1
        if computed == 0:
            report.removed_bytes += store.objects.delete(digest)
            report.removed_objects += 1
    report.pruned_entries = store.objects.prune()
    if store.obs.enabled:
        store.obs.counter("gc_runs").inc()
        store.obs.counter("gc_removed_objects").inc(
            report.removed_objects)
        store.obs.counter("gc_removed_bytes").inc(report.removed_bytes)
    return report


def apply_retention(store: TraceStore, keep_last: int, *,
                    workload: Optional[str] = None,
                    sweep: bool = True) -> RetentionReport:
    """Keep each workload's newest *keep_last* runs (golden always
    kept), delete the rest, then GC unless ``sweep=False``."""
    if keep_last < 1:
        raise ValueError(f"keep_last must be >= 1, got {keep_last}")
    report = RetentionReport()
    workloads = [workload] if workload else store.index.workloads()
    for w in workloads:
        runs = store.index.runs(w)
        golden = store.index.golden(w)
        keep = set(runs[-keep_last:])
        if golden:
            keep.add(golden)
        for rid in runs:
            if rid in keep:
                report.kept_runs += 1
            else:
                store.delete_run(rid)
                report.deleted_runs.append(rid)
    if sweep:
        report.gc = gc(store)
    return report
