"""The trace store facade — layer 3 (``repro.store.TraceStore``).

Pilgrim's core insight is that traces are grammars, and grammars from
successive runs of the same application are mostly identical — so
fleet-scale storage should be *sublinear* in run count.  This layer
makes that operational:

* ``put`` splits a serialized trace into its v2 sections (each already
  CRC-framed and deterministically encoded), stores every unique
  section blob once in the CAS, and records the run as a manifest of
  hash references delta-encoded against the prior run of the same
  workload;
* ``get`` reassembles the byte-identical blob (header + section blobs,
  integrity re-verified on read);
* ``diff`` / ``drifted`` answer the fleet question — *which runs
  drifted from the golden pattern?* — at section granularity without
  decoding anything;
* ``dedup_stats`` reports how sublinear the storage actually is.

Obs counters (``store.hits`` / ``store.misses`` /
``store.bytes_deduped`` and friends) ride an injected
:class:`~repro.obs.MetricsRegistry`; everything defaults to the
null registry, so an uninstrumented store costs nothing.

Imports :mod:`repro.core`, :mod:`repro.obs`, and the store layers below
it (objects, manifest, index) — never :mod:`repro.ingest`: the ingest
aggregator persists *into* this store, so the store must sit below it
(DESIGN.md §8; pinned by the layering test in ``tests/test_store.py``).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import StoreFormatError
from ..core.packing import Reader
from ..core.trace_format import HEADER_FIXED, split_sections
from ..obs import NULL_REGISTRY
from .index import RunIndex
from .manifest import (RunRecord, SectionRef, resolve_ref, validate_name)
from .objects import ObjectStore

#: default store root (overridable per call site / --root / REPRO_STORE)
DEFAULT_ROOT = ".repro-store"


@dataclass
class PutResult:
    """What :meth:`TraceStore.put` returns."""

    record: RunRecord
    #: sections whose blobs this put actually wrote
    created: int = 0
    #: sections resolved by reference to blobs that already existed
    reused: int = 0

    @property
    def run_id(self) -> str:
        return self.record.run_id

    def summary(self) -> str:
        r = self.record
        return (f"{r.run_id} {r.workload}: {len(r.sections)} sections, "
                f"{r.total_bytes} bytes logical, {r.new_bytes} new / "
                f"{r.reused_bytes} by reference "
                f"({100 * r.reused_fraction:.1f}% deduplicated)")


@dataclass(frozen=True)
class DiffEntry:
    """One section's fate between two runs."""

    name: str
    kind: str               # "same" | "changed" | "added" | "removed"
    a_size: int = 0
    b_size: int = 0

    def as_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "a_size": self.a_size, "b_size": self.b_size}


@dataclass
class StoreDiff:
    """Section-level diff of two stored runs."""

    run_a: str
    run_b: str
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def drifted(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.kind != "same"]

    @property
    def identical(self) -> bool:
        return not self.drifted

    def as_dict(self) -> dict:
        return {"run_a": self.run_a, "run_b": self.run_b,
                "identical": self.identical,
                "drifted_sections": len(self.drifted),
                "sections": [e.as_dict() for e in self.entries]}

    def summary(self) -> str:
        if self.identical:
            return (f"{self.run_a} vs {self.run_b}: identical "
                    f"({len(self.entries)} sections)")
        names = ", ".join(e.name for e in self.drifted)
        return (f"{self.run_a} vs {self.run_b}: {len(self.drifted)} of "
                f"{len(self.entries)} sections drifted ({names})")


@dataclass
class DedupStats:
    """How sublinear the store actually is for a workload (or fleet)."""

    workload: Optional[str]
    runs: int = 0
    #: sum of every run's reassembled size — what N traces would cost
    #: without the store
    logical_bytes: int = 0
    #: unique section bytes actually on disk for those runs
    stored_bytes: int = 0

    @property
    def ratio(self) -> float:
        """logical / stored — 2.0 means two runs for the price of one."""
        if not self.stored_bytes:
            return 1.0 if not self.logical_bytes else float("inf")
        return self.logical_bytes / self.stored_bytes

    def as_dict(self) -> dict:
        return {"workload": self.workload, "runs": self.runs,
                "logical_bytes": self.logical_bytes,
                "stored_bytes": self.stored_bytes,
                "dedup_ratio": round(self.ratio, 4)}


class TraceStore:
    """Content-addressed cross-run trace repository."""

    def __init__(self, root: str = DEFAULT_ROOT, *, metrics=None):
        self.root = root
        self.objects = ObjectStore(root)
        self.index = RunIndex(root)
        self.runs_dir = os.path.join(root, "runs")
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.obs = registry.scope("store")

    # -- manifests -----------------------------------------------------------------

    def _manifest_path(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, f"{run_id}.mft")

    def read_record(self, run_id: str) -> RunRecord:
        try:
            with open(self._manifest_path(run_id), "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            raise StoreFormatError(
                f"no manifest for run {run_id} in {self.root}") from None
        record = RunRecord.from_bytes(data)
        if record.run_id != run_id:
            raise StoreFormatError(
                f"manifest {run_id}.mft declares run id "
                f"{record.run_id}")
        return record

    def _write_record(self, record: RunRecord) -> None:
        os.makedirs(self.runs_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-mft-", dir=self.runs_dir)
        with os.fdopen(fd, "wb") as fh:
            fh.write(record.to_bytes())
        os.replace(tmp, self._manifest_path(record.run_id))

    # -- put / get -----------------------------------------------------------------

    def put(self, blob: bytes, workload: str, *,
            tenant: str = "default") -> PutResult:
        """Store one serialized trace as a run of *workload*.

        Splits the blob into its v2 sections, stores each unique
        section once, and writes a manifest delta-encoded against the
        workload's prior run.  Returns the :class:`PutResult` with the
        dedup accounting the CI smoke job asserts on.
        """
        validate_name(workload, "workload")
        validate_name(tenant, "tenant")
        header, sections = split_sections(blob)
        parent = self.index.latest(workload) or ""
        refs: list[SectionRef] = []
        created = reused = 0
        created_this_put: set[str] = set()
        for name, sec in sections:
            digest, was_created = self.objects.put(sec)
            if was_created:
                created_this_put.add(digest)
            ref_reused = digest not in created_this_put
            self.objects.incref(digest)
            refs.append(SectionRef(name=name, digest=digest,
                                   size=len(sec), reused=ref_reused))
            if ref_reused:
                reused += 1
            else:
                created += 1
        run_id = self.index.issue_run_id()
        record = RunRecord(
            run_id=run_id, workload=workload, tenant=tenant,
            nprocs=Reader(blob, HEADER_FIXED).read_uvarint(),
            created_ms=int(time.time() * 1000), parent=parent,
            header=header, sections=refs)
        self._write_record(record)
        self.index.append(workload, run_id)
        self.index.save()
        if self.obs.enabled:
            self.obs.counter("puts").inc()
            self.obs.counter("hits").inc(reused)
            self.obs.counter("misses").inc(created)
            self.obs.counter("bytes_deduped").inc(record.reused_bytes)
            self.obs.counter("bytes_written").inc(record.new_bytes)
        return PutResult(record=record, created=created, reused=reused)

    def get(self, ref: str, *, verify: bool = True) -> bytes:
        """Reassemble a run's byte-identical trace blob.

        *ref* is a run id, ``workload@latest``, or ``workload@golden``.
        Every section blob is integrity re-verified against its content
        address unless ``verify=False``.
        """
        record = self.read_record(self.resolve(ref))
        parts = [record.header]
        for sec in record.sections:
            parts.append(self.objects.get(sec.digest, verify=verify))
        if self.obs.enabled:
            self.obs.counter("gets").inc()
        return b"".join(parts)

    def resolve(self, ref: str) -> str:
        """A run id from any accepted reference form."""
        run_id, selector = resolve_ref(ref)
        if run_id is not None:
            return run_id
        workload, _, which = selector.partition("@")
        got = (self.index.latest(workload) if which == "latest"
               else self.index.golden(workload))
        if got is None:
            raise StoreFormatError(
                f"no {which} run for workload {workload!r}")
        return got

    # -- lineage management ----------------------------------------------------------

    def delete_run(self, run_id: str) -> RunRecord:
        """Drop a run: decref its sections, remove its manifest, unlink
        it from the lineage.  Blobs stay until :func:`gc` sweeps them."""
        record = self.read_record(run_id)
        workload = self.index.workload_of(run_id)
        if workload is None:
            raise StoreFormatError(
                f"run {run_id} has a manifest but no lineage entry")
        for sec in record.sections:
            self.objects.decref(sec.digest)
        os.unlink(self._manifest_path(run_id))
        self.index.remove(workload, run_id)
        self.index.save()
        if self.obs.enabled:
            self.obs.counter("deletes").inc()
        return record

    def pin_golden(self, run_id: str) -> str:
        """Pin *run_id* as its workload's golden run; returns the
        workload key."""
        workload = self.index.workload_of(run_id)
        if workload is None:
            raise StoreFormatError(f"unknown run {run_id}")
        self.index.pin_golden(workload, run_id)
        self.index.save()
        return workload

    # -- queries -------------------------------------------------------------------

    def ls(self, workload: Optional[str] = None) -> list[RunRecord]:
        workloads = [workload] if workload else self.index.workloads()
        return [self.read_record(rid)
                for w in workloads for rid in self.index.runs(w)]

    def diff(self, ref_a: str, ref_b: str) -> StoreDiff:
        """Section-level structural diff of two runs (no decode)."""
        a = self.read_record(self.resolve(ref_a))
        b = self.read_record(self.resolve(ref_b))
        a_secs = {s.name: s for s in a.sections}
        b_secs = {s.name: s for s in b.sections}
        entries: list[DiffEntry] = []
        for s in a.sections:
            other = b_secs.get(s.name)
            if other is None:
                entries.append(DiffEntry(s.name, "removed",
                                         a_size=s.size))
            elif other.digest == s.digest:
                entries.append(DiffEntry(s.name, "same", a_size=s.size,
                                         b_size=other.size))
            else:
                entries.append(DiffEntry(s.name, "changed",
                                         a_size=s.size,
                                         b_size=other.size))
        for s in b.sections:
            if s.name not in a_secs:
                entries.append(DiffEntry(s.name, "added",
                                         b_size=s.size))
        return StoreDiff(run_a=a.run_id, run_b=b.run_id, entries=entries)

    def drifted(self, workload: str) -> list[tuple[str, StoreDiff]]:
        """Every run of *workload* diffed against its golden run —
        the fleet query.  Raises when no golden run is pinned."""
        golden = self.index.golden(workload)
        if golden is None:
            raise StoreFormatError(
                f"no golden run pinned for workload {workload!r} "
                f"(pin one with: repro store pin RUN_ID)")
        out = []
        for rid in self.index.runs(workload):
            if rid == golden:
                continue
            out.append((rid, self.diff(golden, rid)))
        return out

    def dedup_stats(self, workload: Optional[str] = None) -> DedupStats:
        records = self.ls(workload)
        stats = DedupStats(workload=workload, runs=len(records))
        seen: set[str] = set()
        for rec in records:
            stats.logical_bytes += rec.total_bytes
            for sec in rec.sections:
                if sec.digest not in seen:
                    seen.add(sec.digest)
                    stats.stored_bytes += sec.size
        return stats
