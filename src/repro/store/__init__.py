"""``repro.store`` — the content-addressed cross-run trace repository.

Traces are grammars, and grammars from successive runs of the same
application are mostly identical (the Pilgrim insight); this package
turns that into *sublinear* fleet storage.  A serialized trace is split
into its format-v2 sections, each unique section blob is stored once
under its SHA-256, and a run becomes a manifest of hash references
delta-encoded against the workload's prior run.

Strictly layered, upward-only (pinned by ``tests/test_store.py``)::

    (4) maintenance.py   gc (mark-sweep + refcount audit), retention,
        fuzz.py          compaction; the manifest corruption fuzzer
             │
             ▼
    (3) repository.py    TraceStore: put/get/ls/diff/drifted/
                         dedup_stats, obs counters
             │
             ▼
    (2) manifest.py      RunRecord binary manifests + SectionRef;
        index.py         RunIndex lineage + golden pinning
             │
             ▼
    (1) objects.py       sharded on-disk CAS: atomic writes, refcount
                         sidecars, integrity re-verification on read
             │
             ▼
        repro.core       (split_sections, section writers, errors)

The ingest service persists folded tenants *into* this store
(``repro serve --store DIR``), so the whole package sits below
:mod:`repro.ingest` and never imports it.
"""

import sys
import types
from typing import Any, Optional

from .index import RunIndex
from .maintenance import (GCReport, RetentionReport, apply_retention,
                          compute_refcounts, gc)
from .manifest import RunRecord, SectionRef, manifest_spans
from .objects import ObjectStore, hash_blob
from .repository import (DEFAULT_ROOT, DedupStats, DiffEntry, PutResult,
                         StoreDiff, TraceStore)

__all__ = [
    "DEFAULT_ROOT", "DedupStats", "DiffEntry", "GCReport", "ObjectStore",
    "PutResult", "RetentionReport", "RunIndex", "RunRecord", "SectionRef",
    "StoreDiff", "TraceStore", "apply_retention", "compute_refcounts",
    "gc", "hash_blob", "manifest_spans",
]


class _StoreFacadeModule(types.ModuleType):
    """Make ``repro.store`` callable: the package doubles as the facade
    verb (``repro.store(root)``, see :func:`repro.api.store`), so
    importing the subpackage can never shadow the public API — the
    same arrangement as ``repro.bench``."""

    def __call__(self, root: Optional[str] = None, *,
                 metrics: Any = None) -> TraceStore:
        from ..api import store as _store
        return _store(root, metrics=metrics)


sys.modules[__name__].__class__ = _StoreFacadeModule
