"""Content-addressed object store — layer 1 (the on-disk CAS).

Every unique blob lives exactly once under its SHA-256 address::

    <root>/objects/<aa>/<bb...64 hex...>        the blob
    <root>/objects/<aa>/<bb...64 hex...>.refs   ascii refcount sidecar

Guarantees:

* **Atomic writes** — blobs land via ``write to tmp + os.replace``, so
  a crashed ``put`` never leaves a half-written object under a valid
  address (readers either see the whole blob or nothing).
* **Idempotent put** — storing bytes already present is a metadata-only
  operation (the dedup *hit* the obs counters track).
* **Integrity re-verification on read** — ``get`` re-hashes the bytes
  and raises :class:`~repro.core.errors.StoreIntegrityError` when the
  disk no longer matches the address; a missing object raises
  :class:`~repro.core.errors.MissingObjectError`, never a bare
  ``FileNotFoundError``.
* **Refcounts** — one count per manifest reference, kept in sidecar
  files next to each blob so the GC can both trust and audit them
  (mark-sweep over the manifests cross-checks the sidecars; see
  :mod:`repro.store.maintenance`).

Imports only :mod:`repro.core` — the bottom of the store's upward-only
dependency chain (pinned by ``tests/test_store.py``).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from typing import Iterator

from ..core.errors import (MissingObjectError, StoreFormatError,
                           StoreIntegrityError)

#: length of a hex SHA-256 digest (the only valid address form)
DIGEST_HEX = 64


def hash_blob(blob: bytes) -> str:
    """The content address of *blob* (hex SHA-256)."""
    return hashlib.sha256(blob).hexdigest()


def validate_digest(digest: str) -> str:
    """Reject anything that is not a full lowercase hex SHA-256 — a
    corrupt manifest must fail structurally, not resolve to a bogus
    path."""
    if (not isinstance(digest, str) or len(digest) != DIGEST_HEX
            or any(c not in "0123456789abcdef" for c in digest)):
        raise StoreFormatError(
            f"invalid object address {digest!r} (want {DIGEST_HEX} "
            f"lowercase hex chars)")
    return digest


@dataclass
class ObjectStats:
    """What :meth:`ObjectStore.stats` reports."""

    objects: int = 0
    bytes: int = 0
    refs: int = 0


class ObjectStore:
    """Sharded on-disk CAS with refcount sidecars."""

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")

    # -- paths ---------------------------------------------------------------------

    def path_for(self, digest: str) -> str:
        """The on-disk path a digest's blob lives at (for tooling and
        tests; the file may not exist)."""
        return self._path(digest)

    def _path(self, digest: str) -> str:
        validate_digest(digest)
        return os.path.join(self.objects_dir, digest[:2], digest[2:])

    def _refs_path(self, digest: str) -> str:
        return self._path(digest) + ".refs"

    # -- blobs ---------------------------------------------------------------------

    def put(self, blob: bytes) -> tuple[str, bool]:
        """Store *blob* under its content address; returns
        ``(digest, created)`` where *created* is False on a dedup hit.
        The write is atomic and never observed half-done."""
        digest = hash_blob(blob)
        path = self._path(digest)
        if os.path.exists(path):
            return digest, False
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-put-",
                                   dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return digest, True

    def get(self, digest: str, *, verify: bool = True) -> bytes:
        """Read the blob at *digest*, re-verifying its integrity by
        default (a store that lies about content addresses is worse
        than no store)."""
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            raise MissingObjectError(digest) from None
        if verify:
            computed = hash_blob(blob)
            if computed != digest:
                raise StoreIntegrityError(digest, computed)
        return blob

    def contains(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def size(self, digest: str) -> int:
        try:
            return os.path.getsize(self._path(digest))
        except FileNotFoundError:
            raise MissingObjectError(digest) from None

    def delete(self, digest: str) -> int:
        """Remove a blob and its refcount sidecar; returns the freed
        byte count (0 when already absent — delete is idempotent so a
        GC interrupted mid-sweep can simply run again)."""
        path = self._path(digest)
        try:
            n = os.path.getsize(path)
            os.unlink(path)
        except FileNotFoundError:
            n = 0
        try:
            os.unlink(path + ".refs")
        except FileNotFoundError:
            pass
        return n

    def iter_digests(self) -> Iterator[str]:
        """Every stored content address (filesystem order is not
        meaningful; callers sort when determinism matters)."""
        if not os.path.isdir(self.objects_dir):
            return
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".refs") or name.startswith(".tmp-"):
                    continue
                if len(shard + name) == DIGEST_HEX:
                    yield shard + name

    # -- refcounts -----------------------------------------------------------------

    def refcount(self, digest: str) -> int:
        """The sidecar refcount (0 when the sidecar is absent)."""
        try:
            with open(self._refs_path(digest)) as fh:
                raw = fh.read().strip()
        except FileNotFoundError:
            return 0
        try:
            count = int(raw)
        except ValueError:
            raise StoreFormatError(
                f"refcount sidecar for {digest[:12]}… holds {raw!r}, "
                f"not an integer") from None
        if count < 0:
            raise StoreFormatError(
                f"refcount sidecar for {digest[:12]}… is negative "
                f"({count})")
        return count

    def _write_refcount(self, digest: str, count: int) -> None:
        path = self._refs_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-ref-",
                                   dir=os.path.dirname(path))
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{count}\n")
        os.replace(tmp, path)

    def incref(self, digest: str, by: int = 1) -> int:
        if not self.contains(digest):
            raise MissingObjectError(digest, "cannot reference")
        count = self.refcount(digest) + by
        self._write_refcount(digest, count)
        return count

    def decref(self, digest: str, by: int = 1) -> int:
        count = max(0, self.refcount(digest) - by)
        if self.contains(digest):
            self._write_refcount(digest, count)
        return count

    def set_refcount(self, digest: str, count: int) -> None:
        """Force a refcount (the GC's repair path after an audit)."""
        if count < 0:
            raise StoreFormatError(f"refcount {count} < 0")
        self._write_refcount(digest, count)

    # -- stats / hygiene -----------------------------------------------------------

    def stats(self) -> ObjectStats:
        out = ObjectStats()
        for digest in self.iter_digests():
            out.objects += 1
            out.bytes += os.path.getsize(self._path(digest))
            out.refs += self.refcount(digest)
        return out

    def prune(self) -> int:
        """Remove stranded temp files and empty shard dirs (debris from
        interrupted puts); returns how many entries were cleaned."""
        cleaned = 0
        if not os.path.isdir(self.objects_dir):
            return 0
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.startswith(".tmp-"):
                    os.unlink(os.path.join(shard_dir, name))
                    cleaned += 1
            if not os.listdir(shard_dir):
                os.rmdir(shard_dir)
                cleaned += 1
        return cleaned
