"""Run manifests — layer 2 (what the store knows about one run).

A run is *not* stored as a trace blob.  It is stored as a manifest: the
few header bytes inline, plus an ordered list of content-hash references
into the object store, one per trace-format-v2 section.  Reassembly is
pure concatenation (``header + section blobs``), so a round trip through
the store is byte-identical by construction — and two runs that share
sections share storage.

The on-disk form reuses the v2 section writers (CRC-checked, length
prefixed) so the corruption fuzzer attacks manifests with the exact
machinery it already aims at traces and ingest frames
(:func:`manifest_spans` feeds
:func:`~repro.core.fuzz.iter_blob_mutations`)::

    magic  b"PRUN"            4 bytes
    version                   1 byte
    -- one section (emit_section, uncompressed) --
    payload = write_value((run_id, workload, tenant, nprocs,
                           created_ms, parent, header_hex,
                           ((name, digest, size, reused), ...)))

Every read path raises a structured
:class:`~repro.core.errors.StoreFormatError` — a corrupt hash ref must
never surface as a ``KeyError`` or ``FileNotFoundError``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import StoreFormatError, TraceFormatError
from ..core.packing import Reader, read_value, write_value
from ..core.trace_format import emit_section, take_section
from .objects import validate_digest

MANIFEST_MAGIC = b"PRUN"
MANIFEST_VERSION = 1

#: run ids are index-issued ("r000042"); workload keys double as path
#: components, so both are validated on every read
_RUN_ID_RE = re.compile(r"^r[0-9]{6,}$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


def validate_run_id(run_id: str) -> str:
    if not isinstance(run_id, str) or not _RUN_ID_RE.match(run_id):
        raise StoreFormatError(f"invalid run id {run_id!r} "
                               f"(want rNNNNNN)")
    return run_id


def validate_name(name: str, what: str) -> str:
    """Workload / tenant keys become file-path components — validated
    so a hostile manifest cannot traverse outside the store root."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise StoreFormatError(
            f"invalid {what} {name!r} (want alphanumeric, dot, dash, "
            f"underscore; max 100 chars)")
    return name


@dataclass(frozen=True)
class SectionRef:
    """One section of one run: a named reference into the CAS."""

    name: str
    digest: str
    size: int
    #: True when the blob already existed at put time — the section was
    #: resolved *by reference* instead of stored again
    reused: bool

    def as_dict(self) -> dict:
        return {"name": self.name, "digest": self.digest,
                "size": self.size, "reused": self.reused}


@dataclass
class RunRecord:
    """One stored run: identity, lineage, and its section refs."""

    run_id: str
    workload: str
    tenant: str
    nprocs: int
    created_ms: int
    #: the prior run of the same workload this run was delta-encoded
    #: against (empty string for a workload's first run)
    parent: str
    #: the trace's preamble (magic/version/flags/nprocs), stored inline
    header: bytes
    sections: list[SectionRef] = field(default_factory=list)

    # -- derived -------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Logical trace size (what ``get`` reassembles)."""
        return len(self.header) + sum(s.size for s in self.sections)

    @property
    def reused_bytes(self) -> int:
        return sum(s.size for s in self.sections if s.reused)

    @property
    def new_bytes(self) -> int:
        return sum(s.size for s in self.sections if not s.reused)

    @property
    def reused_fraction(self) -> float:
        """Fraction of section bytes resolved by reference to blobs
        that already existed (the acceptance metric: an identical
        re-run resolves ~100%)."""
        section_bytes = sum(s.size for s in self.sections)
        if not section_bytes:
            return 0.0
        return self.reused_bytes / section_bytes

    def digests(self) -> list[str]:
        return [s.digest for s in self.sections]

    def as_dict(self) -> dict:
        return {
            "run_id": self.run_id, "workload": self.workload,
            "tenant": self.tenant, "nprocs": self.nprocs,
            "created_ms": self.created_ms, "parent": self.parent or None,
            "total_bytes": self.total_bytes,
            "new_bytes": self.new_bytes,
            "reused_bytes": self.reused_bytes,
            "reused_fraction": round(self.reused_fraction, 4),
            "sections": [s.as_dict() for s in self.sections],
        }

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(MANIFEST_MAGIC)
        out.append(MANIFEST_VERSION)
        payload = bytearray()
        write_value(payload, (
            self.run_id, self.workload, self.tenant, self.nprocs,
            self.created_ms, self.parent, self.header.hex(),
            tuple((s.name, s.digest, s.size, s.reused)
                  for s in self.sections)))
        emit_section(out, bytes(payload), compress=False)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RunRecord":
        if len(data) < 5:
            raise StoreFormatError(
                f"manifest of {len(data)} bytes is shorter than its "
                f"5-byte header")
        if data[:4] != MANIFEST_MAGIC:
            raise StoreFormatError("not a run manifest (bad magic)")
        if data[4] != MANIFEST_VERSION:
            raise StoreFormatError(
                f"unsupported manifest version {data[4]} (this reader "
                f"understands {MANIFEST_VERSION})")
        try:
            r = Reader(data, 5)
            body = read_value(take_section(r, False, "manifest"))
            if not r.exhausted:
                raise StoreFormatError(
                    f"{len(data) - r.pos} trailing bytes after the "
                    f"manifest section")
            return cls._from_tuple(body)
        except StoreFormatError:
            raise
        except TraceFormatError as e:
            # CRC/truncation failures from the shared section reader
            raise StoreFormatError(f"corrupt manifest ({e})") from e
        except (IndexError, KeyError, ValueError, OverflowError,
                TypeError, MemoryError) as e:
            # safety net: the store's contract is structured errors only
            raise StoreFormatError(
                f"malformed manifest ({type(e).__name__}: {e})") from e

    @classmethod
    def _from_tuple(cls, body) -> "RunRecord":
        if not isinstance(body, tuple) or len(body) != 8:
            raise StoreFormatError(
                f"manifest body is not an 8-tuple (got "
                f"{type(body).__name__} of {len(body) if isinstance(body, tuple) else '?'})")
        (run_id, workload, tenant, nprocs, created_ms, parent,
         header_hex, sections) = body
        validate_run_id(run_id)
        validate_name(workload, "workload")
        validate_name(tenant, "tenant")
        if isinstance(nprocs, bool) or not isinstance(nprocs, int) \
                or nprocs < 1:
            raise StoreFormatError(f"manifest nprocs {nprocs!r} invalid")
        if isinstance(created_ms, bool) or not isinstance(created_ms, int) \
                or created_ms < 0:
            raise StoreFormatError(
                f"manifest created_ms {created_ms!r} invalid")
        if parent != "":
            validate_run_id(parent)
        if not isinstance(header_hex, str):
            raise StoreFormatError("manifest header is not a hex string")
        try:
            header = bytes.fromhex(header_hex)
        except ValueError:
            raise StoreFormatError(
                f"manifest header {header_hex!r} is not hex") from None
        if not isinstance(sections, tuple) or not sections:
            raise StoreFormatError("manifest holds no section refs")
        refs = []
        for entry in sections:
            if not isinstance(entry, tuple) or len(entry) != 4:
                raise StoreFormatError(
                    f"malformed section ref {entry!r}")
            name, digest, size, reused = entry
            validate_name(name, "section name")
            validate_digest(digest)
            if isinstance(size, bool) or not isinstance(size, int) \
                    or size < 0:
                raise StoreFormatError(
                    f"section {name!r} size {size!r} invalid")
            if not isinstance(reused, bool):
                raise StoreFormatError(
                    f"section {name!r} reused flag {reused!r} invalid")
            refs.append(SectionRef(name, digest, size, reused))
        return cls(run_id=run_id, workload=workload, tenant=tenant,
                   nprocs=nprocs, created_ms=created_ms, parent=parent,
                   header=header, sections=refs)


def manifest_spans(data: bytes) -> dict[str, tuple[int, int]]:
    """Byte spans of every region in a valid manifest blob — the
    boundary targets :func:`~repro.core.fuzz.iter_blob_mutations` aims
    at (the same contract as
    :func:`~repro.core.trace_format.section_spans`)."""
    if len(data) < 5 or data[:4] != MANIFEST_MAGIC:
        raise StoreFormatError("not a run manifest (bad magic)")
    spans: dict[str, tuple[int, int]] = {
        "magic": (0, 4), "version": (4, 5)}
    r = Reader(data, 5)
    start = r.pos
    n = r.read_uvarint()
    spans["body.len"] = (start, r.pos)
    spans["body.crc"] = (r.pos, r.pos + 4)
    r.read_bytes(4)
    spans["body.payload"] = (r.pos, r.pos + n)
    return spans


def resolve_ref(ref: str) -> tuple[Optional[str], Optional[str]]:
    """Parse a CLI run reference: a bare run id (``r000001``) returns
    ``(run_id, None)``; ``workload@latest`` / ``workload@golden``
    return ``(None, ...)`` handled by the store."""
    if _RUN_ID_RE.match(ref):
        return ref, None
    if "@" in ref:
        workload, _, which = ref.partition("@")
        validate_name(workload, "workload")
        if which not in ("latest", "golden"):
            raise StoreFormatError(
                f"unknown run selector {which!r} (want latest|golden)")
        return None, ref
    raise StoreFormatError(
        f"cannot resolve {ref!r}: want a run id (rNNNNNN) or "
        f"workload@latest / workload@golden")
