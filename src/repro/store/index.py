"""Run index — layer 2 (workload → run lineage, golden pinning).

One small binary file (``<root>/index.bin``) maps each workload key to
its ordered run lineage plus an optional *golden* run — the pinned
reference pattern drift queries compare against.  A global counter
issues run ids, so ids are unique across workloads and ``repro store
get r000042`` needs no workload qualifier.

The file reuses the v2 section writers (CRC + length prefix) and is
rewritten atomically on every mutation — the index is tiny (ids only;
the heavy state lives in manifests and the CAS), so full rewrite is
cheaper than being clever.  A corrupt index raises a structured
:class:`~repro.core.errors.StoreFormatError`, never a bare parse error.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from ..core.errors import StoreFormatError, TraceFormatError
from ..core.packing import Reader, read_value, write_value
from ..core.trace_format import emit_section, take_section
from .manifest import validate_name, validate_run_id

INDEX_MAGIC = b"PIDX"
INDEX_VERSION = 1


class WorkloadLineage:
    """One workload's ordered runs + golden pin."""

    __slots__ = ("runs", "golden")

    def __init__(self, runs: Optional[list[str]] = None,
                 golden: str = ""):
        self.runs: list[str] = list(runs or [])
        self.golden = golden


class RunIndex:
    """The store's run registry, persisted as ``index.bin``."""

    def __init__(self, root: str):
        self.root = root
        self.path = os.path.join(root, "index.bin")
        self.next_id = 1
        self.lineages: dict[str, WorkloadLineage] = {}
        self._load()

    # -- persistence ---------------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        if len(data) < 5 or data[:4] != INDEX_MAGIC:
            raise StoreFormatError(
                f"{self.path} is not a run index (bad magic)")
        if data[4] != INDEX_VERSION:
            raise StoreFormatError(
                f"unsupported index version {data[4]}")
        try:
            r = Reader(data, 5)
            body = read_value(take_section(r, False, "index"))
            if not r.exhausted:
                raise StoreFormatError(
                    f"trailing bytes after the index section")
            self._from_tuple(body)
        except StoreFormatError:
            raise
        except TraceFormatError as e:
            raise StoreFormatError(f"corrupt run index ({e})") from e
        except (IndexError, KeyError, ValueError, OverflowError,
                TypeError) as e:
            raise StoreFormatError(
                f"malformed run index ({type(e).__name__}: {e})") from e

    def _from_tuple(self, body) -> None:
        if not isinstance(body, tuple) or len(body) != 2:
            raise StoreFormatError("index body is not a 2-tuple")
        next_id, entries = body
        if isinstance(next_id, bool) or not isinstance(next_id, int) \
                or next_id < 1:
            raise StoreFormatError(f"index counter {next_id!r} invalid")
        if not isinstance(entries, tuple):
            raise StoreFormatError("index entries are not a tuple")
        lineages: dict[str, WorkloadLineage] = {}
        for entry in entries:
            if not isinstance(entry, tuple) or len(entry) != 3:
                raise StoreFormatError(f"malformed index entry {entry!r}")
            workload, golden, runs = entry
            validate_name(workload, "workload")
            if golden != "":
                validate_run_id(golden)
            if not isinstance(runs, tuple):
                raise StoreFormatError(
                    f"index runs for {workload!r} are not a tuple")
            for rid in runs:
                validate_run_id(rid)
            if golden and golden not in runs:
                raise StoreFormatError(
                    f"index pins golden {golden} for {workload!r} but "
                    f"the lineage does not contain it")
            lineages[workload] = WorkloadLineage(list(runs), golden)
        self.next_id = next_id
        self.lineages = lineages

    def save(self) -> None:
        out = bytearray(INDEX_MAGIC)
        out.append(INDEX_VERSION)
        payload = bytearray()
        write_value(payload, (
            self.next_id,
            tuple((w, lin.golden, tuple(lin.runs))
                  for w, lin in sorted(self.lineages.items()))))
        emit_section(out, bytes(payload), compress=False)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-idx-", dir=self.root)
        with os.fdopen(fd, "wb") as fh:
            fh.write(bytes(out))
        os.replace(tmp, self.path)

    # -- mutation ------------------------------------------------------------------

    def issue_run_id(self) -> str:
        rid = f"r{self.next_id:06d}"
        self.next_id += 1
        return rid

    def append(self, workload: str, run_id: str) -> None:
        lin = self.lineages.setdefault(workload, WorkloadLineage())
        lin.runs.append(run_id)

    def remove(self, workload: str, run_id: str) -> None:
        lin = self.lineages.get(workload)
        if lin is None or run_id not in lin.runs:
            raise StoreFormatError(
                f"run {run_id} is not in {workload!r}'s lineage")
        lin.runs.remove(run_id)
        if lin.golden == run_id:
            lin.golden = ""
        if not lin.runs:
            del self.lineages[workload]

    def pin_golden(self, workload: str, run_id: str) -> None:
        lin = self.lineages.get(workload)
        if lin is None or run_id not in lin.runs:
            raise StoreFormatError(
                f"cannot pin {run_id}: not a run of {workload!r}")
        lin.golden = run_id

    # -- queries -------------------------------------------------------------------

    def workloads(self) -> list[str]:
        return sorted(self.lineages)

    def runs(self, workload: str) -> list[str]:
        lin = self.lineages.get(workload)
        return list(lin.runs) if lin else []

    def all_runs(self) -> list[str]:
        return [rid for lin in self.lineages.values()
                for rid in lin.runs]

    def latest(self, workload: str) -> Optional[str]:
        lin = self.lineages.get(workload)
        return lin.runs[-1] if lin and lin.runs else None

    def golden(self, workload: str) -> Optional[str]:
        lin = self.lineages.get(workload)
        return lin.golden or None if lin else None

    def workload_of(self, run_id: str) -> Optional[str]:
        for workload, lin in self.lineages.items():
            if run_id in lin.runs:
                return workload
        return None
