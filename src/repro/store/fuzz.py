"""Store-manifest corruption fuzzer (``repro fuzz --store``).

Third victim of the shared mutation engine: the trace fuzzer attacks
trace blobs at :func:`~repro.core.trace_format.section_spans`, the
ingest fuzzer attacks frame streams at ``frame_spans``, and this module
attacks run manifests at :func:`~repro.store.manifest.manifest_spans` —
all through the same
:func:`~repro.core.fuzz.iter_blob_mutations` generator.

On top of the blind bit flips and truncations (which the manifest CRC
must catch), a *semantic corpus* re-encodes the manifest with targeted
damage the CRC cannot see — a hash ref pointing at an absent object, a
truncated digest, a negative size, a wrong-arity section tuple — and
drives the full read path (parse → resolve → reassemble) against a real
store.  The contract under attack: every failure is a structured
:class:`~repro.core.errors.StoreFormatError` subclass
(:class:`~repro.core.errors.MissingObjectError` for dangling refs),
never a bare ``KeyError`` and never a leaked ``FileNotFoundError``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.errors import TraceFormatError
from ..core.fuzz import CRASH, SILENT, FuzzOutcome, FuzzReport, \
    iter_blob_mutations
from ..core.packing import write_value
from ..core.trace_format import emit_section
from .manifest import MANIFEST_MAGIC, MANIFEST_VERSION, RunRecord, \
    manifest_spans
from .repository import TraceStore


def _reencode(body: tuple) -> bytes:
    """A structurally valid manifest blob around an arbitrary body
    tuple — the CRC is correct, so only semantic validation can catch
    the damage."""
    out = bytearray(MANIFEST_MAGIC)
    out.append(MANIFEST_VERSION)
    payload = bytearray()
    write_value(payload, body)
    emit_section(out, bytes(payload), compress=False)
    return bytes(out)


def corpus_manifest_mutations(record: RunRecord
                              ) -> Iterator[tuple[str, bytes]]:
    """Semantically targeted manifests every CRC accepts."""
    body = (record.run_id, record.workload, record.tenant,
            record.nprocs, record.created_ms, record.parent,
            record.header.hex(),
            tuple((s.name, s.digest, s.size, s.reused)
                  for s in record.sections))

    def with_sections(sections) -> bytes:
        return _reencode(body[:7] + (tuple(sections),))

    secs = list(body[7])
    name, digest, size, reused = secs[0]
    absent = ("f" if digest[0] != "f" else "0") + digest[1:]
    yield ("hash ref points at an absent object",
           with_sections([(name, absent, size, reused)] + secs[1:]))
    yield ("hash ref truncated to 12 chars",
           with_sections([(name, digest[:12], size, reused)] + secs[1:]))
    yield ("hash ref holds non-hex characters",
           with_sections([(name, "z" * 64, size, reused)] + secs[1:]))
    yield ("section size is negative",
           with_sections([(name, digest, -1, reused)] + secs[1:]))
    yield ("section ref tuple has wrong arity",
           with_sections([(name, digest, size)] + secs[1:]))
    yield ("section ref is not a tuple",
           with_sections([name] + secs[1:]))
    yield ("empty section list", with_sections([]))
    yield ("run id malformed", _reencode(("nope",) + body[1:]))
    yield ("workload escapes as a path",
           _reencode((body[0], "../evil") + body[2:]))
    yield ("nprocs is zero", _reencode(body[:3] + (0,) + body[4:]))
    yield ("nprocs is a bool", _reencode(body[:3] + (True,) + body[4:]))
    yield ("created_ms is negative",
           _reencode(body[:4] + (-5,) + body[5:]))
    yield ("parent run id malformed",
           _reencode(body[:5] + ("deadbeef",) + body[6:]))
    yield ("header is not hex",
           _reencode(body[:6] + ("xyzzy",) + body[7:]))
    yield ("body is not a tuple", _reencode(("x",)))
    yield ("body has wrong arity", _reencode(body[:5]))


def _exercise(store: TraceStore, blob: bytes) -> None:
    """The full manifest read path: parse, then resolve every hash ref
    against the live store and reassemble — lazily corrupt refs must
    not hide behind a parse that never dereferences them."""
    parsed = RunRecord.from_bytes(blob)
    parts = [parsed.header]
    for sec in parsed.sections:
        parts.append(store.objects.get(sec.digest))
    b"".join(parts)


def run_store_fuzz(store: TraceStore, run_id: str, *, seed: int = 0,
                   n_random: int = 400,
                   record: Optional[RunRecord] = None) -> FuzzReport:
    """Attack one stored run's manifest; every mutation must raise a
    structured :class:`TraceFormatError` subclass or (for mutations
    that happen to keep the manifest valid) reassemble cleanly."""
    record = record if record is not None else store.read_record(run_id)
    blob = record.to_bytes()
    report = FuzzReport()
    mutations = list(corpus_manifest_mutations(record))
    mutations += list(iter_blob_mutations(
        blob, manifest_spans(blob), seed=seed, n_random=n_random))
    for desc, mut in mutations:
        if mut == blob:
            continue
        report.total += 1
        try:
            _exercise(store, mut)
        except TraceFormatError as e:
            report.structured += 1
            cls = type(e).__name__
            report.by_error[cls] = report.by_error.get(cls, 0) + 1
        except Exception as e:  # noqa: BLE001 — the point of the fuzzer
            report.failures.append(FuzzOutcome(
                desc, CRASH, f"{type(e).__name__}: {e}"))
        else:
            # every field of the manifest is covered by magic/version
            # checks, the section CRC, and semantic validation — a
            # mutation that still parses AND resolves is an integrity
            # bug, exactly as in the trace fuzzer
            report.failures.append(FuzzOutcome(desc, SILENT))
    return report
