"""Lossless round-trip verification.

"As we developed both compressor and decompressor, we can check
correctness by comparing uncompressed traces to compressed next
decompressed traces" (§4).  This module is that check: run the tracer
with ``keep_raw=True`` (it then retains each rank's uncompressed local
terminal stream), decompress the produced trace blob, and compare
signature-by-signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from .decoder import TraceDecoder
from .tracer import PilgrimTracer


@dataclass
class VerifyReport:
    ok: bool
    nprocs: int
    total_calls: int
    mismatches: list[str]

    def __bool__(self) -> bool:
        return self.ok


def verify_roundtrip(tracer: PilgrimTracer) -> VerifyReport:
    """Compare raw (pre-compression) records against decode(compress(...)).

    Requires the tracer to have been constructed with ``keep_raw=True``
    and the run to have finished (``tracer.result`` populated).
    """
    if not tracer.keep_raw:
        raise ValueError("verify_roundtrip needs PilgrimTracer(keep_raw=True)")
    if tracer.result is None:
        raise ValueError("run not finalized — nothing to verify")

    decoder = TraceDecoder.from_bytes(tracer.result.trace_bytes)
    mismatches: list[str] = []
    total = 0
    for rank in range(tracer.nprocs):
        raw_sigs = [tracer.csts[rank].sigs[t] for t in tracer.raw_terms[rank]]
        dec_sigs = [decoder.trace.cst.sigs[t]
                    for t in decoder.rank_terminals(rank)]
        total += len(raw_sigs)
        if len(raw_sigs) != len(dec_sigs):
            mismatches.append(
                f"rank {rank}: length {len(raw_sigs)} raw vs "
                f"{len(dec_sigs)} decoded")
            continue
        for i, (a, b) in enumerate(zip(raw_sigs, dec_sigs)):
            if a != b:
                mismatches.append(f"rank {rank} call {i}: {a!r} != {b!r}")
                if len(mismatches) > 20:
                    mismatches.append("... (truncated)")
                    break
    return VerifyReport(ok=not mismatches, nprocs=tracer.nprocs,
                        total_calls=total, mismatches=mismatches)
