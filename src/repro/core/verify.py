"""Differential lossless round-trip verification.

"As we developed both compressor and decompressor, we can check
correctness by comparing uncompressed traces to compressed next
decompressed traces" (§4).  This module is that check, grown into a real
verifier: run the tracer with ``keep_raw=True`` (it then retains each
rank's uncompressed local terminal stream), decompress the produced
trace blob, and prove four independent properties:

* **terminal_streams** — each rank's decoded terminal stream is
  *byte-exact* against its raw stream (both sides varint-packed and
  compared as bytes, not just element-wise);
* **records** — the fully decoded :class:`DecodedCall` records (function
  name + every parameter) equal the records re-derived from the raw
  per-rank signatures;
* **call_counts** — call counts are conserved per rank and in total
  (``decoder.call_count(rank) == len(raw[rank])``), i.e. compression
  neither drops nor invents calls;
* **reencode** — parse(serialize(trace)) re-serializes to the identical
  byte string, so the on-disk form is a fixed point of the reader.

``verify_workload`` wraps the whole flow (trace a registered workload,
then verify) for the ``repro verify`` CLI subcommand and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .decoder import TraceDecoder
from .packing import pack_ints
from .records import sig_to_params
from .trace_format import TraceFile
from .tracer import PilgrimTracer

_MAX_MISMATCHES = 20


@dataclass
class VerifyReport:
    ok: bool
    nprocs: int
    total_calls: int
    mismatches: list[str]
    #: named property -> passed (terminal_streams/records/call_counts/
    #: reencode); empty on legacy construction
    checks: dict[str, bool] = field(default_factory=dict)
    per_rank_calls: list[int] = field(default_factory=list)
    trace_bytes: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        detail = ", ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in self.checks.items())
        return (f"lossless round-trip: {status} "
                f"({self.total_calls} calls on {self.nprocs} ranks"
                + (f"; {detail}" if detail else "") + ")")


def _note(mismatches: list[str], msg: str) -> bool:
    """Record a mismatch, truncating the list; returns False for its
    callers' convenience (the check just failed)."""
    if len(mismatches) < _MAX_MISMATCHES:
        mismatches.append(msg)
    elif len(mismatches) == _MAX_MISMATCHES:
        mismatches.append("... (truncated)")
    return False


def verify_roundtrip(tracer: PilgrimTracer, *,
                     allow_degraded: bool = False) -> VerifyReport:
    """Compare raw (pre-compression) records against decode(compress(...)).

    Requires the tracer to have been constructed with ``keep_raw=True``
    and the run to have finished (``tracer.result`` populated).

    A degraded result (the resilient pipeline abandoned some rank span)
    fails outright unless ``allow_degraded=True``, in which case the
    four properties are asserted on the *surviving* ranks only and a
    fifth check, ``salvage_accounting``, proves the salvage report's
    call deficit exactly accounts for every call the trace dropped.
    """
    if not tracer.keep_raw:
        raise ValueError("verify_roundtrip needs PilgrimTracer(keep_raw=True)")
    if tracer.result is None:
        raise ValueError("run not finalized — nothing to verify")

    result = tracer.result
    degraded = bool(getattr(result, "degraded", False))
    salvage = getattr(result, "salvage", None)
    blob = result.trace_bytes
    decoder = TraceDecoder.from_bytes(blob, salvage=allow_degraded)
    mismatches: list[str] = []
    checks = {"terminal_streams": True, "records": True,
              "call_counts": True, "reencode": True}
    total = 0
    per_rank: list[int] = []
    lost: set[int] = set()

    if degraded:
        if not allow_degraded:
            checks["degraded"] = _note(
                mismatches,
                (salvage.summary() if salvage is not None else
                 "result is degraded")
                + " — pass allow_degraded=True to verify the survivors")
        else:
            checks["salvage_accounting"] = True
            if salvage is None:
                checks["salvage_accounting"] = _note(
                    mismatches, "degraded result carries no SalvageReport")
            else:
                lost = set(salvage.lost_ranks)

    if decoder.nprocs != tracer.nprocs:
        checks["call_counts"] = _note(
            mismatches, f"decoded nprocs {decoder.nprocs} != "
            f"traced {tracer.nprocs}")

    for rank in range(tracer.nprocs):
        if rank in lost:
            per_rank.append(0)
            continue
        raw_terms = tracer.raw_terms[rank]
        raw_sigs = [tracer.csts[rank].sigs[t] for t in raw_terms]
        dec_terms = decoder.rank_terminals(rank)
        dec_sigs = [decoder.trace.cst.sigs[t] for t in dec_terms]
        total += len(raw_sigs)
        per_rank.append(len(raw_sigs))

        # conservation: the decoder's count must match without expansion
        # tricks, per rank and against the stream it actually yields
        n_dec = decoder.call_count(rank)
        if n_dec != len(raw_terms) or n_dec != len(dec_terms):
            checks["call_counts"] = _note(
                mismatches, f"rank {rank}: {len(raw_terms)} raw calls, "
                f"{len(dec_terms)} decoded, call_count says {n_dec}")

        # byte-exact terminal streams: map the raw local signatures to the
        # decoded CST's global numbering and compare the packed bytes
        if len(raw_sigs) != len(dec_sigs):
            checks["terminal_streams"] = _note(
                mismatches, f"rank {rank}: length {len(raw_sigs)} raw vs "
                f"{len(dec_sigs)} decoded")
            continue
        raw_global = [_global_term(decoder, sig, mismatches)
                      for sig in raw_sigs]
        if None in raw_global:
            checks["terminal_streams"] = False
        elif pack_ints(raw_global) != pack_ints(dec_terms):
            checks["terminal_streams"] = _note(
                mismatches, f"rank {rank}: terminal stream bytes differ")

        for i, (a, b) in enumerate(zip(raw_sigs, dec_sigs)):
            if a != b:
                checks["records"] = _note(
                    mismatches, f"rank {rank} call {i}: {a!r} != {b!r}")
            elif sig_to_params(a) != sig_to_params(b):
                checks["records"] = _note(
                    mismatches, f"rank {rank} call {i}: decoded params "
                    f"differ for {a!r}")

    if lost:
        # conservation on the survivors: the decoded total must equal the
        # surviving raw total, and the salvage report's deficit must be
        # exactly the calls the lost ranks actually made
        if decoder.call_count() != total:
            checks["call_counts"] = _note(
                mismatches, f"surviving calls: {total} raw, "
                f"{decoder.call_count()} decoded")
        true_deficit = sum(len(tracer.raw_terms[r]) for r in lost
                           if r < len(tracer.raw_terms))
        if salvage is not None and salvage.call_deficit != true_deficit:
            checks["salvage_accounting"] = _note(
                mismatches, f"salvage reports a deficit of "
                f"{salvage.call_deficit} calls; the lost ranks really "
                f"made {true_deficit}")
        if total + true_deficit != tracer.total_calls:
            checks["call_counts"] = _note(
                mismatches, f"survivors ({total}) + lost "
                f"({true_deficit}) != {tracer.total_calls} traced")
    elif total != tracer.total_calls or decoder.call_count() != total:
        checks["call_counts"] = _note(
            mismatches, f"total calls: {tracer.total_calls} traced, "
            f"{total} raw, {decoder.call_count()} decoded")

    if TraceFile.from_bytes(blob).to_bytes() != blob:
        checks["reencode"] = _note(
            mismatches, "parse(serialize(trace)) is not byte-stable")

    return VerifyReport(ok=all(checks.values()), nprocs=tracer.nprocs,
                        total_calls=total, mismatches=mismatches,
                        checks=checks, per_rank_calls=per_rank,
                        trace_bytes=len(blob))


#: cache slot on the decoder for the sig -> global-terminal index
_SIG_INDEX_ATTR = "_verify_sig_index"


def _global_term(decoder: TraceDecoder, sig: tuple,
                 mismatches: list[str]):
    index = getattr(decoder, _SIG_INDEX_ATTR, None)
    if index is None:
        index = {s: t for t, s in enumerate(decoder.trace.cst.sigs)}
        setattr(decoder, _SIG_INDEX_ATTR, index)
    term = index.get(sig)
    if term is None:
        _note(mismatches, f"raw signature {sig!r} missing from merged CST")
    return term


def verify_workload(name: str, nprocs: int, *, seed: int = 1,
                    options=None, allow_degraded: bool = False,
                    **params) -> VerifyReport:
    """Trace a registered workload with ``keep_raw=True`` and round-trip
    verify it (the ``repro verify`` CLI entry point).  ``jobs > 1`` in
    *options* exercises the parallel tree reduction, so CI proves the
    parallel finalize path is lossless too.

    This is a thin wrapper over :func:`repro.api.verify` — tracer
    configuration belongs in *options* (a :class:`~repro.core.backends.
    TracerOptions`); the historical loose kwargs (``lossy_timing=``,
    ``jobs=``) still work for one release with a DeprecationWarning.
    """
    from .. import api  # late import: repro.api sits above repro.core
    return api.verify(name, nprocs, seed=seed, options=options,
                      allow_degraded=allow_degraded, **params)
