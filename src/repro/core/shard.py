"""Per-rank shard artifacts: the unit of the sharded compression pipeline.

Pilgrim's inter-process compression (§3.5) is a ceil(log2 P) tree
reduction over per-rank partial results.  This module makes those
partials first-class:

* :class:`RankCompressor` owns one rank's intra-process state (encoder,
  CST, Sequitur grammar, optional timing compressor) and freezes it into
* :class:`RankShard` — a self-contained, picklable, byte-serializable
  artifact covering a contiguous rank range ``[base_rank, base_rank +
  nranks)``: the merged signature table, the per-rank grammars (dedup'd
  into a :class:`GrammarSet`), and the timing partials; and
* :func:`merge_shards` — the **associative** pairwise reduction step.

Associativity is what lets any reduction tree (left fold, balanced,
parallel) produce byte-identical final traces.  It holds because

* the merged signature order is the *ordered union* "left order, then
  novel right signatures in right order", and ordered union is
  associative (``(c \\ b) \\ a == c \\ (a ∪ b)`` as subsequences of c);
* duration sums are accumulated as **integer nanoseconds** (float
  addition is not associative; integer addition is), converted back to
  seconds exactly once at serialization time;
* grammar dedup order is first appearance in rank order — the same
  ordered-union argument.

Shard bytes round-trip through the v2 section writers of
:mod:`repro.core.trace_format` (length prefix + CRC32 per section), so a
shard on disk enjoys the same integrity checking as a finished trace.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass, field
from typing import Optional

from ..resilience.salvage import SalvageReport
from .cst import CST, MergedCST
from .encoder import PerRankEncoder
from .errors import (CorruptTraceError, TraceFormatError, TruncatedTraceError,
                     UnsupportedVersionError)
from .grammar import Grammar
from .packing import (Reader, read_value, write_uvarint, write_value,
                      write_varint)
from .sequitur import Sequitur
from .timing import TimingCompressor

SHARD_MAGIC = b"PSHD"
SHARD_VERSION = 1
_SHARD_FLAG_TIMING = 1
_SHARD_FLAG_COMPRESSED = 2

PARTIAL_MAGIC = b"PPRT"
PARTIAL_VERSION = 1

#: durations are carried through the reduction as integer nanoseconds so
#: that merging is exactly associative; 1 ns is far below the simulator's
#: clock resolution
NS_PER_SECOND = 1_000_000_000


def _dur_to_ns(seconds: float) -> int:
    return int(round(seconds * NS_PER_SECOND))


@dataclass
class GrammarSet:
    """Per-rank grammars deduplicated into first-appearance order.

    ``uid[i]`` names the grammar of the i-th covered rank; ``unique``
    holds each distinct grammar once.  In SPMD codes most ranks build
    identical grammars (§3.5.2), so a merged shard covering thousands of
    ranks typically stores a handful of grammars plus an int list.
    """

    unique: list[Grammar]
    uid: list[int]

    @classmethod
    def single(cls, g: Grammar) -> "GrammarSet":
        return cls(unique=[g], uid=[0])

    def per_rank(self) -> list[Grammar]:
        """The covered ranks' grammars, in rank order."""
        return [self.unique[u] for u in self.uid]

    def merge(self, other: "GrammarSet") -> "GrammarSet":
        """Ordered-union dedup merge (associative, not commutative)."""
        unique = list(self.unique)
        index = {g: i for i, g in enumerate(unique)}
        remap = []
        for g in other.unique:
            i = index.get(g)
            if i is None:
                i = len(unique)
                index[g] = i
                unique.append(g)
            remap.append(i)
        return GrammarSet(unique=unique,
                          uid=list(self.uid) + [remap[u] for u in other.uid])

    # -- serialization (one v2 section payload) ----------------------------------

    def write_to(self, out: bytearray) -> None:
        write_uvarint(out, len(self.unique))
        write_uvarint(out, len(self.uid))
        for u in self.uid:
            write_uvarint(out, u)
        for g in self.unique:
            g.write_to(out)

    @classmethod
    def read_from(cls, r: Reader, name: str = "grammar-set") -> "GrammarSet":
        n_unique = r.read_uvarint()
        n_uid = r.read_uvarint()
        if max(n_unique, n_uid) > r.remaining():
            raise CorruptTraceError(
                f"{name} section claims {n_unique} grammars over {n_uid} "
                f"ranks but only {r.remaining()} bytes remain")
        uid = [r.read_uvarint() for _ in range(n_uid)]
        bad = [u for u in uid if u >= n_unique]
        if bad:
            raise CorruptTraceError(
                f"{name} section rank map references grammar {bad[0]} "
                f"but only {n_unique} exist")
        unique = [Grammar.from_reader(r) for _ in range(n_unique)]
        return cls(unique=unique, uid=uid)


@dataclass
class RankShard:
    """Self-contained partial result covering ranks
    ``[base_rank, base_rank + nranks)``.

    ``sigs`` is the shard-local merged CST (ordered union across the
    covered ranks); every grammar in ``cfg`` uses *this* numbering for
    its terminals.  ``dur_ns`` holds per-signature duration sums in
    integer nanoseconds (see module docstring).
    """

    base_rank: int
    nranks: int
    sigs: list[tuple]
    counts: list[int]
    dur_ns: list[int]
    cfg: GrammarSet
    #: per covered rank, the number of traced calls (conservation checks)
    calls: list[int] = field(default_factory=list)
    timing_duration: Optional[GrammarSet] = None
    timing_interval: Optional[GrammarSet] = None
    #: set by ``from_bytes(salvage=True)`` when anything was dropped;
    #: excluded from equality so a salvaged shard still compares equal
    #: to an intact one when the surviving data matches
    salvage: Optional[SalvageReport] = field(default=None, compare=False,
                                             repr=False)

    @property
    def n_signatures(self) -> int:
        return len(self.sigs)

    @property
    def total_calls(self) -> int:
        return sum(self.calls)

    @classmethod
    def empty(cls, base_rank: int, nranks: int, *,
              timing: bool = False) -> "RankShard":
        """A placeholder shard covering *nranks* ranks with no data —
        what the resilient pipeline substitutes for a subtree it had to
        abandon.  Every covered rank gets the empty grammar (expands to
        zero calls), so downstream stages and the decoder handle the
        span without special cases."""
        g = Grammar(((),))
        shard = cls(base_rank=base_rank, nranks=nranks, sigs=[],
                    counts=[], dur_ns=[],
                    cfg=GrammarSet(unique=[g], uid=[0] * nranks),
                    calls=[0] * nranks)
        if timing:
            shard.timing_duration = GrammarSet(unique=[g],
                                               uid=[0] * nranks)
            shard.timing_interval = GrammarSet(unique=[g],
                                               uid=[0] * nranks)
        return shard

    def merged_cst(self) -> MergedCST:
        """The shard's CST as a :class:`MergedCST` (durations back in
        seconds — the exact division ``ns / 1e9`` is deterministic, so
        the serialized bytes do not depend on the reduction tree)."""
        return MergedCST(sigs=list(self.sigs), counts=list(self.counts),
                         dur_sums=[ns / NS_PER_SECOND for ns in self.dur_ns],
                         remaps=[])

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        """Serialize through the trace-format v2 section writers (length
        prefix + CRC32 per section), so shards on disk are integrity-
        checked exactly like finished traces."""
        from .trace_format import emit_section

        out = bytearray()
        out.extend(SHARD_MAGIC)
        out.append(SHARD_VERSION)
        flags = (_SHARD_FLAG_TIMING if self.timing_duration is not None
                 else 0) | (_SHARD_FLAG_COMPRESSED if compress else 0)
        out.append(flags)
        write_uvarint(out, self.base_rank)
        write_uvarint(out, self.nranks)

        cst_b = bytearray()
        write_uvarint(cst_b, len(self.sigs))
        for sig, count, ns in zip(self.sigs, self.counts, self.dur_ns):
            write_value(cst_b, sig)
            write_uvarint(cst_b, count)
            write_uvarint(cst_b, ns)
        calls_b = bytearray()
        write_uvarint(calls_b, len(self.calls))
        for c in self.calls:
            write_uvarint(calls_b, c)
        cfg_b = bytearray()
        self.cfg.write_to(cfg_b)
        payloads = [bytes(cst_b), bytes(calls_b), bytes(cfg_b)]
        if self.timing_duration is not None:
            d = bytearray()
            self.timing_duration.write_to(d)
            i = bytearray()
            self.timing_interval.write_to(i)
            payloads.extend((bytes(d), bytes(i)))
        for payload in payloads:
            emit_section(out, payload, compress)
        return bytes(out)

    def content_hash(self, compress: bool = True) -> str:
        """SHA-256 of the serialized shard — the content address a
        trace store (or a shard cache) would file this shard under.
        Serialization is deterministic, so equal shards hash equal."""
        import hashlib
        return hashlib.sha256(self.to_bytes(compress)).hexdigest()

    @classmethod
    def from_bytes(cls, data: bytes, salvage: bool = False) -> "RankShard":
        """Parse a shard blob.

        With ``salvage=True``, optional sections that fail their CRC or
        parse (the timing pair) are dropped instead of failing the whole
        shard, and trailing garbage is tolerated; anything dropped is
        recorded in the returned shard's ``salvage`` report.  The
        header and the required sections (CST, calls, CFG) must still be
        intact — without them there is no shard to salvage.
        """
        from .trace_format import take_section

        report = SalvageReport() if salvage else None
        if len(data) < 6:
            raise TruncatedTraceError(
                f"shard of {len(data)} bytes is shorter than the header")
        if data[:4] != SHARD_MAGIC:
            raise TraceFormatError("not a Pilgrim rank shard (bad magic)")
        if data[4] != SHARD_VERSION:
            raise UnsupportedVersionError(data[4], SHARD_VERSION)
        flags = data[5]
        if flags & ~(_SHARD_FLAG_TIMING | _SHARD_FLAG_COMPRESSED):
            raise CorruptTraceError(
                f"unknown shard flag bits in {flags:#04x}")
        compressed = bool(flags & _SHARD_FLAG_COMPRESSED)
        try:
            r = Reader(data, 6)
            base_rank = r.read_uvarint()
            nranks = r.read_uvarint()
            cr = take_section(r, compressed, "shard-CST")
            n = cr.read_uvarint()
            if n > cr.remaining():
                raise CorruptTraceError(
                    f"shard CST claims {n} signatures but only "
                    f"{cr.remaining()} bytes remain")
            sigs, counts, dur_ns = [], [], []
            for i in range(n):
                sig = read_value(cr)
                if not isinstance(sig, tuple):
                    raise CorruptTraceError(
                        f"shard CST entry {i} is a {type(sig).__name__}, "
                        f"not a signature tuple")
                sigs.append(sig)
                counts.append(cr.read_uvarint())
                dur_ns.append(cr.read_uvarint())
            lr = take_section(r, compressed, "shard-calls")
            calls = [lr.read_uvarint() for _ in range(lr.read_uvarint())]
            cfg = GrammarSet.read_from(
                take_section(r, compressed, "shard-CFG"), "shard-CFG")
            td = ti = None
            if flags & _SHARD_FLAG_TIMING:
                try:
                    td = GrammarSet.read_from(
                        take_section(r, compressed, "shard-timing-duration"),
                        "shard-timing-duration")
                    ti = GrammarSet.read_from(
                        take_section(r, compressed, "shard-timing-interval"),
                        "shard-timing-interval")
                except TraceFormatError as e:
                    if report is None:
                        raise
                    # timing is an optional enrichment: drop the pair
                    # (the trace stays structurally valid without it)
                    td = ti = None
                    report.lose_section("shard-timing", str(e))
            if not r.exhausted:
                if report is None:
                    raise CorruptTraceError(
                        f"{len(data) - r.pos} trailing bytes after the "
                        f"last shard section")
                report.note(f"{len(data) - r.pos} trailing bytes ignored")
        except TraceFormatError:
            raise
        except (IndexError, KeyError, ValueError, OverflowError,
                RecursionError, MemoryError, struct.error) as e:
            raise CorruptTraceError(
                f"malformed shard ({type(e).__name__}: {e})") from e
        if len(calls) != nranks or len(cfg.uid) != nranks:
            raise CorruptTraceError(
                f"shard covers {nranks} ranks but carries {len(calls)} "
                f"call counts and {len(cfg.uid)} grammar assignments")
        if report is not None and not (report.degraded or report.notes):
            report = None
        return cls(base_rank=base_rank, nranks=nranks, sigs=sigs,
                   counts=counts, dur_ns=dur_ns, cfg=cfg, calls=calls,
                   timing_duration=td, timing_interval=ti, salvage=report)


def merge_shards(a: RankShard, b: RankShard) -> RankShard:
    """The associative reduction step: merge two adjacent shards.

    *a* must cover the ranks immediately below *b* (the operation is
    associative but **not** commutative — rank order is the trace's
    meaning).  The merged signature table preserves *a*'s numbering and
    appends *b*'s novel signatures in *b*'s order (Fig 3); *b*'s grammars
    are renumbered into the merged table before the dedup merge.
    """
    if a.base_rank + a.nranks != b.base_rank:
        raise ValueError(
            f"shards are not adjacent: left covers "
            f"[{a.base_rank}, {a.base_rank + a.nranks}), right starts at "
            f"{b.base_rank}")
    sigs = list(a.sigs)
    counts = list(a.counts)
    dur_ns = list(a.dur_ns)
    index = {sig: i for i, sig in enumerate(sigs)}
    remap: list[int] = []
    for i, sig in enumerate(b.sigs):
        j = index.get(sig)
        if j is None:
            j = len(sigs)
            index[sig] = j
            sigs.append(sig)
            counts.append(b.counts[i])
            dur_ns.append(b.dur_ns[i])
        else:
            counts[j] += b.counts[i]
            dur_ns[j] += b.dur_ns[i]
        remap.append(j)

    b_cfg = GrammarSet(
        unique=[g.remap_terminals(lambda t, m=remap: m[t])
                for g in b.cfg.unique],
        uid=b.cfg.uid)
    merged = RankShard(
        base_rank=a.base_rank, nranks=a.nranks + b.nranks,
        sigs=sigs, counts=counts, dur_ns=dur_ns,
        cfg=a.cfg.merge(b_cfg), calls=list(a.calls) + list(b.calls))
    if a.timing_duration is not None and b.timing_duration is not None:
        # timing terminals are exponential bins, not CST symbols: no remap
        merged.timing_duration = a.timing_duration.merge(b.timing_duration)
        merged.timing_interval = a.timing_interval.merge(b.timing_interval)
    elif a.timing_duration is not None or b.timing_duration is not None:
        raise ValueError("cannot merge a timing shard with a non-timing one")
    return merged


_PARTIAL_FLAG_TIMING = 1
_PARTIAL_FLAG_COMPRESSED = 2


@dataclass
class ShardPartial:
    """A mid-run snapshot of one rank's *new* compression state since the
    previous snapshot — the unit the streaming-ingest client ships.

    Unlike :class:`RankShard` (a complete rank), a partial carries only
    deltas: the signatures interned since the last flush (the CST is
    append-only, so a slice suffices), sparse per-signature count and
    integer-nanosecond duration increments, the grammar continuation
    parts rotated out of the live Sequitur (the watermark-spill
    mechanism), and the rotated timing-bin grammars.  A consumer that
    re-expands every part of every partial in order and re-feeds the
    terminal stream through one fresh Sequitur reconstructs exactly the
    grammar a one-shot run would freeze — the byte-identity invariant
    the ingest service is built on.

    Duration deltas telescope over *rounded* totals: each flush sends
    ``round(total_ns) - previously_sent_ns``, so the sum over any
    chunking equals the one-shot rounded total exactly (integer
    addition is associative; per-chunk rounding would not be).
    """

    rank: int
    #: calls covered by this partial (conservation checks)
    n_calls: int
    #: CST signatures interned since the previous partial, in order
    new_sigs: list[tuple]
    #: sparse CST deltas: ``counts[idx[i]] += d_counts[i]`` etc.
    idx: list[int]
    d_counts: list[int]
    d_dur_ns: list[int]
    #: grammar continuation parts (terminals = rank-local CST indices)
    parts: list[Grammar]
    timing_duration: Optional[Grammar] = None
    timing_interval: Optional[Grammar] = None

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        """Serialize through the v2 section writers, like
        :meth:`RankShard.to_bytes` — partials on the wire get the same
        per-section CRC32 integrity checks as shards on disk."""
        from .trace_format import emit_section

        out = bytearray()
        out.extend(PARTIAL_MAGIC)
        out.append(PARTIAL_VERSION)
        flags = (_PARTIAL_FLAG_TIMING if self.timing_duration is not None
                 else 0) | (_PARTIAL_FLAG_COMPRESSED if compress else 0)
        out.append(flags)
        write_uvarint(out, self.rank)
        write_uvarint(out, self.n_calls)

        sigs_b = bytearray()
        write_uvarint(sigs_b, len(self.new_sigs))
        for sig in self.new_sigs:
            write_value(sigs_b, sig)
        delta_b = bytearray()
        write_uvarint(delta_b, len(self.idx))
        for i, dc, dns in zip(self.idx, self.d_counts, self.d_dur_ns):
            write_uvarint(delta_b, i)
            write_varint(delta_b, dc)
            write_varint(delta_b, dns)
        parts_b = bytearray()
        write_uvarint(parts_b, len(self.parts))
        for g in self.parts:
            g.write_to(parts_b)
        payloads = [bytes(sigs_b), bytes(delta_b), bytes(parts_b)]
        if self.timing_duration is not None:
            d = bytearray()
            self.timing_duration.write_to(d)
            i_b = bytearray()
            self.timing_interval.write_to(i_b)
            payloads.extend((bytes(d), bytes(i_b)))
        for payload in payloads:
            emit_section(out, payload, compress)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardPartial":
        from .trace_format import take_section

        if len(data) < 6:
            raise TruncatedTraceError(
                f"shard partial of {len(data)} bytes is shorter than "
                f"the header")
        if data[:4] != PARTIAL_MAGIC:
            raise TraceFormatError("not a Pilgrim shard partial (bad magic)")
        if data[4] != PARTIAL_VERSION:
            raise UnsupportedVersionError(data[4], PARTIAL_VERSION)
        flags = data[5]
        if flags & ~(_PARTIAL_FLAG_TIMING | _PARTIAL_FLAG_COMPRESSED):
            raise CorruptTraceError(
                f"unknown shard-partial flag bits in {flags:#04x}")
        compressed = bool(flags & _PARTIAL_FLAG_COMPRESSED)
        try:
            r = Reader(data, 6)
            rank = r.read_uvarint()
            n_calls = r.read_uvarint()
            sr = take_section(r, compressed, "partial-sigs")
            n = sr.read_uvarint()
            if n > sr.remaining():
                raise CorruptTraceError(
                    f"shard partial claims {n} new signatures but only "
                    f"{sr.remaining()} bytes remain")
            new_sigs = []
            for i in range(n):
                sig = read_value(sr)
                if not isinstance(sig, tuple):
                    raise CorruptTraceError(
                        f"shard-partial signature {i} is a "
                        f"{type(sig).__name__}, not a signature tuple")
                new_sigs.append(sig)
            dr = take_section(r, compressed, "partial-deltas")
            n = dr.read_uvarint()
            if n > dr.remaining():
                raise CorruptTraceError(
                    f"shard partial claims {n} CST deltas but only "
                    f"{dr.remaining()} bytes remain")
            idx, d_counts, d_dur_ns = [], [], []
            for _ in range(n):
                idx.append(dr.read_uvarint())
                d_counts.append(dr.read_varint())
                d_dur_ns.append(dr.read_varint())
            pr = take_section(r, compressed, "partial-parts")
            n = pr.read_uvarint()
            if n > pr.remaining():
                raise CorruptTraceError(
                    f"shard partial claims {n} grammar parts but only "
                    f"{pr.remaining()} bytes remain")
            parts = [Grammar.from_reader(pr) for _ in range(n)]
            td = ti = None
            if flags & _PARTIAL_FLAG_TIMING:
                td = Grammar.from_reader(
                    take_section(r, compressed, "partial-timing-duration"))
                ti = Grammar.from_reader(
                    take_section(r, compressed, "partial-timing-interval"))
            if not r.exhausted:
                raise CorruptTraceError(
                    f"{len(data) - r.pos} trailing bytes after the last "
                    f"shard-partial section")
        except TraceFormatError:
            raise
        except (IndexError, KeyError, ValueError, OverflowError,
                RecursionError, MemoryError, struct.error) as e:
            raise CorruptTraceError(
                f"malformed shard partial ({type(e).__name__}: {e})") from e
        return cls(rank=rank, n_calls=n_calls, new_sigs=new_sigs, idx=idx,
                   d_counts=d_counts, d_dur_ns=d_dur_ns, parts=parts,
                   timing_duration=td, timing_interval=ti)


class RankCompressor:
    """One rank's intra-process compression state, extracted from the
    tracer so it can be frozen into a :class:`RankShard` independently of
    every other rank (the paper's embarrassingly parallel stage)."""

    __slots__ = ("rank", "encoder", "cst", "grammar", "timing",
                 "raw_terms", "keep_raw", "n_calls", "loop_detection",
                 "memory_watermark", "_spill_parts", "_spill_input",
                 "watermark_spills", "batch_size", "_batch_n",
                 "_b_sigs", "_b_fnames", "_b_durs", "_b_t0", "_b_t1",
                 "_b_terms", "_bufs", "streamed_calls", "partial_flushes",
                 "_sent_sigs_n", "_sent_counts", "_sent_dur_ns")

    def __init__(self, rank: int, comm_space, *, win_space=None,
                 relative_ranks: bool = True,
                 per_signature_request_pools: bool = True,
                 loop_detection: bool = True,
                 timing: Optional[TimingCompressor] = None,
                 keep_raw: bool = False,
                 encoder: Optional[PerRankEncoder] = None,
                 signature_cache: bool = True,
                 memory_watermark: Optional[int] = None,
                 batch_size: int = 1):
        if memory_watermark is not None and memory_watermark < 1:
            raise ValueError(
                f"memory_watermark must be >= 1, got {memory_watermark}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.rank = rank
        self.encoder = encoder if encoder is not None else PerRankEncoder(
            rank, comm_space, win_space=win_space,
            relative_ranks=relative_ranks,
            per_signature_request_pools=per_signature_request_pools,
            signature_cache=signature_cache)
        self.cst = CST(fast_path=signature_cache)
        self.loop_detection = loop_detection
        self.grammar = Sequitur(loop_detection=loop_detection)
        self.timing = timing
        self.keep_raw = keep_raw
        self.raw_terms: list[int] = []
        self.n_calls = 0
        #: soft memory watermark (degraded-mode tracing): when the live
        #: grammar has buffered this many input terminals, it is frozen
        #: early into a continuation part and a fresh Sequitur takes
        #: over, bounding the mutable grammar structures a rank keeps
        #: resident.  None disables the watermark entirely.
        self.memory_watermark = memory_watermark
        self._spill_parts: list[Grammar] = []
        self._spill_input = 0
        #: how many times the watermark fired (observability/tests)
        self.watermark_spills = 0
        #: calls already handed off via :meth:`flush_partial`; a rank
        #: that streamed anything must be folded by the stream's
        #: consumer, never frozen locally (see the ``freeze`` guard)
        self.streamed_calls = 0
        self.partial_flushes = 0
        #: CST high-water marks of the previous partial flush, for
        #: computing append-only signature slices and sparse deltas
        self._sent_sigs_n = 0
        self._sent_counts: list[int] = []
        self._sent_dur_ns: list[int] = []
        #: columnar call buffer (``batch_size > 1``): the symbolic encode
        #: stays synchronous per call — request/status objects mutate
        #: after the hook returns — while CST intern, grammar append and
        #: timing are deferred into whole-batch flushes
        self.batch_size = batch_size
        self._batch_n = 0
        if batch_size > 1:
            self._b_sigs: list = [None] * batch_size
            self._b_fnames: list = [None] * batch_size
            self._b_durs = array("d", bytes(8 * batch_size))
            self._b_t0 = array("d", bytes(8 * batch_size))
            self._b_t1 = array("d", bytes(8 * batch_size))
            self._b_terms: list[int] = [0] * batch_size
        else:
            self._b_sigs = self._b_fnames = self._b_terms = []
            self._b_durs = self._b_t0 = self._b_t1 = array("d")
        #: the five columns as one tuple: ``observe_batched`` pays one
        #: attribute load instead of five per call
        self._bufs = (self._b_sigs, self._b_fnames, self._b_durs,
                      self._b_t0, self._b_t1)

    @property
    def observed_calls(self) -> int:
        """Calls this compressor has seen, spilled parts and buffered
        batch included (also correct when the tracer appends to
        ``grammar`` directly)."""
        return self._spill_input + self.grammar.n_input + self._batch_n

    def observe(self, fname: str, args: dict, t0: float, t1: float) -> int:
        """Run one call through the intra-process pipeline (Fig 2):
        symbolic encode → CST intern → grammar append → timing."""
        sig = self.encoder.encode_call(fname, args)
        term = self.cst.intern(sig, t1 - t0)
        self.grammar.append(term)
        if self.timing is not None:
            self.timing.record(term, fname, t0, t1)
        if self.keep_raw:
            self.raw_terms.append(term)
        self.n_calls += 1
        if self.memory_watermark is not None \
                and self.grammar.n_input >= self.memory_watermark:
            self.spill()
        return term

    def observe_batched(self, fname: str, args: dict, t0: float,
                        t1: float) -> None:
        """Columnar variant of :meth:`observe` for ``batch_size > 1``:
        encode now, defer intern/append/timing until the buffer fills.

        The watermark is checked at flush granularity, so a spill can
        overshoot the threshold by at most one batch; spills are
        byte-invisible either way (``freeze`` re-feeds the parts)."""
        n = self._batch_n
        b = self._bufs
        b[0][n] = self.encoder.encode_call(fname, args)
        b[1][n] = fname
        b[2][n] = t1 - t0
        b[3][n] = t0
        b[4][n] = t1
        self._batch_n = n = n + 1
        if n == self.batch_size:
            self.flush_batch()

    def flush_batch(self) -> None:
        """Drain the columnar buffer through CST intern → grammar append
        → timing, in one pass per stage.  Byte-identical to the per-call
        path: stage order within a call only matters per subsystem, and
        each subsystem still sees its inputs in exact call order."""
        n = self._batch_n
        if not n:
            return
        self._batch_n = 0
        out = self._b_terms
        self.cst.intern_batch(self._b_sigs, self._b_durs, n, out)
        terms = out if n == self.batch_size else out[:n]
        self.grammar.append_array(terms)
        if self.timing is not None:
            self.timing.record_batch(terms, self._b_fnames,
                                     self._b_t0, self._b_t1, n)
        if self.keep_raw:
            self.raw_terms.extend(terms)
        self.n_calls += n
        if self.memory_watermark is not None \
                and self.grammar.n_input >= self.memory_watermark:
            self.spill()

    def observe_array(self, fnames, argses, t0s, t1s) -> int:
        """Array entry point (``record_batch``): run whole columns of
        calls through the batched pipeline.  With ``batch_size > 1`` the
        columns feed the same persistent buffer the scalar path uses, so
        downstream flushes stay at ``batch_size`` granularity no matter
        how the feeder chunks its calls (and mixing scalar and array
        feeds preserves call order for free).  Returns the number of
        calls consumed."""
        n = len(fnames)
        if not n:
            return 0
        bs = self.batch_size
        if bs == 1:
            # unbuffered: one whole-column pass per stage
            sigs = self.encoder.encode_batch(fnames, argses, n)
            durs = [t1s[i] - t0s[i] for i in range(n)]
            terms = self.cst.intern_batch(sigs, durs, n)
            self.grammar.append_array(terms)
            if self.timing is not None:
                self.timing.record_batch(terms, fnames, t0s, t1s, n)
            if self.keep_raw:
                self.raw_terms.extend(terms)
            self.n_calls += n
            if self.memory_watermark is not None \
                    and self.grammar.n_input >= self.memory_watermark:
                self.spill()
            return n
        sig_col, fn_col, dur_col, t0_col, t1_col = self._bufs
        encode_batch = self.encoder.encode_batch
        bn = self._batch_n
        i = 0
        while i < n:
            take = bs - bn
            if take > n - i:
                take = n - i
            end = i + take
            sig_col[bn:bn + take] = encode_batch(
                fnames[i:end], argses[i:end], take)
            fn_col[bn:bn + take] = fnames[i:end]
            for j in range(take):
                t0 = t0s[i + j]
                t1 = t1s[i + j]
                k = bn + j
                dur_col[k] = t1 - t0
                t0_col[k] = t0
                t1_col[k] = t1
            bn += take
            i = end
            if bn == bs:
                self._batch_n = bn
                self.flush_batch()
                bn = 0
        self._batch_n = bn
        return n

    def spill(self) -> None:
        """Watermark crossing: freeze the live grammar into a frozen
        continuation part and restart Sequitur on a fresh grammar.

        Only the *grammar* is rotated — the CST, encoder, timing
        compressor, and raw-term buffer all key off stable CST terminal
        numbers and stay live, so spilling is invisible to every other
        stage.  ``freeze()`` later splices the parts back together."""
        if self.grammar.n_input == 0:
            return
        self._spill_parts.append(Grammar.freeze(self.grammar))
        self._spill_input += self.grammar.n_input
        self.watermark_spills += 1
        self.grammar = Sequitur(loop_detection=self.loop_detection)

    def flush_partial(self) -> Optional[ShardPartial]:
        """Streaming produce path: package everything observed since the
        previous flush into a :class:`ShardPartial` and rotate the live
        state, generalizing the watermark spill.

        The live grammar is frozen into a continuation part exactly as
        :meth:`spill` does (any watermark parts accumulated since the
        last flush ride along first, in order); the timing compressor
        rotates its two bin grammars; the CST — which stays live and
        append-only — contributes a signature slice plus sparse integer
        count/nanosecond deltas.  A consumer replaying the partials in
        sequence rebuilds the exact one-shot state; see
        :class:`ShardPartial` for the invariant.

        Returns ``None`` when nothing was observed since the last flush.
        """
        self.flush_batch()
        if self.grammar.n_input:
            # same rotation as spill(), but not a *watermark* event
            self._spill_parts.append(Grammar.freeze(self.grammar))
            self._spill_input += self.grammar.n_input
            self.grammar = Sequitur(loop_detection=self.loop_detection)
        n_calls = self._spill_input - self.streamed_calls
        if n_calls == 0:
            return None
        parts = self._spill_parts
        self._spill_parts = []
        self.streamed_calls = self._spill_input

        cst = self.cst
        sigs = cst.sigs
        new_sigs = list(sigs[self._sent_sigs_n:])
        counts_now = list(cst.counts)
        ns_now = [_dur_to_ns(d) for d in cst.dur_sums]
        sent_c, sent_ns = self._sent_counts, self._sent_dur_ns
        n_sent = len(sent_c)
        idx: list[int] = []
        d_counts: list[int] = []
        d_dur_ns: list[int] = []
        for i in range(len(sigs)):
            pc = sent_c[i] if i < n_sent else 0
            pns = sent_ns[i] if i < n_sent else 0
            c = counts_now[i]
            ns = ns_now[i]
            if c != pc or ns != pns:
                idx.append(i)
                d_counts.append(c - pc)
                d_dur_ns.append(ns - pns)
        self._sent_sigs_n = len(sigs)
        self._sent_counts = counts_now
        self._sent_dur_ns = ns_now

        td = ti = None
        if self.timing is not None:
            rotated = self.timing.rotate()
            if rotated is not None:
                td, ti = rotated
        self.partial_flushes += 1
        return ShardPartial(rank=self.rank, n_calls=n_calls,
                            new_sigs=new_sigs, idx=idx, d_counts=d_counts,
                            d_dur_ns=d_dur_ns, parts=parts,
                            timing_duration=td, timing_interval=ti)

    def freeze(self) -> RankShard:
        """Snapshot this rank into a self-contained single-rank shard.
        Terminals in the frozen grammar are this rank's local CST
        indices, which *are* the shard's signature numbering.

        Freezing also drops the hot-path accelerator caches (encoder
        signature memo, CST identity fast path): they are meaningless
        after tracing ends and must never ride along when a compressor
        or its shard is serialized for the parallel reduction.

        If the memory watermark spilled continuation parts during the
        run, they are re-expanded (terminals are stable CST indices)
        and re-fed through one fresh Sequitur pass here.  The re-run
        consumes the exact terminal stream an unsplit run would have,
        so the frozen grammar — and the final trace — is byte-identical
        to a run that never spilled."""
        if self.streamed_calls:
            raise RuntimeError(
                f"rank {self.rank} has streamed {self.streamed_calls} "
                f"calls via flush_partial(); the stream's consumer owns "
                f"the fold — freeze() here would produce a shard missing "
                f"the already-streamed prefix")
        self.flush_batch()
        self.encoder.reset_cache()
        self.cst.reset_cache()
        if self._spill_parts:
            seq = Sequitur(loop_detection=self.loop_detection)
            for part in self._spill_parts:
                seq.append_array(part.expand())
            seq.append_array(self.grammar.expand())
            self.grammar = seq
            self._spill_parts = []
            self._spill_input = 0
        g = Grammar.freeze(self.grammar)
        shard = RankShard(
            base_rank=self.rank, nranks=1,
            sigs=list(self.cst.sigs), counts=list(self.cst.counts),
            dur_ns=[_dur_to_ns(d) for d in self.cst.dur_sums],
            cfg=GrammarSet.single(g),
            calls=[self.grammar.n_input])
        if self.timing is not None:
            d, i = self.timing.freeze()
            shard.timing_duration = GrammarSet.single(d)
            shard.timing_interval = GrammarSet.single(i)
        return shard
