"""AVL interval tree for live memory segments (§3.3.3).

The paper tracks currently-allocated segments in an AVL tree sorted by
start address; looking up the segment containing a pointer is O(log n).
This is a textbook AVL implementation specialised to that use: keys are
segment start addresses, each node carries the segment size and payload
(the symbolic id and device location), and ``find_containing`` walks the
tree once.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class AVLNode:
    __slots__ = ("addr", "size", "payload", "left", "right", "height")

    def __init__(self, addr: int, size: int, payload: Any):
        self.addr = addr
        self.size = size
        self.payload = payload
        self.left: Optional["AVLNode"] = None
        self.right: Optional["AVLNode"] = None
        self.height = 1


def _h(node: Optional[AVLNode]) -> int:
    return node.height if node is not None else 0


def _update(node: AVLNode) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _balance_factor(node: AVLNode) -> int:
    return _h(node.left) - _h(node.right)


def _rot_right(y: AVLNode) -> AVLNode:
    x = y.left
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rot_left(x: AVLNode) -> AVLNode:
    y = x.right
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: AVLNode) -> AVLNode:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rot_left(node.left)
        return _rot_right(node)
    if bf < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rot_right(node.right)
        return _rot_left(node)
    return node


class IntervalTree:
    """AVL tree over disjoint [addr, addr+size) segments."""

    def __init__(self) -> None:
        self._root: Optional[AVLNode] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- mutation ----------------------------------------------------------------

    def insert(self, addr: int, size: int, payload: Any) -> None:
        """Insert a segment; raises on duplicate start address."""
        self._root = self._insert(self._root, addr, size, payload)
        self._count += 1

    def _insert(self, node: Optional[AVLNode], addr: int, size: int,
                payload: Any) -> AVLNode:
        if node is None:
            return AVLNode(addr, size, payload)
        if addr < node.addr:
            node.left = self._insert(node.left, addr, size, payload)
        elif addr > node.addr:
            node.right = self._insert(node.right, addr, size, payload)
        else:
            raise KeyError(f"segment at {addr:#x} already tracked")
        return _rebalance(node)

    def remove(self, addr: int) -> Any:
        """Remove the segment starting at *addr*; returns its payload."""
        self._root, payload = self._remove(self._root, addr)
        self._count -= 1
        return payload

    def _remove(self, node: Optional[AVLNode],
                addr: int) -> tuple[Optional[AVLNode], Any]:
        if node is None:
            raise KeyError(f"no segment starts at {addr:#x}")
        if addr < node.addr:
            node.left, payload = self._remove(node.left, addr)
        elif addr > node.addr:
            node.right, payload = self._remove(node.right, addr)
        else:
            payload = node.payload
            if node.left is None:
                return node.right, payload
            if node.right is None:
                return node.left, payload
            # two children: replace with in-order successor
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.addr, node.size, node.payload = (succ.addr, succ.size,
                                                  succ.payload)
            node.right, _ = self._remove(node.right, succ.addr)
        return _rebalance(node), payload

    # -- queries -------------------------------------------------------------------

    def find_containing(self, addr: int) -> Optional[AVLNode]:
        """The segment with ``node.addr <= addr < node.addr + node.size``."""
        node = self._root
        best: Optional[AVLNode] = None
        while node is not None:
            if addr < node.addr:
                node = node.left
            else:
                best = node
                node = node.right
        if best is not None and addr < best.addr + best.size:
            return best
        return None

    def find_exact(self, addr: int) -> Optional[AVLNode]:
        node = self._root
        while node is not None:
            if addr < node.addr:
                node = node.left
            elif addr > node.addr:
                node = node.right
            else:
                return node
        return None

    def items(self) -> Iterator[AVLNode]:
        """In-order traversal (ascending addresses)."""
        stack: list[AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    def check_invariants(self) -> None:
        """Assert AVL balance and BST/disjointness properties (tests)."""
        def walk(node: Optional[AVLNode]) -> tuple[int, int, int, int]:
            # returns (height, min_addr, max_end, count)
            if node is None:
                return 0, 1 << 62, -1, 0
            lh, lmin, lmax_end, lc = walk(node.left)
            rh, rmin, rmax_end, rc = walk(node.right)
            assert abs(lh - rh) <= 1, f"unbalanced at {node.addr:#x}"
            assert node.height == 1 + max(lh, rh), "stale height"
            if node.left is not None:
                assert lmax_end <= node.addr, "overlap/order violation (left)"
            if node.right is not None:
                assert node.addr + node.size <= rmin, \
                    "overlap/order violation (right)"
            return (node.height,
                    min(lmin, node.addr),
                    max(lmax_end, rmax_end, node.addr + node.size),
                    lc + rc + 1)

        _, _, _, count = walk(self._root)
        assert count == self._count, "count drift"
