"""Trace decompression and decoding.

The paper's decompressor is "a process of recursive rule application";
expanding the leftmost non-terminal first yields the ranks' traces in
rank order, and extracting a single rank is cheap.  This module goes one
step further and decodes terminal symbols back into named
:class:`~repro.core.records.DecodedCall` records via the merged CST,
giving the uncompressed trace records the paper's decoder emits.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .errors import MissingRankError
from .records import DecodedCall, sig_to_params
from .timing import TimingMeta, reconstruct_times
from .trace_format import TraceFile


class TraceDecoder:
    """Random-access decoder over a parsed :class:`TraceFile`.

    Asking for a rank outside ``[0, nprocs)`` is a caller bug and raises
    :class:`IndexError`; asking for an in-range rank the trace has no
    data for (a salvaged trace with losses) raises the structured
    :class:`~repro.core.errors.MissingRankError`, so salvage-aware
    callers can skip lost ranks deliberately instead of catching bare
    ``KeyError``/``IndexError``.
    """

    def __init__(self, trace: TraceFile):
        self.trace = trace
        self._sig_cache: dict[int, tuple[str, dict]] = {}

    @classmethod
    def from_bytes(cls, data: bytes, salvage: bool = False) -> "TraceDecoder":
        return cls(TraceFile.from_bytes(data, salvage=salvage))

    @property
    def nprocs(self) -> int:
        return self.trace.nprocs

    @property
    def salvage(self):
        """The trace's salvage report (None for an intact trace)."""
        return self.trace.salvage

    def _rank_uid(self, rank: int) -> int:
        """The rank's unique-grammar index, with structured errors."""
        if not 0 <= rank < self.trace.nprocs:
            raise IndexError(f"rank {rank} out of range")
        cfg = self.trace.cfg
        if rank >= len(cfg.rank_uid):
            raise MissingRankError(rank, "absent from the CFG rank map")
        uid = cfg.rank_uid[rank]
        if uid >= len(cfg.unique):
            raise MissingRankError(
                rank, f"rank map points at grammar {uid} but only "
                f"{len(cfg.unique)} were recovered")
        return uid

    # -- terminal level ------------------------------------------------------------------

    def rank_terminals(self, rank: int) -> list[int]:
        """One rank's call sequence as global CST terminal symbols."""
        cfg = self.trace.cfg
        return cfg.unique[self._rank_uid(rank)].expand()

    def all_terminals(self) -> list[list[int]]:
        """Every rank's sequence; identical ranks share one expansion."""
        cfg = self.trace.cfg
        expanded = [g.expand() for g in cfg.unique]
        return [expanded[self._rank_uid(rank)]
                for rank in range(len(cfg.rank_uid))]

    # -- record level ----------------------------------------------------------------------

    def _decode_sig(self, term: int) -> tuple[str, dict]:
        got = self._sig_cache.get(term)
        if got is None:
            got = sig_to_params(self.trace.cst.sigs[term])
            self._sig_cache[term] = got
        return got

    def rank_calls(self, rank: int) -> Iterator[DecodedCall]:
        cst = self.trace.cst
        for term in self.rank_terminals(rank):
            fname, params = self._decode_sig(term)
            count = cst.counts[term]
            yield DecodedCall(
                rank=rank, fname=fname, params=params,
                avg_duration=(cst.dur_sums[term] / count if count else 0.0),
                sig_count=count)

    def rank_times(self, rank: int) -> list[tuple[float, float]]:
        """Reconstructed ``(t_start, t_end)`` per call for one rank
        (lossy-timing traces only).

        Honours the binning bases persisted in the trace's timing-meta
        section: each terminal maps to one function, so its calls were
        all binned with that function's base (or the default), and
        reconstruction replays exactly those bases.  Traces predating
        the meta section fall back to the default base.
        """
        trace = self.trace
        td, ti = trace.timing_duration, trace.timing_interval
        if td is None or ti is None:
            raise ValueError("trace has no lossy-timing sections")
        terms = self.rank_terminals(rank)
        if rank >= len(td.rank_uid) or rank >= len(ti.rank_uid):
            raise MissingRankError(rank, "absent from the timing rank maps")
        dbins = td.unique[td.rank_uid[rank]].expand()
        ibins = ti.unique[ti.rank_uid[rank]].expand()
        meta = trace.timing_meta or TimingMeta()
        term_bases = None
        if meta.per_function_base:
            pfb = meta.per_function_base
            term_bases = {}
            for term in set(terms):
                b = pfb.get(self._decode_sig(term)[0])
                if b is not None:
                    term_bases[term] = b
        return reconstruct_times(dbins, ibins, terms, meta.base,
                                 term_bases=term_bases)

    def call_count(self, rank: Optional[int] = None) -> int:
        cfg = self.trace.cfg
        if rank is not None:
            # expand only the requested rank's unique grammar — asking for
            # one rank must not pay for every grammar in the trace
            return cfg.unique[self._rank_uid(rank)].expanded_length()
        lengths = [g.expanded_length() for g in cfg.unique]
        return sum(lengths[self._rank_uid(r)]
                   for r in range(len(cfg.rank_uid)))

    # -- summaries ----------------------------------------------------------------------------

    def function_histogram(self) -> dict[str, int]:
        """Total calls per MPI function across all ranks (from CST stats)."""
        out: dict[str, int] = {}
        for term, sig in enumerate(self.trace.cst.sigs):
            fname, _ = self._decode_sig(term)
            out[fname] = out.get(fname, 0) + self.trace.cst.counts[term]
        return out
