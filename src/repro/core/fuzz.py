"""Deterministic trace-corruption fuzzer.

The decoder's contract (see :mod:`repro.core.errors`) is that a damaged
trace **always** raises a structured :class:`TraceFormatError` subclass —
never a raw ``IndexError``/``KeyError``, never a hang, and never a
silently wrong decode.  This module attacks a known-good blob with a
seeded, reproducible mutation set and classifies every outcome:

* **bit flips** at every section boundary (length prefixes, CRC fields,
  first/last payload bytes, each header field) plus seeded random
  offsets;
* **truncations** at every boundary, one byte either side of it, and at
  seeded random lengths.

Because every section is checksummed (format v2), any surviving mutation
is a bug in either the format or the fuzzer — the CI smoke job and the
tier-1 tests assert zero crashes and zero silent successes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from .decoder import TraceDecoder
from .errors import TraceFormatError
from .trace_format import HEADER_FIXED, section_spans

#: outcome kinds
STRUCTURED = "structured"   # raised a TraceFormatError subclass: correct
CRASH = "crash"             # raised anything else: decoder bug
SILENT = "silent"           # decoded without complaint: integrity bug
SALVAGED = "salvaged"       # salvage mode recovered a partial decode


@dataclass
class FuzzOutcome:
    mutation: str
    kind: str
    error: str = ""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.mutation}" + \
            (f" -> {self.error}" if self.error else "")


@dataclass
class FuzzReport:
    total: int = 0
    structured: int = 0
    #: mutations the salvage parser recovered a partial decode from
    #: (only nonzero when fuzzing with ``salvage=True``)
    salvaged: int = 0
    #: every non-structured outcome, for diagnosis
    failures: list[FuzzOutcome] = field(default_factory=list)
    #: histogram of raised error class names
    by_error: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.total > 0 and not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        errs = ", ".join(f"{k}×{v}" for k, v in sorted(self.by_error.items()))
        return (f"corruption fuzz: {status} ({self.total} mutations, "
                f"{self.structured} structured errors, "
                + (f"{self.salvaged} salvaged, " if self.salvaged else "")
                + f"{len(self.failures)} failures; {errs})")


def _flip(blob: bytes, offset: int, bit: int) -> bytes:
    mut = bytearray(blob)
    mut[offset] ^= 1 << bit
    return bytes(mut)


def iter_blob_mutations(blob: bytes, spans: dict[str, tuple[int, int]],
                        seed: int = 0,
                        n_random: int = 400) -> Iterator[tuple[str, bytes]]:
    """Format-agnostic mutation generator: boundary-targeted
    flips/truncations around the given ``{name: (start, end)}`` *spans*,
    then ``n_random`` seeded random mutations.  The trace fuzzer feeds
    it :func:`~repro.core.trace_format.section_spans`; the ingest-frame
    fuzzer (:mod:`repro.ingest.fuzz`) feeds it frame boundaries — same
    attack, different victim.
    """
    n = len(blob)
    boundaries = sorted({off for a, b in spans.values() for off in (a, b)})
    names = {a: name for name, (a, b) in spans.items()}

    for off in boundaries:
        for cut in (off - 1, off, off + 1):
            if 0 <= cut < n:
                where = names.get(off, "?")
                yield (f"truncate to {cut} bytes (near {where})",
                       blob[:cut])
        for probe in (off, off - 1):
            if 0 <= probe < n:
                yield (f"flip bit 0 of byte {probe} "
                       f"(near {names.get(off, '?')})",
                       _flip(blob, probe, 0))

    rng = random.Random(seed)
    for i in range(n_random):
        if rng.random() < 0.5:
            off = rng.randrange(n)
            bit = rng.randrange(8)
            yield (f"flip bit {bit} of byte {off} (random #{i})",
                   _flip(blob, off, bit))
        else:
            cut = rng.randrange(n)
            yield f"truncate to {cut} bytes (random #{i})", blob[:cut]


def iter_mutations(blob: bytes, seed: int = 0,
                   n_random: int = 400) -> Iterator[tuple[str, bytes]]:
    """Yield ``(description, mutated_blob)`` pairs for a trace blob:
    boundary-targeted flips/truncations at every section boundary first,
    then ``n_random`` seeded random mutations.  Identity mutations (e.g.
    truncation at the full length) are skipped by the caller's
    ``mut == blob`` check.
    """
    return iter_blob_mutations(blob, section_spans(blob), seed=seed,
                               n_random=n_random)


def corpus_mutations(blob: bytes) -> Iterator[tuple[str, bytes]]:
    """Semantically-targeted corpus: mutations every section checksum
    still accepts.  Random bit flips essentially never survive the
    CRCs, so the missing-rank regressions are built deliberately by
    editing the (unprotected) header's ``nprocs`` varint — the trace
    then declares more or fewer ranks than its CFG rank map covers.
    Strict parsing must reject the mismatch with a structured error;
    salvage parsing must recover the covered ranks and answer requests
    for the others with :class:`~repro.core.errors.MissingRankError`,
    never a bare ``IndexError``/``KeyError``."""
    if len(blob) <= HEADER_FIXED:
        return
    nprocs = blob[HEADER_FIXED]
    if nprocs >= 0x7f:  # multi-byte varint; the single-byte edits below
        return          # would change its meaning, not its value
    rest = blob[HEADER_FIXED + 1:]

    def with_nprocs(n: int) -> bytes:
        return blob[:HEADER_FIXED] + bytes([n]) + rest

    yield ("header declares one more rank than the rank map covers",
           with_nprocs(nprocs + 1))
    if nprocs + 16 < 0x80:
        yield ("header declares 16 phantom ranks past the rank map",
               with_nprocs(nprocs + 16))
    if nprocs >= 2:
        yield ("header declares one fewer rank than the rank map covers",
               with_nprocs(nprocs - 1))
    yield "header declares zero ranks", with_nprocs(0)


def _deep_decode(blob: bytes, *, salvage: bool = False) -> None:
    """Parse and then *fully* decode, so lazily-materialized corruption
    (bad rule references, broken CST entries) cannot hide.  In salvage
    mode, ranks the salvage report declares lost are skipped — decoding
    the survivors must still never crash."""
    dec = TraceDecoder.from_bytes(blob, salvage=salvage)
    lost = (set(dec.salvage.lost_ranks)
            if salvage and dec.salvage is not None else set())
    dec.call_count()
    for rank in range(dec.nprocs):
        if rank in lost:
            continue
        for _ in dec.rank_calls(rank):
            pass
    dec.function_histogram()


def run_fuzz(blob: bytes, seed: int = 0, n_random: int = 400, *,
             salvage: bool = False) -> FuzzReport:
    """Attack *blob* with the deterministic mutation set (semantic
    corpus first, then boundary and random mutations).

    Strict mode (the default): every mutation must make the decoder
    raise a :class:`TraceFormatError` subclass — a silent decode is an
    integrity bug.  Salvage mode (``salvage=True``): every mutation
    must either raise a structured error (header-level damage) or
    produce a partial decode whose surviving ranks decode cleanly —
    a crash is a salvage-parser bug either way."""
    report = FuzzReport()
    mutations = itertools.chain(
        corpus_mutations(blob),
        iter_mutations(blob, seed=seed, n_random=n_random))
    for desc, mut in mutations:
        if mut == blob:
            continue
        report.total += 1
        try:
            _deep_decode(mut, salvage=salvage)
        except TraceFormatError as e:
            report.structured += 1
            cls = type(e).__name__
            report.by_error[cls] = report.by_error.get(cls, 0) + 1
        except Exception as e:  # noqa: BLE001 — the point of the fuzzer
            report.failures.append(FuzzOutcome(
                desc, CRASH, f"{type(e).__name__}: {e}"))
        else:
            if salvage:
                report.salvaged += 1
            else:
                report.failures.append(FuzzOutcome(desc, SILENT))
    return report
