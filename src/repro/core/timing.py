"""Lossy timing compression (§3.2, evaluated in §4.4 / Fig 10).

Two modes:

* **aggregate** (Pilgrim's default): only per-signature count and mean
  duration, stored in the CST — handled there, nothing here runs.
* **lossy**: per call, the *duration* and the *interval* since the
  previous call with the same signature are kept, both binned into
  exponential buckets ``bin = ceil(log_b x)`` so the relative error is at
  most ``b - 1``.  Intervals use the paper's drift-free adjustment: the
  next interval is measured against the *reconstructed* clock
  ``sum(b^bin_j)``, not the true one, so absolute timestamps recovered in
  post-processing stay within the same relative error bound.

The resulting bin streams are fed to two more Sequitur grammars (one for
durations, one for intervals), exactly as the paper does.
"""

from __future__ import annotations

import math
from typing import Optional

from .grammar import Grammar
from .sequitur import Sequitur

#: bins are shifted by this offset so Sequitur sees non-negative terminals
BIN_OFFSET = 4096
#: durations/intervals below this are clamped into the lowest bin
_EPS = 1e-12


def bin_value(x: float, base: float) -> int:
    """Exponential bin index: ``ceil(log_base x)`` (clamped)."""
    if x < _EPS:
        x = _EPS
    b = math.ceil(math.log(x) / math.log(base))
    if b < -BIN_OFFSET:
        b = -BIN_OFFSET
    elif b > BIN_OFFSET:
        b = BIN_OFFSET
    return b


def unbin_value(b: int, base: float) -> float:
    """Representative value of a bin (its upper edge, so the true value is
    within a factor of ``base`` below it)."""
    return base ** b


class TimingCompressor:
    """Per-rank lossy duration/interval compression."""

    def __init__(self, base: float = 1.2,
                 per_function_base: Optional[dict[str, float]] = None,
                 loop_detection: bool = True):
        if base <= 1.0:
            raise ValueError("binning base must exceed 1.0")
        self.base = base
        #: §3.2: the base is user-tunable per function
        self.per_function_base = per_function_base or {}
        self.duration_grammar = Sequitur(loop_detection=loop_detection)
        self.interval_grammar = Sequitur(loop_detection=loop_detection)
        #: per-signature-terminal reconstructed clock (sum of b^bin)
        self._recon: dict[int, float] = {}
        self.n_calls = 0
        #: raw streams kept only when verification asks for them
        self.keep_raw = False
        self.raw_durations: list[float] = []
        self.raw_starts: list[float] = []

    def record(self, term: int, fname: str, t0: float, t1: float) -> None:
        base = self.per_function_base.get(fname, self.base)
        dbin = bin_value(t1 - t0, base)
        self.duration_grammar.append(dbin + BIN_OFFSET)
        # drift-free interval: measure against the reconstructed clock
        recon = self._recon.get(term, 0.0)
        ibin = bin_value(t0 - recon, base)
        self.interval_grammar.append(ibin + BIN_OFFSET)
        self._recon[term] = recon + unbin_value(ibin, base)
        self.n_calls += 1
        if self.keep_raw:
            self.raw_durations.append(t1 - t0)
            self.raw_starts.append(t0)

    # -- freezing -----------------------------------------------------------------

    def freeze(self) -> tuple[Grammar, Grammar]:
        return (Grammar.freeze(self.duration_grammar),
                Grammar.freeze(self.interval_grammar))


def reconstruct_times(duration_bins: list[int], interval_bins: list[int],
                      terms: list[int], base: float = 1.2
                      ) -> list[tuple[float, float]]:
    """Post-processing: recover (t_start, t_end) per call from the binned
    streams, replaying the per-signature reconstructed clocks.

    Guarantees (tested): ``t_start`` is within relative error ``base - 1``
    of the true entry time, likewise the duration.
    """
    recon: dict[int, float] = {}
    out = []
    for dbin, ibin, term in zip(duration_bins, interval_bins, terms):
        prev = recon.get(term, 0.0)
        t_start = prev + unbin_value(ibin - BIN_OFFSET, base)
        recon[term] = t_start
        d = unbin_value(dbin - BIN_OFFSET, base)
        out.append((t_start, t_start + d))
    return out
