"""Lossy timing compression (§3.2, evaluated in §4.4 / Fig 10).

Two modes:

* **aggregate** (Pilgrim's default): only per-signature count and mean
  duration, stored in the CST — handled there, nothing here runs.
* **lossy**: per call, the *duration* and the *interval* since the
  previous call with the same signature are kept, both binned into
  exponential buckets ``bin = ceil(log_b x)`` so the relative error is at
  most ``b - 1``.  Intervals use the paper's drift-free adjustment: the
  next interval is measured against the *reconstructed* clock
  ``sum(b^bin_j)``, not the true one, so absolute timestamps recovered in
  post-processing stay within the same relative error bound.

The resulting bin streams are fed to two more Sequitur grammars (one for
durations, one for intervals), exactly as the paper does.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .errors import CorruptTraceError
from .grammar import Grammar
from .packing import Reader, read_value, write_value
from .sequitur import Sequitur

#: bins are shifted by this offset so Sequitur sees non-negative terminals
BIN_OFFSET = 4096
#: durations/intervals below this are clamped into the lowest bin
_EPS = 1e-12


class BinClampWarning(RuntimeWarning):
    """A duration/interval fell outside the representable bin range
    ``base**±BIN_OFFSET`` and was clamped to the boundary bin; the
    documented ``base - 1`` relative-error bound does not hold for that
    value."""


def _raw_bin(x: float, base: float) -> int:
    """Unclamped ``ceil(log_base x)``; infinities (and NaN) land beyond
    the high boundary instead of raising."""
    if x < _EPS:
        x = _EPS
    try:
        return math.ceil(math.log(x) / math.log(base))
    except (OverflowError, ValueError):
        return BIN_OFFSET + 1


def _warn_clamp(b: int, base: float) -> None:
    # the message deliberately omits the value so the default warning
    # filter dedupes a pathological trace to one line per direction
    kind = "overflow" if b > 0 else "underflow"
    warnings.warn(
        f"timing bin {kind}: |bin| > {BIN_OFFSET} at base {base}; value "
        f"clamped to the boundary bin, the base-1 relative-error bound "
        f"does not hold for it", BinClampWarning, stacklevel=3)


def bin_value(x: float, base: float) -> int:
    """Exponential bin index: ``ceil(log_base x)``.

    Bins outside ``±BIN_OFFSET`` are clamped to the boundary and a
    :class:`BinClampWarning` is emitted, since the clamp aliases extreme
    values and voids the relative-error bound for them.
    """
    b = _raw_bin(x, base)
    if -BIN_OFFSET <= b <= BIN_OFFSET:
        return b
    _warn_clamp(b, base)
    return -BIN_OFFSET if b < 0 else BIN_OFFSET


def unbin_value(b: int, base: float) -> float:
    """Representative value of a bin (its upper edge, so the true value is
    within a factor of ``base`` below it)."""
    return base ** b


@dataclass
class TimingMeta:
    """The binning bases a lossy trace was recorded with (§3.2).

    Persisted in the trace so :func:`reconstruct_times` can undo the
    per-function base overrides — without this, reconstruction of a
    trace recorded with ``per_function_base`` silently used the default
    base for every call and produced wrong timestamps.
    """

    base: float = 1.2
    per_function_base: dict[str, float] = field(default_factory=dict)

    def base_for(self, fname: str) -> float:
        return self.per_function_base.get(fname, self.base)

    # -- serialization ------------------------------------------------------------

    def write_to(self, out: bytearray) -> None:
        write_value(out, (float(self.base),
                          tuple(sorted(self.per_function_base.items()))))

    @classmethod
    def read_from(cls, r: Reader) -> "TimingMeta":
        val = read_value(r)
        if (not isinstance(val, tuple) or len(val) != 2
                or isinstance(val[0], bool)
                or not isinstance(val[0], (int, float))
                or not isinstance(val[1], tuple)):
            raise CorruptTraceError("malformed timing-meta section")
        base = float(val[0])
        if not base > 1.0:
            raise CorruptTraceError(
                f"timing-meta base {base} is not > 1.0")
        pfb: dict[str, float] = {}
        for item in val[1]:
            if (not isinstance(item, tuple) or len(item) != 2
                    or not isinstance(item[0], str)
                    or isinstance(item[1], bool)
                    or not isinstance(item[1], (int, float))
                    or not float(item[1]) > 1.0):
                raise CorruptTraceError(
                    "malformed per-function base in timing-meta section")
            pfb[item[0]] = float(item[1])
        return cls(base=base, per_function_base=pfb)


class TimingCompressor:
    """Per-rank lossy duration/interval compression."""

    #: bin memo entries beyond this are churn; drop rather than track LRU
    _MEMO_CAP = 1 << 16

    def __init__(self, base: float = 1.2,
                 per_function_base: Optional[dict[str, float]] = None,
                 loop_detection: bool = True):
        if base <= 1.0:
            raise ValueError("binning base must exceed 1.0")
        self.base = base
        #: §3.2: the base is user-tunable per function
        self.per_function_base = per_function_base or {}
        self.loop_detection = loop_detection
        self.duration_grammar = Sequitur(loop_detection=loop_detection)
        self.interval_grammar = Sequitur(loop_detection=loop_detection)
        #: per-signature-terminal reconstructed clock (sum of b^bin)
        self._recon: dict[int, float] = {}
        self.n_calls = 0
        #: clamp events observed while binning (each out-of-range call
        #: counts; clamped values are never memoized, keeping this exact)
        self.n_clamped = 0
        #: (value, base) -> bin memo; binning is pure, so memo hits are
        #: byte-identical to recomputation
        self._bin_memo: dict[tuple[float, float], int] = {}
        #: raw streams kept only when verification asks for them
        self.keep_raw = False
        self.raw_durations: list[float] = []
        self.raw_starts: list[float] = []

    def meta(self) -> TimingMeta:
        return TimingMeta(base=self.base,
                          per_function_base=dict(self.per_function_base))

    def _bin(self, x: float, base: float) -> int:
        key = (x, base)
        memo = self._bin_memo
        b = memo.get(key)
        if b is not None:
            return b
        b = _raw_bin(x, base)
        if b < -BIN_OFFSET or b > BIN_OFFSET:
            self.n_clamped += 1
            _warn_clamp(b, base)
            return -BIN_OFFSET if b < 0 else BIN_OFFSET
        if len(memo) >= self._MEMO_CAP:
            memo.clear()
        memo[key] = b
        return b

    def record(self, term: int, fname: str, t0: float, t1: float) -> None:
        base = self.per_function_base.get(fname, self.base)
        dbin = self._bin(t1 - t0, base)
        self.duration_grammar.append(dbin + BIN_OFFSET)
        # drift-free interval: measure against the reconstructed clock
        recon = self._recon.get(term, 0.0)
        ibin = self._bin(t0 - recon, base)
        self.interval_grammar.append(ibin + BIN_OFFSET)
        self._recon[term] = recon + unbin_value(ibin, base)
        self.n_calls += 1
        if self.keep_raw:
            self.raw_durations.append(t1 - t0)
            self.raw_starts.append(t0)

    def record_batch(self, terms, fnames, t0s, t1s, n: int) -> None:
        """Record *n* calls from columns in one pass.

        Byte-identical to *n* :meth:`record` calls: the duration and
        interval grammars are independent, so feeding each one its whole
        bin column via ``append_array`` preserves the per-grammar append
        order exactly.
        """
        pfb = self.per_function_base
        default_base = self.base
        recon = self._recon
        bin_ = self._bin
        dbins = [0] * n
        ibins = [0] * n
        for i in range(n):
            t0 = t0s[i]
            base = pfb.get(fnames[i], default_base) if pfb else default_base
            dbins[i] = bin_(t1s[i] - t0, base) + BIN_OFFSET
            term = terms[i]
            prev = recon.get(term, 0.0)
            ib = bin_(t0 - prev, base)
            ibins[i] = ib + BIN_OFFSET
            recon[term] = prev + base ** ib
        self.duration_grammar.append_array(dbins)
        self.interval_grammar.append_array(ibins)
        self.n_calls += n
        if self.keep_raw:
            self.raw_durations.extend(t1s[i] - t0s[i] for i in range(n))
            self.raw_starts.extend(t0s[i] for i in range(n))

    # -- freezing -----------------------------------------------------------------

    def freeze(self) -> tuple[Grammar, Grammar]:
        return (Grammar.freeze(self.duration_grammar),
                Grammar.freeze(self.interval_grammar))

    def rotate(self) -> Optional[tuple[Grammar, Grammar]]:
        """Freeze the two bin grammars into a continuation part and
        restart them (the streaming-ingest produce path, mirroring
        :meth:`RankCompressor.spill <repro.core.shard.RankCompressor.
        spill>` for the main grammar).

        Only the *grammars* rotate — the reconstructed clocks, the bin
        memo, and the clamp counter stay live, so the bin streams across
        rotations concatenate to exactly the stream an unrotated run
        would have fed Sequitur.  Returns ``None`` when no calls were
        recorded since the previous rotation.
        """
        if self.duration_grammar.n_input == 0:
            return None
        parts = (Grammar.freeze(self.duration_grammar),
                 Grammar.freeze(self.interval_grammar))
        self.duration_grammar = Sequitur(loop_detection=self.loop_detection)
        self.interval_grammar = Sequitur(loop_detection=self.loop_detection)
        return parts


def reconstruct_times(duration_bins: list[int], interval_bins: list[int],
                      terms: list[int], base: float = 1.2,
                      term_bases: Optional[Mapping[int, float]] = None
                      ) -> list[tuple[float, float]]:
    """Post-processing: recover (t_start, t_end) per call from the binned
    streams, replaying the per-signature reconstructed clocks.

    *term_bases* maps signature terminals to the binning base they were
    recorded with, for traces recorded with per-function base overrides
    (every call of one terminal shares one function, hence one base);
    terminals not in the map use *base*.  :meth:`TraceDecoder.rank_times
    <repro.core.decoder.TraceDecoder.rank_times>` derives the map from
    the trace's persisted :class:`TimingMeta`.

    Guarantees (tested): ``t_start`` is within relative error ``b - 1``
    of the true entry time for that call's base ``b``, likewise the
    duration.
    """
    recon: dict[int, float] = {}
    out = []
    for dbin, ibin, term in zip(duration_bins, interval_bins, terms):
        b = term_bases.get(term, base) if term_bases else base
        prev = recon.get(term, 0.0)
        t_start = prev + unbin_value(ibin - BIN_OFFSET, b)
        recon[term] = t_start
        d = unbin_value(dbin - BIN_OFFSET, b)
        out.append((t_start, t_start + d))
    return out
