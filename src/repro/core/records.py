"""Decoded trace records.

A decoded record pairs the MPI function with its symbolically-encoded
parameters (named via the registry).  ``materialize`` additionally undoes
the relative-rank encoding given the owning rank, recovering absolute
ranks/tags — the representation a replay engine or analysis tool consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mpisim import funcs as F
from .relative import MARK_ABS, MARK_REL, MARK_SPECIAL, decode as rel_decode


@dataclass(frozen=True)
class DecodedCall:
    """One MPI call reconstructed from a compressed trace."""

    rank: int
    fname: str
    #: parameter name -> encoded value (symbolic ids, relative ranks)
    params: dict[str, Any]
    #: per-signature mean duration from the CST (seconds)
    avg_duration: float = 0.0
    #: total calls sharing this signature across all ranks
    sig_count: int = 0

    def materialized(self) -> dict[str, Any]:
        """Parameters with relative ranks/tags resolved to absolute values
        (symbolic object ids are left symbolic — that is the trace's
        'near lossless' representation of handles and buffers)."""
        spec = F.FUNCS[self.fname]
        out: dict[str, Any] = {}
        for p in spec.params:
            v = self.params.get(p.name)
            if p.kind == F.K_RANK and isinstance(v, tuple) and len(v) == 2 \
                    and v[0] in (MARK_SPECIAL, MARK_REL, MARK_ABS):
                out[p.name] = rel_decode(v, self._ctx_rank())
            elif p.kind in (F.K_ROOT, F.K_TAG, F.K_COLOR, F.K_KEY) \
                    and isinstance(v, tuple) and len(v) == 2:
                out[p.name] = rel_decode(v, self._ctx_rank())
            else:
                out[p.name] = v
        return out

    def _ctx_rank(self) -> int:
        # Relative encodings are taken against the caller's rank in the
        # call's communicator; for world-comm calls that equals the world
        # rank.  Sub-communicator context requires replaying communicator
        # construction (repro.core.decoder.CommReplayer does this); records
        # materialized through the decoder get the right context injected.
        return self.rank

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"[{self.rank}] {self.fname}({args})"


def sig_to_params(sig: tuple) -> tuple[str, dict[str, Any]]:
    """Split a flat signature tuple into (fname, named params)."""
    fid = sig[0]
    spec = F.BY_ID[fid]
    values = sig[1:]
    if len(values) != len(spec.params):
        raise ValueError(
            f"signature arity mismatch for {spec.name}: "
            f"{len(values)} values vs {len(spec.params)} params")
    return spec.name, {p.name: v for p, v in zip(spec.params, values)}
