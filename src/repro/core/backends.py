"""Pluggable tracer-backend registry.

Every place that attaches a tracer to a simulated run — the CLI, the
experiment runner, the benchmarks — used to hand-roll its own
``PilgrimTracer(...)`` / ``ScalaTraceTracer(...)`` construction.  This
module centralizes that: a backend is a named factory taking one shared
:class:`TracerOptions`, and :func:`make_tracer` is the only construction
path.

Built-in backends:

=============  =====================================================
``pilgrim``    the paper's tracer (CST + CFG compression, §2-3)
``scalatrace`` the ScalaTrace-style baseline (RSD/PRSD, §4 comparison)
``raw``        verbatim per-rank signature streams, no compression —
               the honest upper bound every figure is measured against
``null``       observes and counts calls but stores nothing — the
               floor for overhead comparisons
=============  =====================================================

Third parties register their own with :func:`register_backend` (usable
as a decorator).  Every backend's tracer exposes ``result`` after the
run with at least ``trace_bytes``, ``total_calls`` and ``trace_size``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..mpisim.hooks import TracerHooks
from .encoder import CommIdSpace, PerRankEncoder, WinIdSpace
from .packing import write_uvarint, write_value


@dataclass
class TracerOptions:
    """The options every backend understands (backends ignore what they
    cannot honor — e.g. ``jobs`` on a tracer with no merge stage)."""

    #: lossy per-call timing (Pilgrim §3.2) instead of aggregate stats
    lossy_timing: bool = False
    #: retain raw per-rank streams for lossless verification
    keep_raw: bool = False
    #: worker processes for a parallelizable finalize (1 = serial)
    jobs: int = 1
    #: hot-path signature/CST memoization (False = the uncached
    #: benchmark baseline; traces are byte-identical either way)
    signature_cache: bool = True
    #: columnar hot path: buffer this many calls per rank and run the
    #: CST/Sequitur/timing stages a whole batch at a time (byte-identical
    #: to per-call operation; 1 = the classic per-call path)
    batch_size: int = 1
    #: self-instrumentation registry (None = disabled, zero overhead)
    metrics: Any = None
    #: convenience: create an enabled metrics registry when none is
    #: given, so phase/stats profiling is one flag instead of a registry
    profile: bool = False
    #: a FaultPlan (or pre-armed FaultInjector) to inject during the
    #: run and its finalize pipeline; None = every injection point is a
    #: no-op None check
    fault_plan: Any = None
    #: RetryPolicy for the resilient pipeline (None = defaults when a
    #: fault plan is armed, no supervision otherwise)
    retry: Any = None
    #: soft per-rank memory watermark for degraded-mode tracing
    #: (see RankCompressor.spill); None = disabled
    memory_watermark: Optional[int] = None
    #: backend-specific constructor kwargs, passed through verbatim
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Eager validation: every consumer (CLI, facade, ingest client,
        # experiment runner) builds one of these, so a bad value should
        # fail here with the field's name — not deep inside
        # RankCompressor after a run has already started.
        if self.batch_size < 1:
            raise ValueError(
                f"TracerOptions.batch_size must be >= 1, "
                f"got {self.batch_size}")
        if self.jobs < 1:
            raise ValueError(
                f"TracerOptions.jobs must be >= 1, got {self.jobs}")
        if self.memory_watermark is not None and self.memory_watermark < 1:
            raise ValueError(
                f"TracerOptions.memory_watermark must be >= 1 (or None "
                f"to disable), got {self.memory_watermark}")


BackendFactory = Callable[[TracerOptions], TracerHooks]

_BACKENDS: dict[str, BackendFactory] = {}


def register_backend(name: str,
                     factory: Optional[BackendFactory] = None, *,
                     replace: bool = False):
    """Register *factory* under *name*; usable as a decorator."""
    def _register(fn: BackendFactory) -> BackendFactory:
        if name in _BACKENDS and not replace:
            raise ValueError(f"tracer backend {name!r} already registered")
        _BACKENDS[name] = fn
        return fn
    return _register(factory) if factory is not None else _register


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def make_tracer(name: str, options: Optional[TracerOptions] = None,
                **overrides) -> TracerHooks:
    """Construct the backend *name* with *options* (keyword overrides are
    applied on a copy, so a shared options object stays untouched)."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown tracer backend {name!r}; "
                       f"known: {available_backends()}") from None
    opts = options if options is not None else TracerOptions()
    if overrides:
        opts = TracerOptions(**{**opts.__dict__, **overrides})
    return factory(opts)


# -- built-in backends ---------------------------------------------------------------------


def resolve_metrics(opts: TracerOptions):
    """The registry a backend should instrument into: the explicit one,
    a fresh enabled registry when ``profile=True``, else None."""
    if opts.metrics is not None:
        return opts.metrics
    if opts.profile:
        from ..obs import MetricsRegistry
        return MetricsRegistry()
    return None


@register_backend("pilgrim")
def _make_pilgrim(opts: TracerOptions) -> TracerHooks:
    from .tracer import TIMING_AGGREGATE, TIMING_LOSSY, PilgrimTracer
    return PilgrimTracer(
        timing_mode=TIMING_LOSSY if opts.lossy_timing else TIMING_AGGREGATE,
        keep_raw=opts.keep_raw, jobs=opts.jobs,
        signature_cache=opts.signature_cache,
        batch_size=opts.batch_size,
        metrics=resolve_metrics(opts),
        fault_plan=opts.fault_plan, retry=opts.retry,
        memory_watermark=opts.memory_watermark,
        **opts.extra)


@register_backend("scalatrace")
def _make_scalatrace(opts: TracerOptions) -> TracerHooks:
    # late import: repro.scalatrace lives outside repro.core
    from ..scalatrace import ScalaTraceTracer
    return ScalaTraceTracer(metrics=resolve_metrics(opts), **opts.extra)


@dataclass
class SimpleTraceResult:
    """The minimal result surface shared by every backend."""

    trace_bytes: bytes
    total_calls: int
    per_rank_calls: list[int] = field(default_factory=list)

    @property
    def trace_size(self) -> int:
        return len(self.trace_bytes)


class NullTracer(TracerHooks):
    """Observes every call but stores nothing: the overhead floor (what a
    PMPI wrapper that immediately returns would cost)."""

    def __init__(self) -> None:
        self.nprocs = 0
        self.total_calls = 0
        self.per_rank_calls: list[int] = []
        self.result: Optional[SimpleTraceResult] = None

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        self.per_rank_calls = [0] * sim.nprocs
        self.result = None

    def on_call(self, rank, fname, args, t0, t1) -> None:
        self.total_calls += 1
        self.per_rank_calls[rank] += 1

    def on_run_end(self, sim) -> None:
        self.result = self.finalize()

    def finalize(self) -> SimpleTraceResult:
        if self.result is None:
            self.result = SimpleTraceResult(
                trace_bytes=b"", total_calls=self.total_calls,
                per_rank_calls=list(self.per_rank_calls))
        return self.result


class RawTracer(TracerHooks):
    """Verbatim per-rank signature streams, no compression at all — the
    uncompressed-size baseline ("4.5 TB for 1000 time steps" in the
    paper's intro is this tracer's regime).  Signatures are the same
    symbolic encodings Pilgrim interns, so size ratios against Pilgrim
    isolate the *compression*, not the encoding."""

    MAGIC = b"RAWT"

    def __init__(self, *, relative_ranks: bool = True) -> None:
        self.relative_ranks = relative_ranks
        self.nprocs = 0
        self.streams: list[list[tuple]] = []
        self.encoders: list[PerRankEncoder] = []
        self.total_calls = 0
        self.result: Optional[SimpleTraceResult] = None

    def on_run_start(self, sim) -> None:
        self.nprocs = sim.nprocs
        comm_space = CommIdSpace(sim.nprocs)
        win_space = WinIdSpace(sim.nprocs)
        self.encoders = []
        for r in range(sim.nprocs):
            enc = PerRankEncoder(r, comm_space, win_space=win_space,
                                 relative_ranks=self.relative_ranks)
            enc.set_comm_resolver(sim.comm_by_cid)
            self.encoders.append(enc)
        self.streams = [[] for _ in range(sim.nprocs)]
        self.result = None

    def on_call(self, rank, fname, args, t0, t1) -> None:
        self.streams[rank].append(self.encoders[rank].encode_call(fname, args))
        self.total_calls += 1

    def on_run_end(self, sim) -> None:
        self.result = self.finalize()

    def finalize(self) -> SimpleTraceResult:
        if self.result is None:
            out = bytearray(self.MAGIC)
            write_uvarint(out, self.nprocs)
            for stream in self.streams:
                write_uvarint(out, len(stream))
                for sig in stream:
                    write_value(out, sig)
            self.result = SimpleTraceResult(
                trace_bytes=bytes(out), total_calls=self.total_calls,
                per_rank_calls=[len(s) for s in self.streams])
        return self.result


@register_backend("raw")
def _make_raw(opts: TracerOptions) -> TracerHooks:
    return RawTracer(**opts.extra)


@register_backend("null")
def _make_null(opts: TracerOptions) -> TracerHooks:
    if opts.extra:
        raise ValueError(f"null backend takes no options, got {opts.extra}")
    return NullTracer()
