"""``repro.core`` — the Pilgrim tracing and compression system.

Public surface:

* :class:`PilgrimTracer` / :class:`PilgrimResult` — attach to a
  :class:`repro.mpisim.SimMPI` run; produces the compressed trace.
* :class:`TraceFile` / :class:`TraceDecoder` — the binary format and its
  decoder (decompression back to per-rank call records).
* :func:`verify_roundtrip` / :func:`verify_workload` — the paper's
  lossless round-trip check, grown into a differential verifier.
* :func:`run_fuzz` — deterministic trace-corruption fuzzer; together
  with the :class:`TraceFormatError` hierarchy (:mod:`repro.core.errors`)
  it makes "lossless" a checked property of the format.
* The sharded pipeline: :class:`RankShard` / :class:`RankCompressor` /
  :func:`merge_shards` (:mod:`repro.core.shard`), the tree-reduction
  scheduler :func:`tree_reduce` and :class:`TracePipeline`
  (:mod:`repro.core.pipeline`).
* The tracer-backend registry (:mod:`repro.core.backends`):
  :func:`make_tracer` / :func:`register_backend` / :class:`TracerOptions`
  — the one construction path the CLI, runner, and benchmarks share.
* Building blocks, exported for tests/benchmarks: :class:`Sequitur`,
  :class:`Grammar`, :class:`CST`, :func:`merge_csts`,
  :func:`merge_grammars`, :class:`IntervalTree`,
  :class:`TimingCompressor`.
"""

from .avl import IntervalTree
from .backends import (NullTracer, RawTracer, TracerOptions,
                       available_backends, make_tracer, register_backend)
from .cst import CST, MergedCST, merge_csts
from .decoder import TraceDecoder
from .encoder import CommIdSpace, MemoryTable, PerRankEncoder
from .errors import (ChecksumError, CorruptTraceError, FrameFormatError,
                     MissingObjectError, MissingRankError, ReplayFormatError,
                     StoreFormatError, StoreIntegrityError, TraceFormatError,
                     TruncatedTraceError, UnsupportedVersionError)
from .fuzz import (FuzzOutcome, FuzzReport, corpus_mutations,
                   iter_blob_mutations, iter_mutations, run_fuzz)
from .grammar import Grammar
from .interproc import CFGMergeResult, expand_rank, merge_grammars
from .pipeline import PipelineResult, TracePipeline, tree_reduce
from .records import DecodedCall, sig_to_params
from .sequitur import Sequitur
from .shard import (GrammarSet, RankCompressor, RankShard, ShardPartial,
                    merge_shards)
from .symbolic import IdPool, ObjectIdTable, RequestIdAllocator
from .timing import (BinClampWarning, TimingCompressor, TimingMeta,
                     bin_value, reconstruct_times, unbin_value)
from .trace_format import (TraceFile, section_hashes, section_spans,
                           split_sections)
from .tracer import TIMING_AGGREGATE, TIMING_LOSSY, PilgrimResult, PilgrimTracer
from .verify import VerifyReport, verify_roundtrip, verify_workload

__all__ = [
    "BinClampWarning",
    "CFGMergeResult", "CST", "ChecksumError", "CommIdSpace",
    "CorruptTraceError", "DecodedCall", "FrameFormatError", "FuzzOutcome",
    "FuzzReport",
    "Grammar", "GrammarSet", "IdPool", "IntervalTree", "MemoryTable",
    "MergedCST", "MissingObjectError", "MissingRankError", "NullTracer",
    "ReplayFormatError",
    "ObjectIdTable", "PerRankEncoder",
    "PilgrimResult", "PilgrimTracer", "PipelineResult", "RankCompressor",
    "RankShard", "RawTracer", "RequestIdAllocator", "Sequitur", "ShardPartial",
    "StoreFormatError", "StoreIntegrityError",
    "TIMING_AGGREGATE", "TIMING_LOSSY", "TimingCompressor", "TimingMeta",
    "TraceDecoder",
    "TraceFile", "TraceFormatError", "TracePipeline", "TracerOptions",
    "TruncatedTraceError", "UnsupportedVersionError", "VerifyReport",
    "available_backends", "bin_value", "corpus_mutations", "expand_rank",
    "iter_blob_mutations", "iter_mutations",
    "make_tracer", "merge_csts", "merge_grammars", "merge_shards",
    "reconstruct_times", "run_fuzz", "section_hashes", "section_spans",
    "sig_to_params", "split_sections",
    "tree_reduce", "unbin_value", "verify_roundtrip", "verify_workload",
]
