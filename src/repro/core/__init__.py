"""``repro.core`` — the Pilgrim tracing and compression system.

Public surface:

* :class:`PilgrimTracer` / :class:`PilgrimResult` — attach to a
  :class:`repro.mpisim.SimMPI` run; produces the compressed trace.
* :class:`TraceFile` / :class:`TraceDecoder` — the binary format and its
  decoder (decompression back to per-rank call records).
* :func:`verify_roundtrip` — the paper's lossless round-trip check.
* Building blocks, exported for tests/benchmarks: :class:`Sequitur`,
  :class:`Grammar`, :class:`CST`, :func:`merge_csts`,
  :func:`merge_grammars`, :class:`IntervalTree`,
  :class:`TimingCompressor`.
"""

from .avl import IntervalTree
from .cst import CST, MergedCST, merge_csts
from .decoder import TraceDecoder
from .encoder import CommIdSpace, MemoryTable, PerRankEncoder
from .grammar import Grammar
from .interproc import CFGMergeResult, expand_rank, merge_grammars
from .records import DecodedCall, sig_to_params
from .sequitur import Sequitur
from .symbolic import IdPool, ObjectIdTable, RequestIdAllocator
from .timing import TimingCompressor, bin_value, reconstruct_times, unbin_value
from .trace_format import TraceFile
from .tracer import TIMING_AGGREGATE, TIMING_LOSSY, PilgrimResult, PilgrimTracer
from .verify import VerifyReport, verify_roundtrip

__all__ = [
    "CFGMergeResult", "CST", "CommIdSpace", "DecodedCall", "Grammar",
    "IdPool", "IntervalTree", "MemoryTable", "MergedCST", "ObjectIdTable",
    "PerRankEncoder", "PilgrimResult", "PilgrimTracer",
    "RequestIdAllocator", "Sequitur", "TIMING_AGGREGATE", "TIMING_LOSSY",
    "TimingCompressor", "TraceDecoder", "TraceFile", "VerifyReport",
    "bin_value", "expand_rank", "merge_csts", "merge_grammars",
    "reconstruct_times", "sig_to_params", "unbin_value", "verify_roundtrip",
]
