"""``repro.core`` — the Pilgrim tracing and compression system.

Public surface:

* :class:`PilgrimTracer` / :class:`PilgrimResult` — attach to a
  :class:`repro.mpisim.SimMPI` run; produces the compressed trace.
* :class:`TraceFile` / :class:`TraceDecoder` — the binary format and its
  decoder (decompression back to per-rank call records).
* :func:`verify_roundtrip` / :func:`verify_workload` — the paper's
  lossless round-trip check, grown into a differential verifier.
* :func:`run_fuzz` — deterministic trace-corruption fuzzer; together
  with the :class:`TraceFormatError` hierarchy (:mod:`repro.core.errors`)
  it makes "lossless" a checked property of the format.
* Building blocks, exported for tests/benchmarks: :class:`Sequitur`,
  :class:`Grammar`, :class:`CST`, :func:`merge_csts`,
  :func:`merge_grammars`, :class:`IntervalTree`,
  :class:`TimingCompressor`.
"""

from .avl import IntervalTree
from .cst import CST, MergedCST, merge_csts
from .decoder import TraceDecoder
from .encoder import CommIdSpace, MemoryTable, PerRankEncoder
from .errors import (ChecksumError, CorruptTraceError, TraceFormatError,
                     TruncatedTraceError, UnsupportedVersionError)
from .fuzz import FuzzOutcome, FuzzReport, iter_mutations, run_fuzz
from .grammar import Grammar
from .interproc import CFGMergeResult, expand_rank, merge_grammars
from .records import DecodedCall, sig_to_params
from .sequitur import Sequitur
from .symbolic import IdPool, ObjectIdTable, RequestIdAllocator
from .timing import TimingCompressor, bin_value, reconstruct_times, unbin_value
from .trace_format import TraceFile, section_spans
from .tracer import TIMING_AGGREGATE, TIMING_LOSSY, PilgrimResult, PilgrimTracer
from .verify import VerifyReport, verify_roundtrip, verify_workload

__all__ = [
    "CFGMergeResult", "CST", "ChecksumError", "CommIdSpace",
    "CorruptTraceError", "DecodedCall", "FuzzOutcome", "FuzzReport",
    "Grammar", "IdPool", "IntervalTree", "MemoryTable", "MergedCST",
    "ObjectIdTable", "PerRankEncoder", "PilgrimResult", "PilgrimTracer",
    "RequestIdAllocator", "Sequitur", "TIMING_AGGREGATE", "TIMING_LOSSY",
    "TimingCompressor", "TraceDecoder", "TraceFile", "TraceFormatError",
    "TruncatedTraceError", "UnsupportedVersionError", "VerifyReport",
    "bin_value", "expand_rank", "iter_mutations", "merge_csts",
    "merge_grammars", "reconstruct_times", "run_fuzz", "section_spans",
    "sig_to_params", "unbin_value", "verify_roundtrip", "verify_workload",
]
