"""Registry-driven call-signature encoding (§3.3).

The encoder turns a traced call's ``(fname, args)`` into a flat hashable
*call signature* tuple ``(fid, v1, v2, ...)`` in registry parameter
order.  Every opaque value goes symbolic:

* communicators — globally agreed ids via :class:`CommIdSpace`
  (the §3.3.1 group-wide max algorithm, including the non-blocking
  ``MPI_Comm_idup`` case resolved at Wait/Test time);
* datatypes/groups — per-rank :class:`ObjectIdTable` pools;
* requests — per-signature pools (:class:`RequestIdAllocator`, §3.4.3);
* memory pointers — AVL-tree segment lookup → (segment id, displacement,
  device) with the stack-address fallback (§3.3.3);
* ranks and rank-correlated ints — relative encoding (§3.4.2);
* statuses — only ``(MPI_SOURCE, MPI_TAG)`` survive (§3.3.2).

Everything else (counts, flags, strings, index arrays from Testsome — the
non-determinism the paper insists on preserving) is stored verbatim.
"""

from __future__ import annotations

from typing import Any, Optional

from ..mpisim import constants as C
from ..mpisim import funcs as F
from ..mpisim.comm import Comm
from ..mpisim.datatypes import Datatype
from ..mpisim.group import Group
from ..mpisim.ops import Op
from ..mpisim.request import Request
from ..mpisim.status import Status
from .avl import IntervalTree
from .relative import encode_rank, encode_rankish
from .symbolic import IdPool, ObjectIdTable, RequestIdAllocator

# pointer encodings (first element of the tuple)
PTR_NULL = 0
PTR_HEAP = 1
PTR_STACK = 2
PTR_DEVICE = 3


class CommIdSpace:
    """Communicator symbolic ids, agreed group-wide (§3.3.1).

    In the real Pilgrim every member of a new communicator's group runs a
    max-allreduce over its locally-assigned ids and uses max+1.  Here the
    per-rank maxima live side by side in one object, so the agreement is
    a direct computation over the member ranks — same ids, same ordering
    guarantees (see DESIGN.md §1 on this substitution).
    """

    def __init__(self, nprocs: int):
        self._sym: dict[int, int] = {0: 0}   # world comm is id 0 everywhere
        self._max = [0] * nprocs

    def sym_for(self, comm: Comm) -> int:
        sym = self._sym.get(comm.cid)
        if sym is None:
            members = list(comm.group.ranks)
            if comm.remote_group is not None:
                # inter-communicator: the paper merges into a temporary
                # intra-communicator and runs the same algorithm over the
                # union of both groups
                members.extend(comm.remote_group.ranks)
            sym = 1 + max(self._max[r] for r in members)
            self._sym[comm.cid] = sym
            for r in members:
                if self._max[r] < sym:
                    self._max[r] = sym
        return sym

    @property
    def count(self) -> int:
        return len(self._sym)


class WinIdSpace:
    """Window symbolic ids, agreed group-wide like communicators —
    windows are collective objects, so every member must use the same id
    (same §3.3.1 algorithm, separate pool per object type)."""

    def __init__(self, nprocs: int):
        self._sym: dict[int, int] = {}
        self._max = [-1] * nprocs

    def sym_for(self, win) -> int:
        sym = self._sym.get(win.wid)
        if sym is None:
            members = list(win.comm.group.ranks)
            if win.comm.remote_group is not None:
                members.extend(win.comm.remote_group.ranks)
            sym = 1 + max(self._max[r] for r in members)
            self._sym[win.wid] = sym
            for r in members:
                if self._max[r] < sym:
                    self._max[r] = sym
        return sym


class MemoryTable:
    """Per-rank live-segment tracking with symbolic segment ids."""

    def __init__(self) -> None:
        self.tree = IntervalTree()
        self._pool = IdPool()
        self._stack_ids: dict[int, int] = {}
        self._next_stack = 0

    # -- allocation interception ------------------------------------------------

    def on_alloc(self, addr: int, size: int, device: int = -1) -> int:
        sid = self._pool.acquire()
        self.tree.insert(addr, max(size, 1), (sid, device))
        return sid

    def on_free(self, addr: int) -> Optional[int]:
        node = self.tree.find_exact(addr)
        if node is None:
            return None
        sid, _dev = node.payload
        self.tree.remove(addr)
        self._pool.release(sid)
        return sid

    # -- pointer encoding ----------------------------------------------------------

    def encode_ptr(self, addr: int) -> tuple:
        if addr == 0:
            return (PTR_NULL,)
        node = self.tree.find_containing(addr)
        if node is not None:
            sid, dev = node.payload
            off = addr - node.addr
            if dev >= 0:
                return (PTR_DEVICE, dev, sid, off)
            return (PTR_HEAP, sid, off)
        # Stack (or otherwise untracked) address: first-touch id with a
        # conservatively assumed 1-byte extent, per §3.3.3.
        sid = self._stack_ids.get(addr)
        if sid is None:
            sid = self._next_stack
            self._stack_ids[addr] = sid
            self._next_stack += 1
        return (PTR_STACK, sid)


class PerRankEncoder:
    """One rank's symbolic state + signature construction."""

    def __init__(self, rank: int, comm_space: CommIdSpace, *,
                 win_space: Optional[WinIdSpace] = None,
                 relative_ranks: bool = True,
                 per_signature_request_pools: bool = True):
        self.rank = rank
        self.comm_space = comm_space
        self.win_space = win_space
        self.relative_ranks = relative_ranks
        self.per_signature_request_pools = per_signature_request_pools
        self.type_ids = ObjectIdTable()
        self.group_ids = ObjectIdTable()
        self._group_refs: dict[int, Group] = {}
        self.requests = RequestIdAllocator()
        self.memory = MemoryTable()

    # -- helpers per kind ------------------------------------------------------------

    def _enc_comm(self, comm: Optional[Comm]) -> int:
        if comm is None:
            return -1  # MPI_COMM_NULL
        return self.comm_space.sym_for(comm)

    def _enc_datatype(self, dt: Optional[Datatype]) -> int:
        if dt is None:
            return -(1 << 20)  # MPI_DATATYPE_NULL
        if dt.handle < 0:
            return dt.handle  # builtins: stable negative handles
        return self.type_ids.lookup_or_assign(dt.handle)

    def _enc_group(self, group: Optional[Group]) -> int:
        if group is None:
            return -1
        key = id(group)
        self._group_refs[key] = group
        return self.group_ids.lookup_or_assign(key)

    def _enc_request(self, req: Optional[Request],
                     creation_sig: Optional[tuple]) -> Any:
        if req is None:
            return None
        if not req.persistent and (req.consumed or req.freed) \
                and self.requests.lookup(id(req)) is None:
            # a request already consumed by an earlier completion call:
            # the user's handle would be MPI_REQUEST_NULL by now
            return None
        key = id(req)
        sym = self.requests.lookup(key)
        if sym is None:
            if creation_sig is None:
                # a request we never saw created (shouldn't happen; keep a
                # distinguishable encoding rather than crash)
                creation_sig = ("?",)
            if not self.per_signature_request_pools:
                creation_sig = ("*",)  # ablation: one global pool
            sym = self.requests.on_create(key, creation_sig, ref=req)
        return sym

    def _enc_status(self, st: Optional[Status], ctx_rank: int) -> Any:
        if st is None:
            return None  # MPI_STATUS_IGNORE
        src = st.MPI_SOURCE
        return (encode_rank(src, ctx_rank, enabled=self.relative_ranks),
                st.MPI_TAG)

    # -- main entry --------------------------------------------------------------------

    #: per-function (fid, ((name, kind), ...)) cache — avoids dataclass
    #: attribute access in the hot per-call loop
    _SPEC_CACHE: dict[str, tuple[int, tuple[tuple[str, str], ...]]] = {}

    @classmethod
    def _spec_info(cls, fname: str):
        got = cls._SPEC_CACHE.get(fname)
        if got is None:
            spec = F.FUNCS[fname]
            got = (spec.fid, tuple((p.name, p.kind) for p in spec.params))
            cls._SPEC_CACHE[fname] = got
        return got

    def encode_call(self, fname: str, args: dict[str, Any]) -> tuple:
        fid, param_info = self._spec_info(fname)
        my_rank = self.rank
        rel = self.relative_ranks
        # caller's rank within the call's communicator, for relative ranks
        comm = args.get("comm") or args.get("comm_old") \
            or args.get("local_comm") or args.get("intercomm")
        ctx_rank = my_rank
        if isinstance(comm, Comm):
            cr = comm.group.rank_of(my_rank)
            if cr == C.UNDEFINED and comm.remote_group is not None:
                cr = comm.remote_group.rank_of(my_rank)
            if cr != C.UNDEFINED:
                ctx_rank = cr
        # completion calls: per-status context from the matching request
        req_list = args.get("array_of_requests")

        parts: list[Any] = [fid]
        deferred_requests: list[tuple[int, Any]] = []
        for name, kind in param_info:
            v = args.get(name)
            if kind == F.K_COUNT or kind == F.K_INT:
                parts.append(v)
            elif kind == F.K_PTR:
                parts.append(self.memory.encode_ptr(v or 0))
            elif kind == F.K_COMM or kind == F.K_NEWCOMM:
                parts.append(self._enc_comm(v))
            elif kind == F.K_WIN or kind == F.K_NEWWIN:
                parts.append(-1 if v is None
                             else self.win_space.sym_for(v))
            elif kind == F.K_DATATYPE or kind == F.K_NEWTYPE:
                parts.append(self._enc_datatype(v))
            elif kind == F.K_GROUP:
                parts.append(self._enc_group(v))
            elif kind == F.K_RANK:
                parts.append(encode_rank(v, ctx_rank, enabled=rel))
            elif kind in (F.K_ROOT, F.K_TAG, F.K_COLOR, F.K_KEY):
                # usually-constant rank-correlated values: relative only on
                # exact match (a constant root=0 must stay absolute)
                parts.append(encode_rankish(v, ctx_rank, enabled=rel))
            elif kind == F.K_REQUEST:
                # creation signature excludes the request itself; defer
                deferred_requests.append((len(parts), v))
                parts.append(None)
            elif kind == F.K_REQUESTV:
                deferred_requests.append((len(parts), list(v or ())))
                parts.append(None)
            elif kind == F.K_STATUS:
                # Waitany/Testany: the single status describes request
                # [index]; other calls carry their request (or comm) inline
                ridx = None
                if fname in ("MPI_Waitany", "MPI_Testany"):
                    idx = args.get("index")
                    if isinstance(idx, int) and idx >= 0:
                        ridx = idx
                parts.append(self._enc_status(v, self._status_ctx(
                    args, req_list, ctx_rank, ridx)))
            elif kind == F.K_STATUSV:
                if v is None:
                    parts.append(None)
                else:
                    idxs = self._completed_indices(fname, args, len(v))
                    parts.append(tuple(
                        self._enc_status(st, self._status_ctx(
                            args, req_list, ctx_rank,
                            idxs[i] if idxs is not None and i < len(idxs)
                            else None))
                        for i, st in enumerate(v)))
            elif kind == F.K_OP:
                parts.append(v.handle if isinstance(v, Op) else v)
            elif kind in (F.K_INTV, F.K_INDEXV):
                if v is not None and rel and name == "coords" \
                        and isinstance(comm, Comm) and comm.topo is not None:
                    # Cartesian coordinates are rank-derived: store them
                    # relative to the caller's own coordinates so identical
                    # grid code yields identical signatures on every rank
                    mine = comm.topo.coords_of(ctx_rank)
                    parts.append(tuple(x - m for x, m in zip(v, mine)))
                else:
                    parts.append(tuple(v) if v is not None else None)
            elif kind == F.K_FLAG:
                parts.append(bool(v))
            else:  # K_COUNT, K_INT, K_STR and anything scalar
                parts.append(v)

        # resolve deferred request encodings with the creation signature
        if deferred_requests:
            if len(deferred_requests) == 1:
                pos = deferred_requests[0][0]
                base = tuple(parts[:pos]) + tuple(parts[pos + 1:])
            else:
                skip = {pos for pos, _ in deferred_requests}
                base = tuple(x for i, x in enumerate(parts)
                             if i not in skip)
            for pos, v in deferred_requests:
                if isinstance(v, list):
                    parts[pos] = tuple(self._enc_request(r, base) for r in v)
                else:
                    parts[pos] = self._enc_request(v, base)

        sig = tuple(parts)

        # post-encoding lifecycle: release ids of requests this call
        # consumed, and pick up comm ids delivered by non-blocking creation
        self._post_call(fname, args)
        return sig

    def _status_ctx(self, args, req_list, default_ctx: int,
                    req_index: Optional[int]) -> int:
        """Caller's comm rank in the communicator relevant to a status."""
        req = None
        if req_index is not None and req_list:
            if 0 <= req_index < len(req_list):
                req = req_list[req_index]
        elif args.get("request") is not None:
            req = args["request"]
        if isinstance(req, Request) and req.comm_cid >= 0:
            comm = self._comm_resolver(req.comm_cid)
            if comm is not None:
                cr = comm.group.rank_of(self.rank)
                if cr != C.UNDEFINED:
                    return cr
        return default_ctx

    @staticmethod
    def _completed_indices(fname: str, args: dict,
                           nstatuses: int) -> Optional[list[int]]:
        """Map statuses[i] to the request index it describes."""
        if fname in ("MPI_Waitsome", "MPI_Testsome"):
            idxs = args.get("array_of_indices")
            return list(idxs) if idxs is not None else None
        if fname in ("MPI_Waitany", "MPI_Testany"):
            idx = args.get("index")
            return [idx] if isinstance(idx, int) and idx >= 0 else None
        return list(range(nstatuses))  # Waitall/Testall align 1:1

    # wired by the tracer: cid -> Comm (default: unresolved)
    @staticmethod
    def _comm_resolver(cid: int):
        return None

    def set_comm_resolver(self, fn) -> None:
        """Install a cid → Comm lookup (plain callable, not bound)."""
        self._comm_resolver = fn

    # -- lifecycle ------------------------------------------------------------------------

    _RELEASING = frozenset((
        "MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome",
        "MPI_Test", "MPI_Testall", "MPI_Testany", "MPI_Testsome",
        "MPI_Request_free",
    ))

    def _post_call(self, fname: str, args: dict[str, Any]) -> None:
        if fname == "MPI_Type_free":
            dt = args.get("datatype")
            if dt is not None and dt.handle >= 0 \
                    and self.type_ids.lookup(dt.handle) is not None:
                self.type_ids.release(dt.handle)
            return
        if fname == "MPI_Group_free":
            grp = args.get("group")
            key = id(grp)
            if grp is not None and self.group_ids.lookup(key) is not None:
                self.group_ids.release(key)
                self._group_refs.pop(key, None)
            return
        if fname not in self._RELEASING:
            return
        reqs: list[Optional[Request]] = []
        if args.get("request") is not None:
            reqs.append(args["request"])
        reqs.extend(args.get("array_of_requests") or ())
        for req in reqs:
            if req is None or req.persistent:
                continue
            if req.consumed or req.freed:
                sym = self.requests.on_release(id(req))
                if sym is not None and req.kind == "comm_idup" \
                        and isinstance(req.value, Comm):
                    # §3.3.1: the symbolic id of an idup'ed communicator is
                    # agreed when the completing Wait/Test observes it
                    self.comm_space.sym_for(req.value)
